#include "fault/campaign.hpp"

#include <cstdio>
#include <deque>
#include <fstream>
#include <memory>
#include <sstream>

#include "util/strings.hpp"

namespace iecd::fault {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

void json_histogram(std::ostream& os, const obs::LatencyHistogram& h) {
  os << "{\"n\":" << h.count() << ",\"min\":" << num(h.min())
     << ",\"mean\":" << num(h.mean()) << ",\"p50\":" << num(h.p50())
     << ",\"p90\":" << num(h.p90()) << ",\"p99\":" << num(h.p99())
     << ",\"p999\":" << num(h.p999()) << ",\"max\":" << num(h.max()) << "}";
}

constexpr const char kSitePrefix[] = "fault.";
constexpr const char kInjectedSuffix[] = ".injected";

CampaignReport assemble_report(const CampaignOptions& opts,
                               const exec::SweepRunner::Result& result) {
  CampaignReport report;
  report.name = opts.name;
  report.seed = opts.seed;
  report.runs = result.runs;
  report.merged = result.merged;
  report.per_run = result.per_run;
  report.health = result.health;
  report.per_run_health = result.per_run_health;
  if (const auto* c = report.merged.find_counter("campaign.unrecovered")) {
    report.unrecovered = c->value;
  }
  if (const auto* c = report.merged.find_counter("campaign.faults_injected")) {
    report.faults_injected = c->value;
  }
  if (const auto* c =
          report.merged.find_counter("campaign.fault_opportunities")) {
    report.fault_opportunities = c->value;
  }
  for (std::size_t i = 0; i < report.per_run.size(); ++i) {
    const auto* c = report.per_run[i].find_counter("campaign.unrecovered");
    if (c && c->value > 0) {
      report.unrecovered_runs.push_back(i);
      if (i < report.per_run_health.size()) {
        report.unrecovered_health.emplace(i, report.per_run_health[i]);
      }
    }
  }
  return report;
}

}  // namespace

void finalize_run_bookkeeping(const FaultInjector& injector, bool recovered,
                              trace::MetricsRegistry& metrics) {
  injector.export_metrics(metrics);
  metrics.counter("campaign.runs").increment();
  if (!recovered) {
    metrics.counter("campaign.unrecovered").increment();
  }
  metrics.counter("campaign.faults_injected").value +=
      injector.total_injected();
  metrics.counter("campaign.fault_opportunities").value +=
      injector.total_opportunities();
}

CampaignReport CampaignRunner::run(const CampaignScenario& scenario) const {
  exec::SweepRunner runner({options_.threads});
  const CampaignOptions& opts = options_;
  const exec::SweepRunner::Result result = runner.run(
      opts.runs,
      exec::SweepRunner::HealthScenario(
          [&opts, &scenario](std::size_t index,
                             trace::MetricsRegistry& metrics,
                             obs::HealthReport& health) {
            FaultInjector injector(run_seed(opts.seed, index), opts.plan);
            RunContext ctx{index, injector.seed(), injector, metrics, health};
            const bool recovered = scenario(ctx);
            finalize_run_bookkeeping(injector, recovered, metrics);
          }));
  return assemble_report(opts, result);
}

CampaignReport CampaignRunner::run(
    const BatchCampaignScenario& scenario) const {
  exec::SweepRunner runner({options_.threads, options_.batch});
  const CampaignOptions& opts = options_;
  const exec::SweepRunner::Result result = runner.run(
      opts.runs,
      exec::SweepRunner::BatchHealthScenario(
          [&opts, &scenario](std::size_t first,
                             std::span<trace::MetricsRegistry> metrics,
                             std::span<obs::HealthReport> health) {
            const std::size_t width = metrics.size();
            // FaultInjector is pinned in place (non-copyable, non-movable):
            // a deque grows without relocating the lanes already built.
            std::deque<FaultInjector> injectors;
            std::vector<RunContext> lanes;
            lanes.reserve(width);
            for (std::size_t k = 0; k < width; ++k) {
              const std::size_t index = first + k;
              injectors.emplace_back(run_seed(opts.seed, index), opts.plan);
              lanes.push_back(RunContext{index, injectors.back().seed(),
                                         injectors.back(), metrics[k],
                                         health[k]});
            }
            // std::vector<bool> is a proxy type, unusable as span<bool>.
            auto rec = std::make_unique<bool[]>(width);
            for (std::size_t k = 0; k < width; ++k) rec[k] = true;
            scenario(std::span<RunContext>(lanes),
                     std::span<bool>(rec.get(), width));
            for (std::size_t k = 0; k < width; ++k) {
              finalize_run_bookkeeping(injectors[k], rec[k], metrics[k]);
            }
          }));
  return assemble_report(opts, result);
}

std::string CampaignReport::to_json() const {
  std::ostringstream os;
  os << "{\"campaign\":\"" << json_escape(name) << "\",\"seed\":" << seed
     << ",\"runs\":" << runs << ",\"unrecovered\":" << unrecovered
     << ",\"faults_injected\":" << faults_injected
     << ",\"fault_opportunities\":" << fault_opportunities;

  os << ",\"unrecovered_runs\":[";
  bool first = true;
  for (std::size_t index : unrecovered_runs) {
    if (!first) os << ",";
    first = false;
    os << index;
  }
  os << "]";

  // Per-site fault counts (merged over every run; map order, so the key
  // sequence is deterministic).
  os << ",\"sites\":{";
  first = true;
  for (const auto& [metric, counter] : merged.counters()) {
    const std::size_t prefix_len = sizeof kSitePrefix - 1;
    const std::size_t suffix_len = sizeof kInjectedSuffix - 1;
    if (metric.size() <= prefix_len + suffix_len) continue;
    if (metric.compare(0, prefix_len, kSitePrefix) != 0) continue;
    if (metric.compare(metric.size() - suffix_len, suffix_len,
                       kInjectedSuffix) != 0) {
      continue;
    }
    const std::string site =
        metric.substr(prefix_len, metric.size() - prefix_len - suffix_len);
    std::uint64_t opportunities = 0;
    if (const auto* c = merged.find_counter(kSitePrefix + site +
                                            ".opportunities")) {
      opportunities = c->value;
    }
    if (!first) os << ",";
    first = false;
    os << "\n\"" << json_escape(site) << "\":{\"injected\":" << counter.value
       << ",\"opportunities\":" << opportunities << "}";
  }
  os << "}";

  // Scenario-level results: every campaign.* counter, gauge and stat the
  // scenario recorded (IAE, tracking error, ...).
  os << ",\"scenario\":{";
  first = true;
  for (const auto& [metric, counter] : merged.counters()) {
    if (metric.compare(0, 9, "campaign.") != 0) continue;
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(metric) << "\":" << counter.value;
  }
  for (const auto& [metric, value] : merged.gauges()) {
    if (metric.compare(0, 9, "campaign.") != 0) continue;
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(metric) << "\":" << num(value);
  }
  for (const auto& [metric, stats] : merged.all_stats()) {
    if (metric.compare(0, 9, "campaign.") != 0) continue;
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(metric) << "\":{\"n\":" << stats.count()
       << ",\"mean\":" << num(stats.mean()) << ",\"min\":" << num(stats.min())
       << ",\"max\":" << num(stats.max()) << "}";
  }
  os << "}";

  // Recovery-latency percentiles from the merged "pil.recovery" monitor
  // (original send -> matched response of every recovered exchange).
  os << ",\"recovery\":";
  auto it = health.tasks.find("pil.recovery");
  if (it != health.tasks.end()) {
    os << "{\"recovered\":" << it->second.activations()
       << ",\"latency_us\":";
    json_histogram(os, it->second.response_us());
    os << "}";
  } else {
    os << "null";
  }

  // Flight-recorder evidence of the unrecovered runs: what tripped and
  // when (full dumps live in the per-run health JSON).
  os << ",\"unrecovered_dumps\":[";
  first = true;
  for (std::size_t index : unrecovered_runs) {
    const obs::HealthReport* hr = nullptr;
    if (auto hit = unrecovered_health.find(index);
        hit != unrecovered_health.end()) {
      hr = &hit->second;
    } else if (index < per_run_health.size()) {
      hr = &per_run_health[index];
    }
    if (hr == nullptr) continue;
    for (const auto& dump : hr->dumps) {
      if (!first) os << ",";
      first = false;
      os << "\n{\"run\":" << index << ",\"trigger\":\""
         << json_escape(dump.trigger) << "\",\"detail\":\""
         << json_escape(dump.detail)
         << "\",\"time_s\":" << num(sim::to_seconds(dump.time))
         << ",\"events\":" << dump.events.size() << "}";
    }
  }
  os << "]}\n";
  return os.str();
}

bool CampaignReport::write_json(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  os << to_json();
  return os.good();
}

std::string CampaignReport::summary() const {
  return util::format(
      "campaign %s: %zu runs, %llu faults injected (%llu opportunities), "
      "%llu unrecovered",
      name.c_str(), runs,
      static_cast<unsigned long long>(faults_injected),
      static_cast<unsigned long long>(fault_opportunities),
      static_cast<unsigned long long>(unrecovered));
}

}  // namespace iecd::fault
