#include "periph/quadrature_decoder.hpp"

namespace iecd::periph {

QuadDecPeripheral::QuadDecPeripheral(mcu::Mcu& mcu, QuadDecConfig config,
                                     std::string name)
    : Peripheral(mcu, std::move(name)), config_(config) {}

void QuadDecPeripheral::edge(int direction) {
  add_counts(direction >= 0 ? 1 : -1);
}

void QuadDecPeripheral::add_counts(std::int32_t delta) {
  extended_ += delta;
  // 16-bit two's-complement wraparound, matching the hardware register.
  position_ = static_cast<std::int16_t>(
      static_cast<std::uint16_t>(position_) +
      static_cast<std::uint16_t>(static_cast<std::int16_t>(delta)));
}

void QuadDecPeripheral::index_pulse() {
  index_latch_ = position_;
  ++index_pulses_;
  if (config_.clear_on_index) position_ = 0;
  if (config_.index_vector >= 0) mcu().raise_irq(config_.index_vector);
}

void QuadDecPeripheral::zero() {
  position_ = 0;
  extended_ = 0;
}

void QuadDecPeripheral::reset() {
  zero();
  index_latch_ = 0;
  index_pulses_ = 0;
}

}  // namespace iecd::periph
