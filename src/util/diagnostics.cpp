#include "util/diagnostics.hpp"

#include <algorithm>

namespace iecd::util {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "INFO";
    case Severity::kWarning:
      return "WARN";
    case Severity::kError:
      return "ERROR";
  }
  return "?";
}

std::string Diagnostic::to_string() const {
  std::string out = iecd::util::to_string(severity);
  out += ' ';
  out += component;
  out += ": ";
  out += message;
  return out;
}

void DiagnosticList::info(std::string component, std::string message) {
  items_.push_back({Severity::kInfo, std::move(component), std::move(message)});
}

void DiagnosticList::warning(std::string component, std::string message) {
  items_.push_back(
      {Severity::kWarning, std::move(component), std::move(message)});
}

void DiagnosticList::error(std::string component, std::string message) {
  items_.push_back(
      {Severity::kError, std::move(component), std::move(message)});
}

void DiagnosticList::add(Diagnostic diagnostic) {
  items_.push_back(std::move(diagnostic));
}

void DiagnosticList::merge(const DiagnosticList& other) {
  items_.insert(items_.end(), other.items_.begin(), other.items_.end());
}

bool DiagnosticList::has_errors() const {
  return std::any_of(items_.begin(), items_.end(), [](const Diagnostic& d) {
    return d.severity == Severity::kError;
  });
}

bool DiagnosticList::has_warnings() const {
  return std::any_of(items_.begin(), items_.end(), [](const Diagnostic& d) {
    return d.severity == Severity::kWarning;
  });
}

std::string DiagnosticList::to_string() const {
  std::string out;
  for (const Diagnostic& d : items_) {
    out += d.to_string();
    out += '\n';
  }
  return out;
}

}  // namespace iecd::util
