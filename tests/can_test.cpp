#include <gtest/gtest.h>

#include "beans/bean_project.hpp"
#include "beans/can_bean.hpp"
#include "mcu/derivative.hpp"
#include "periph/can_controller.hpp"
#include "sim/can_bus.hpp"
#include "sim/world.hpp"

namespace iecd {
namespace {

TEST(CanBus, FrameTimeScalesWithDlcAndBitrate) {
  sim::World world;
  sim::CanBus bus500(world, 500000);
  // 0-byte frame: ~57 bits at 500 kbit/s ~ 114 us.
  EXPECT_NEAR(static_cast<double>(bus500.frame_time(0)), 114e3, 1e3);
  // 8-byte frame: ~134 bits ~ 268 us.
  EXPECT_NEAR(static_cast<double>(bus500.frame_time(8)), 268e3, 3e3);
  sim::CanBus bus125(world, 125000, "can125");
  EXPECT_NEAR(static_cast<double>(bus125.frame_time(8)),
              4.0 * static_cast<double>(bus500.frame_time(8)), 1e3);
}

TEST(CanBus, DeliversToAllOtherNodes) {
  sim::World world;
  sim::CanBus bus(world, 500000);
  int rx_b = 0;
  int rx_c = 0;
  const auto a = bus.attach_node("a", nullptr);
  bus.attach_node("b",
                  [&](const sim::CanFrame& f, sim::SimTime) {
                    EXPECT_EQ(f.id, 0x123u);
                    ++rx_b;
                  });
  bus.attach_node("c", [&](const sim::CanFrame&, sim::SimTime) { ++rx_c; });
  EXPECT_TRUE(bus.transmit(a, {0x123, {1, 2, 3}}));
  world.run_for(sim::milliseconds(1));
  EXPECT_EQ(rx_b, 1);
  EXPECT_EQ(rx_c, 1);
  EXPECT_EQ(bus.stats().frames_delivered, 1u);
}

TEST(CanBus, LowestIdentifierWinsArbitration) {
  sim::World world;
  sim::CanBus bus(world, 500000);
  std::vector<std::uint32_t> order;
  const auto a = bus.attach_node("a", nullptr);
  const auto b = bus.attach_node("b", nullptr);
  bus.attach_node("sniffer", [&](const sim::CanFrame& f, sim::SimTime) {
    order.push_back(f.id);
  });
  // Queue in "wrong" priority order while the bus is busy with a first
  // frame, so arbitration has to sort them out.
  bus.transmit(a, {0x700, {}});
  bus.transmit(a, {0x500, {}});
  bus.transmit(b, {0x100, {}});
  bus.transmit(b, {0x300, {}});
  world.run_for(sim::milliseconds(5));
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 0x700u);  // already on the wire when others queued
  EXPECT_EQ(order[1], 0x100u);  // then strict priority order
  EXPECT_EQ(order[2], 0x300u);
  EXPECT_EQ(order[3], 0x500u);
}

TEST(CanBus, RejectsOversizedFrames) {
  sim::World world;
  sim::CanBus bus(world, 500000);
  const auto a = bus.attach_node("a", nullptr);
  sim::CanFrame big;
  big.data.assign(9, 0);
  EXPECT_FALSE(bus.transmit(a, big));
}

TEST(CanBus, UtilisationTracksTraffic) {
  sim::World world;
  sim::CanBus bus(world, 125000);
  const auto a = bus.attach_node("a", nullptr);
  for (int i = 0; i < 50; ++i) {
    sim::CanFrame f;
    f.id = 0x200;
    f.data.assign(8, static_cast<std::uint8_t>(i));
    bus.transmit(a, f);
  }
  world.run_for(sim::milliseconds(100));
  EXPECT_EQ(bus.stats().frames_delivered, 50u);
  const double util = bus.stats().utilisation(sim::milliseconds(100));
  EXPECT_GT(util, 0.5);  // 50 * ~1.07 ms of wire time in 100 ms
  EXPECT_LT(util, 0.6);
}

class CanControllerFixture : public ::testing::Test {
 protected:
  sim::World world;
  mcu::Mcu mcu{world, mcu::find_derivative("DSC56F8367")};
  sim::CanBus bus{world, 500000};
};

TEST_F(CanControllerFixture, AcceptanceFilterSelectsIds) {
  periph::CanControllerConfig cfg;
  cfg.acceptance_id = 0x100;
  cfg.acceptance_mask = 0x700;  // match 0x100..0x1FF
  periph::CanController ctrl(mcu, cfg);
  ctrl.connect(bus);
  const auto peer = bus.attach_node("peer", nullptr);
  bus.transmit(peer, {0x123, {7}});
  bus.transmit(peer, {0x223, {8}});  // filtered out
  world.run_for(sim::milliseconds(5));
  EXPECT_EQ(ctrl.frames_received(), 1u);
  const auto frame = ctrl.read();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->id, 0x123u);
  EXPECT_FALSE(ctrl.read().has_value());
}

TEST_F(CanControllerFixture, OverrunWhenBufferNotDrained) {
  periph::CanController ctrl(mcu, {});
  ctrl.connect(bus);
  const auto peer = bus.attach_node("peer", nullptr);
  bus.transmit(peer, {0x100, {}});
  bus.transmit(peer, {0x101, {}});
  world.run_for(sim::milliseconds(5));
  EXPECT_EQ(ctrl.overruns(), 1u);
  EXPECT_EQ(ctrl.read()->id, 0x101u);  // newest frame survives
}

TEST_F(CanControllerFixture, RxInterruptRaised) {
  periph::CanControllerConfig cfg;
  cfg.rx_vector = 120;
  periph::CanController ctrl(mcu, cfg);
  ctrl.connect(bus);
  int rx_isrs = 0;
  mcu::IsrHandler h;
  h.name = "can_rx";
  h.body = [&]() -> std::uint64_t {
    ++rx_isrs;
    (void)ctrl.read();
    return 80;
  };
  mcu.intc().register_vector(120, 0, std::move(h));
  const auto peer = bus.attach_node("peer", nullptr);
  bus.transmit(peer, {0x050, {1, 2}});
  world.run_for(sim::milliseconds(5));
  EXPECT_EQ(rx_isrs, 1);
}

TEST(CanBeanTest, ValidatesFilterConsistency) {
  beans::BeanProject project("p");
  project.add<beans::CanBean>("CAN1");
  // Code bits outside the mask: warn.
  project.set_property("CAN1", "acceptance_mask", std::int64_t{0x700});
  auto diags = project.set_property("CAN1", "acceptance_id",
                                    std::int64_t{0x123});
  EXPECT_TRUE(diags.has_warnings());
  EXPECT_FALSE(diags.has_errors());
}

TEST(CanBeanTest, SendReceiveThroughBoundBean) {
  sim::World world;
  mcu::Mcu mcu_a(world, mcu::find_derivative("DSC56F8367"), "node_a");
  mcu::Mcu mcu_b(world, mcu::find_derivative("DSC56F8367"), "node_b");
  sim::CanBus bus(world, 500000);

  beans::BeanProject project_a("a");
  auto& can_a = project_a.add<beans::CanBean>("CAN1");
  project_a.validate();
  project_a.bind(mcu_a);
  can_a.peripheral()->connect(bus);

  beans::BeanProject project_b("b");
  auto& can_b = project_b.add<beans::CanBean>("CAN1");
  project_b.validate();
  project_b.bind(mcu_b);
  can_b.peripheral()->connect(bus);

  std::vector<std::uint8_t> received;
  mcu::IsrHandler h;
  h.body = [&]() -> std::uint64_t {
    if (auto f = can_b.ReadFrame()) received = f->data;
    return 100;
  };
  can_b.set_event_handler("OnReceive", std::move(h));

  EXPECT_TRUE(can_a.SendFrame({0x42, {0xDE, 0xAD}}));
  world.run_for(sim::milliseconds(5));
  EXPECT_EQ(received, (std::vector<std::uint8_t>{0xDE, 0xAD}));
}

TEST(CanBus, SamePriorityTieBreaksByAttachOrderDeterministically) {
  // Two nodes queue frames with the SAME identifier during the same busy
  // quantum; when the wire goes idle both heads compete and the tie must
  // resolve by attach-order node index (a before b) — NOT by queueing
  // time: b queues its frame first below, yet a's wins.  Documented in
  // sim/can_bus.hpp next to transmit().
  sim::World world;
  sim::CanBus bus(world, 500000);
  std::vector<std::uint8_t> markers;
  const auto a = bus.attach_node("a", nullptr);
  const auto b = bus.attach_node("b", nullptr);
  bus.attach_node("sniffer", [&](const sim::CanFrame& f, sim::SimTime) {
    if (f.id == 0x100) markers.push_back(f.data[0]);
  });

  // Seize the wire so the contenders queue behind a busy bus.
  EXPECT_TRUE(bus.transmit(a, {0x050, {0xFF}}));
  EXPECT_TRUE(bus.transmit(b, {0x100, {0xBB}}));  // b queues first...
  EXPECT_TRUE(bus.transmit(a, {0x100, {0xAA}}));  // ...but a wins the tie
  world.run_for(sim::milliseconds(2));

  ASSERT_EQ(markers.size(), 2u);
  EXPECT_EQ(markers[0], 0xAA);  // attach-order tie-break: node a first
  EXPECT_EQ(markers[1], 0xBB);

  // Replay: the resolution order is identical on every run.
  sim::World world2;
  sim::CanBus bus2(world2, 500000);
  std::vector<std::uint8_t> markers2;
  const auto a2 = bus2.attach_node("a", nullptr);
  const auto b2 = bus2.attach_node("b", nullptr);
  bus2.attach_node("sniffer", [&](const sim::CanFrame& f, sim::SimTime) {
    if (f.id == 0x100) markers2.push_back(f.data[0]);
  });
  EXPECT_TRUE(bus2.transmit(a2, {0x050, {0xFF}}));
  EXPECT_TRUE(bus2.transmit(b2, {0x100, {0xBB}}));
  EXPECT_TRUE(bus2.transmit(a2, {0x100, {0xAA}}));
  world2.run_for(sim::milliseconds(2));
  EXPECT_EQ(markers, markers2);
}

TEST(CanBeanTest, AutosarVariantIsCanModule) {
  beans::CanBean bean("CAN1");
  EXPECT_EQ(beans::autosar::mcal_module_of(bean), "Can");
  const auto src = beans::autosar::driver_source(bean);
  EXPECT_NE(src.header.find("Can_Write"), std::string::npos);
  EXPECT_NE(src.header.find("CanIf_RxIndication_CAN1"), std::string::npos);
}

}  // namespace
}  // namespace iecd
