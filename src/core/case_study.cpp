#include "core/case_study.hpp"

#include <cmath>
#include <numbers>

#include "blocks/custom.hpp"
#include "blocks/math_blocks.hpp"
#include "blocks/routing.hpp"
#include "beans/serial_bean.hpp"
#include "fault/sites.hpp"
#include "fixpt/autoscale.hpp"
#include "mcu/mcu.hpp"
#include "sim/world.hpp"

namespace iecd::core {

using blocks::ConstantBlock;
using blocks::DiscretePidBlock;
using blocks::FunctionBlock;
using blocks::GainBlock;
using blocks::MovingAverageBlock;
using blocks::ScopeBlock;
using blocks::StepBlock;
using blocks::SumBlock;
using blocks::SwitchBlock;
using blocks::UnitDelayBlock;

ServoSystem::ServoSystem(ServoConfig config)
    : config_(std::move(config)),
      top_("servo_top"),
      project_("servo", config_.derivative) {
  controller_ = &top_.add<model::Subsystem>("controller", 1, 1);
  controller_->set_sample_time(model::SampleTime::discrete(config_.period_s));
  plant_ = &top_.add<model::Subsystem>("plant", 1, 2);
  plant_->set_sample_time(model::SampleTime::continuous());
  plant_->set_direct_feedthrough(false);

  sync_ = std::make_unique<ModelSync>(controller_->inner(), project_);

  build_controller();
  build_plant();

  // Close the single-model loop: plant angle -> controller, controller
  // duty -> plant.
  top_.connect(*plant_, 0, *controller_, 0);
  top_.connect(*controller_, 0, *plant_, 0);

  speed_scope_ = &top_.add<ScopeBlock>("speed_scope");
  duty_scope_ = &top_.add<ScopeBlock>("duty_scope");
  speed_scope_->set_sample_time(model::SampleTime::discrete(config_.period_s));
  duty_scope_->set_sample_time(model::SampleTime::discrete(config_.period_s));
  top_.connect(*plant_, 1, *speed_scope_, 0);
  top_.connect(*controller_, 0, *duty_scope_, 0);

  if (!config_.mil_hw_fidelity) {
    qdec_block_->set_hw_fidelity(false);
    pwm_block_->set_hw_fidelity(false);
  }
  if (config_.fixed_point) apply_fixed_point_types();
}

void ServoSystem::build_controller() {
  model::Model& m = controller_->inner();
  auto& angle_in = m.add<model::Inport>("angle_in");
  auto& duty_out = m.add<model::Outport>("duty_out");

  // PE blocks enter through the synchronisation layer: each insertion
  // creates the corresponding bean in the PE project.
  timer_block_ = &sync_->add_timer_int("TI1");
  qdec_block_ = &sync_->add_quad_dec("QD1");
  pwm_block_ = &sync_->add_pwm("PWM1");
  key_mode_ = &sync_->add_bit_io("KeyMode");
  key_up_ = &sync_->add_bit_io("KeyUp");
  project_.add<beans::SerialBean>("AS1");  // PIL communication channel

  util::DiagnosticList diags;
  project_.set_property("TI1", "period_s", config_.period_s);
  project_.set_property("PWM1", "frequency_hz", config_.pwm_frequency_hz);
  project_.set_property("QD1", "encoder_lines",
                        static_cast<std::int64_t>(config_.encoder_lines));
  project_.set_property("KeyMode", "pin", std::int64_t{2});
  project_.set_property("KeyUp", "pin", std::int64_t{3});
  project_.set_property("KeyUp", "edge", std::string("rising"));

  // Speed from the position register: wrapped 16-bit difference per
  // sample, scaled to rad/s, smoothed by a short moving average.
  auto& prev = m.add<UnitDelayBlock>("prev_cnt", 0.0);
  auto& diff = m.add<FunctionBlock>(
      "cnt_diff", 2, [](const std::vector<double>& u, double) {
        return std::remainder(u[0] - u[1], 65536.0);
      });
  {
    mcu::OpCounts ops;
    ops.alu16 = 3;
    ops.mem = 2;
    diff.set_step_ops(ops);
  }
  const double cpr = static_cast<double>(config_.encoder_lines * 4);
  auto& spd_gain = m.add<GainBlock>(
      "spd_gain", 2.0 * std::numbers::pi / (cpr * config_.period_s));
  auto& spd_filt =
      m.add<MovingAverageBlock>("spd_filt", config_.speed_filter_taps);

  // Set-point: base step plus the keyboard-accumulated offset.
  setpoint_ = &m.add<StepBlock>("sp", config_.setpoint_time, 0.0,
                                config_.setpoint);

  sp_up_ = &m.add<model::FunctionCallSubsystem>("SpUp", 0, 1);
  {
    model::Model& f = sp_up_->inner();
    auto& inc = f.add<ConstantBlock>("inc", 10.0);
    auto& acc = f.add<UnitDelayBlock>("acc", 0.0);
    auto& add = f.add<SumBlock>("add", "++");
    auto& out = f.add<model::Outport>("offset");
    f.connect(inc, 0, add, 0);
    f.connect(acc, 0, add, 1);
    f.connect(add, 0, acc, 0);
    f.connect(acc, 0, out, 0);
    sp_up_->bind_ports({}, {&out});
  }
  key_up_->bind_event("OnInterrupt", *sp_up_);

  // Manual/automatic mode chart driven by the mode key.
  mode_chart_ = &m.add<model::StateChart>("mode", 1, 1);
  mode_chart_->add_state(
      "automatic",
      [](const model::StateChart::ChartContext& c) { c.set_out(0, 1.0); });
  mode_chart_->add_state(
      "manual",
      [](const model::StateChart::ChartContext& c) { c.set_out(0, 0.0); });
  mode_chart_->add_transition(
      "automatic", "manual",
      [](const model::StateChart::ChartContext& c) { return c.in(0) > 0.5; });
  mode_chart_->add_transition(
      "manual", "automatic",
      [](const model::StateChart::ChartContext& c) { return c.in(0) < 0.5; });

  auto& err = m.add<SumBlock>("err", "++-");
  pid_ = &m.add<DiscretePidBlock>(
      "pi", DiscretePidBlock::Gains{config_.kp, config_.ki, 0.0, 10.0}, 0.0,
      1.0);
  auto& manual = m.add<ConstantBlock>("manual_duty", config_.manual_duty);
  auto& mode_sw = m.add<SwitchBlock>("mode_sw", 0.5);

  // MIL stimulus for the key inputs (not pressed).
  auto& key_mode_src = m.add<ConstantBlock>("key_mode_src", 0.0);
  auto& key_up_src = m.add<ConstantBlock>("key_up_src", 0.0);

  m.connect(angle_in, 0, *qdec_block_, 0);
  m.connect(*qdec_block_, 0, prev, 0);
  m.connect(*qdec_block_, 0, diff, 0);
  m.connect(prev, 0, diff, 1);
  m.connect(diff, 0, spd_gain, 0);
  m.connect(spd_gain, 0, spd_filt, 0);
  m.connect(*setpoint_, 0, err, 0);
  m.connect(*sp_up_, 0, err, 1);
  m.connect(spd_filt, 0, err, 2);
  m.connect(err, 0, *pid_, 0);
  m.connect(key_mode_src, 0, *key_mode_, 0);
  m.connect(key_up_src, 0, *key_up_, 0);
  m.connect(*key_mode_, 0, *mode_chart_, 0);
  m.connect(*pid_, 0, mode_sw, 0);
  m.connect(*mode_chart_, 0, mode_sw, 1);
  m.connect(manual, 0, mode_sw, 2);
  m.connect(mode_sw, 0, *pwm_block_, 0);
  m.connect(*pwm_block_, 0, duty_out, 0);

  controller_->bind_ports({&angle_in}, {&duty_out});
}

void ServoSystem::build_plant() {
  model::Model& m = plant_->inner();
  auto& duty_in = m.add<model::Inport>("duty_in");
  auto& drive = m.add<GainBlock>("drive", config_.motor.supply_voltage);
  motor_block_ = &m.add<plant::DcMotorBlock>("motor", config_.motor);
  auto& angle_out = m.add<model::Outport>("angle_out");
  auto& speed_out = m.add<model::Outport>("speed_out");
  drive.set_sample_time(model::SampleTime::continuous());
  m.connect(duty_in, 0, drive, 0);
  m.connect(drive, 0, *motor_block_, 0);
  m.connect(*motor_block_, 1, angle_out, 0);
  m.connect(*motor_block_, 0, speed_out, 0);
  plant_->bind_ports({&duty_in}, {&angle_out, &speed_out});
}

void ServoSystem::apply_fixed_point_types() {
  // Simulink-style fixed-point design: pick 16-bit formats from the signal
  // ranges the design is specified for (paper Section 7).
  model::Model& m = controller_->inner();
  const double max_speed =
      config_.motor.supply_voltage * config_.motor.kt /
      (config_.motor.resistance * config_.motor.damping +
       config_.motor.kt * config_.motor.ke);  // no-load speed bound
  const auto speed_fmt =
      fixpt::choose_format({-max_speed * 1.2, max_speed * 1.2}, 16);
  const auto duty_fmt = fixpt::choose_format({-1.0, 1.0}, 16);
  const double max_diff =
      max_speed / (2.0 * std::numbers::pi) * 400.0 * config_.period_s * 2.0;
  const auto diff_fmt = fixpt::choose_format({-max_diff, max_diff}, 16);

  m.find("cnt_diff")->set_output_type(0, model::DataType::kFixed, diff_fmt);
  m.find("spd_gain")->set_output_type(0, model::DataType::kFixed, speed_fmt);
  m.find("spd_filt")->set_output_type(0, model::DataType::kFixed, speed_fmt);
  m.find("sp")->set_output_type(0, model::DataType::kFixed, speed_fmt);
  m.find("err")->set_output_type(0, model::DataType::kFixed, speed_fmt);
  m.find("pi")->set_output_type(0, model::DataType::kFixed, duty_fmt);
  m.find("mode_sw")->set_output_type(0, model::DataType::kFixed, duty_fmt);
}

ServoSystem::MilResult ServoSystem::run_mil() {
  codegen::Generator::restore_mil_mode(*controller_);
  model::EngineOptions options;
  options.stop_time = config_.duration_s;
  options.minor_steps = 4;
  model::Engine engine(top_, options);
  engine.run();

  MilResult result;
  result.speed = speed_scope_->log();
  result.duty = duty_scope_->log();
  result.metrics = model::analyze_step(result.speed, config_.setpoint,
                                       config_.setpoint_time);
  result.iae = model::integral_absolute_error(result.speed, config_.setpoint);
  return result;
}

PeertTarget::BuildResult ServoSystem::build_target(
    const std::string& app_name) {
  return target_.build(*controller_, project_, app_name,
                       config_.fixed_point);
}

ServoSystem::HilResult ServoSystem::run_hil(const HilOptions& options) {
  const double duration =
      options.duration_s > 0 ? options.duration_s : config_.duration_s;

  auto build = build_target("servo_hil");
  if (!build.ok()) {
    throw std::runtime_error("ServoSystem: target build failed:\n" +
                             build.diagnostics.to_string());
  }
  if (options.extra_latency_cycles) {
    build.app.tasks[0].extra_cycles += options.extra_latency_cycles;
  }

  sim::World world;
  mcu::Mcu mcu(world, mcu::find_derivative(config_.derivative));
  project_.bind(mcu);
  rt::Runtime runtime(mcu, project_, build.app);

  // Peripheral-level plant coupling.
  plant::DcMotorSim motor(world, config_.motor);
  auto* pwm_bean = dynamic_cast<beans::PwmBean*>(project_.find("PWM1"));
  motor.drive_from_duty(&pwm_bean->peripheral()->average_output());
  auto* qdec_bean = dynamic_cast<beans::QuadDecBean*>(project_.find("QD1"));
  plant::IncrementalEncoder encoder(
      world, motor, *qdec_bean->peripheral(),
      {config_.encoder_lines, sim::microseconds(50)});

  if (options.monitors) {
    runtime.attach_monitors(*options.monitors);
    options.monitors->arm(world, sim::from_seconds(config_.period_s));
  }

  if (options.faults) {
    fault::wire_cpu(*options.faults, mcu.cpu());
    fault::wire_runtime(*options.faults, runtime);
    fault::wire_encoder(*options.faults, encoder);
    if (plant::LoadTorque load =
            fault::make_load_torque(*options.faults, duration)) {
      motor.set_load(std::move(load));
    }
  }

  runtime.start();
  encoder.start();
  if (options.timer_jitter && runtime.timer() &&
      runtime.timer()->peripheral()) {
    runtime.timer()->peripheral()->set_jitter_hook(options.timer_jitter);
  }

  // Keyboard stimulus on the set-point key.
  auto* key_up_bean = dynamic_cast<beans::BitIoBean*>(project_.find("KeyUp"));
  std::unique_ptr<periph::PushButton> button;
  if (!options.key_up_presses.empty() && key_up_bean->port()) {
    button = std::make_unique<periph::PushButton>(*key_up_bean->port(),
                                                  key_up_bean->pin(),
                                                  /*active_low=*/false);
    for (const sim::SimTime when : options.key_up_presses) {
      button->press_at(when, sim::milliseconds(30));
    }
  }

  // Periodic probe recording the true motor speed.
  HilResult result;
  const sim::SimTime period = sim::from_seconds(config_.period_s);
  std::function<void()> probe = [&] {
    result.speed.record(sim::to_seconds(world.now()),
                        motor.speed_at(world.now()));
    world.queue().schedule_in(period, probe);
  };
  world.queue().schedule_in(period, probe);

  world.run_for(sim::from_seconds(duration));

  result.metrics = model::analyze_step(result.speed, config_.setpoint,
                                       config_.setpoint_time);
  result.iae = model::integral_absolute_error(result.speed, config_.setpoint);
  if (const auto* prof =
          runtime.profiler().task(runtime.periodic_profile_key())) {
    result.exec_us_mean = prof->exec_time_us.mean();
    result.exec_us_max = prof->exec_time_us.max();
    result.response_us_max = prof->response_time_us.max();
    result.jitter_us = prof->period_jitter_stddev_us();
    result.activations = prof->activations;
    result.start_s = prof->start_times_s;
    result.exec_us = prof->exec_time_us;
    result.wait_us = prof->response_time_us;
  }
  result.cpu_utilisation =
      static_cast<double>(mcu.cpu().busy_time()) /
      static_cast<double>(sim::from_seconds(duration));
  result.observed_stack_bytes = mcu.cpu().max_stack_bytes();
  result.overruns = mcu.intc().overruns();
  result.memory = build.app.memory;
  result.profile_report = runtime.profiler().report(config_.period_s);
  return result;
}

ServoSystem::PilResult ServoSystem::run_pil(const PilRunOptions& options) {
  const double duration =
      options.duration_s > 0 ? options.duration_s : config_.duration_s;

  codegen::SignalBuffer buffer;
  auto build = target_.build_pil(*controller_, project_, buffer, "servo_pil",
                                 config_.fixed_point);
  if (!build.ok()) {
    throw std::runtime_error("ServoSystem: PIL build failed:\n" +
                             build.diagnostics.to_string());
  }

  sim::World world;
  mcu::Mcu mcu(world, mcu::find_derivative(config_.derivative));
  project_.bind(mcu);
  rt::Runtime runtime(mcu, project_, build.app);

  // Host-side plant model: the controller subsystem is substituted by the
  // communication endpoint (PEERT_PIL behaviour).
  model::Model host("pil_host");
  auto& duty_cmd = host.add<ConstantBlock>("duty_cmd", 0.0);
  auto& drive = host.add<GainBlock>("drive", config_.motor.supply_voltage);
  drive.set_sample_time(model::SampleTime::continuous());
  auto& motor = host.add<plant::DcMotorBlock>("motor", config_.motor);
  auto& speed_scope = host.add<ScopeBlock>("speed");
  speed_scope.set_sample_time(model::SampleTime::discrete(config_.period_s));
  host.connect(duty_cmd, 0, drive, 0);
  host.connect(drive, 0, motor, 0);
  host.connect(motor, 0, speed_scope, 0);

  model::EngineOptions eopts;
  eopts.stop_time = duration + 1.0;
  eopts.base_period = config_.period_s;
  eopts.minor_steps = 4;
  model::Engine engine(host, eopts);
  engine.initialize();

  auto* serial = dynamic_cast<beans::SerialBean*>(project_.find("AS1"));
  pil::PilSession session(
      world, runtime, *serial, buffer,
      {config_.period_s, duration, options.baud, options.link,
       options.batch, options.recovery});
  if (options.monitors) {
    runtime.attach_monitors(*options.monitors);
    session.set_monitors(options.monitors);
  }
  if (options.faults) {
    fault::wire_cpu(*options.faults, mcu.cpu());
    fault::wire_runtime(*options.faults, runtime);
    fault::wire_pil(*options.faults, session);
  }
  session.set_plant_buffered(
      [&](std::vector<double>& out) {
        // Sensor frame: the shaft angle the encoder interface measures.
        out.push_back(motor.out(1).as_double());
      },
      [&](const std::vector<double>& actuators) {
        if (!actuators.empty()) duty_cmd.set_value(actuators[0]);
      },
      [&](double t) { engine.advance_to(t); });

  PilResult result;
  result.report = session.run();
  result.speed = speed_scope.log();
  result.metrics = model::analyze_step(result.speed, config_.setpoint,
                                       config_.setpoint_time);
  result.iae = model::integral_absolute_error(result.speed, config_.setpoint);
  result.report.set_observed_stack_bytes(mcu.cpu().max_stack_bytes());
  return result;
}

}  // namespace iecd::core
