/// \file profiler.hpp
/// Target-side execution profiling: per-task execution times, interrupt
/// response times, and activation jitter — the quantities the paper says
/// the PIL simulation exposes ("execution times of the implemented
/// controller code, interrupts response times, sampling jitters, memory
/// and stack requirements").
///
/// Storage is rebased on trace::MetricsRegistry: every series lives in
/// the registry under "<task>.exec_us" / "<task>.response_us" /
/// "<task>.start_s" (plus an "<task>.activations" counter), so the
/// profiler, the PIL report and any exporter read the same numbers from
/// one place.  TaskProfile is a per-task view into that registry.
#pragma once

#include <map>
#include <string>

#include "mcu/cpu.hpp"
#include "trace/metrics.hpp"
#include "util/statistics.hpp"

namespace iecd::rt {

struct TaskProfile {
  TaskProfile(util::SampleSeries& exec, util::SampleSeries& response,
              util::SampleSeries& starts,
              trace::MetricsRegistry::Counter& activation_counter)
      : exec_time_us(exec),
        response_time_us(response),
        start_times_s(starts),
        activation_counter_(activation_counter) {}

  util::SampleSeries& exec_time_us;      ///< ISR body duration
  util::SampleSeries& response_time_us;  ///< raise -> service start
  util::SampleSeries& start_times_s;     ///< activation instants
  std::uint64_t activations = 0;
  /// Registry mirror of `activations` — cached so the per-dispatch hot
  /// path never rebuilds the "<task>.activations" key string.
  trace::MetricsRegistry::Counter& activation_counter_;

  /// Jitter of the activation period: stddev and worst |deviation| of the
  /// inter-activation intervals [us].
  double period_jitter_stddev_us() const;
  double period_jitter_peak_us(double nominal_period_s) const;
};

class Profiler {
 public:
  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Feeds one retired dispatch (wired to Cpu::set_dispatch_observer).
  void record(const mcu::DispatchRecord& record);

  const TaskProfile* task(const std::string& name) const;
  const std::map<std::string, TaskProfile, std::less<>>& tasks() const {
    return tasks_;
  }

  /// The backing registry — the single source the report renders from.
  trace::MetricsRegistry& metrics() { return registry_; }
  const trace::MetricsRegistry& metrics() const { return registry_; }

  std::string report(double nominal_period_s = 0.0) const;

  void reset() {
    tasks_.clear();
    registry_.clear();
  }

 private:
  trace::MetricsRegistry registry_;
  /// Transparent comparator: record() looks tasks up by the dispatch
  /// record's string_view name without materializing a std::string.
  std::map<std::string, TaskProfile, std::less<>> tasks_;
};

}  // namespace iecd::rt
