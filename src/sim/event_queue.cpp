#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

#include "trace/trace.hpp"

namespace iecd::sim {

EventId EventQueue::schedule_at(SimTime when, std::function<void()> fn) {
  if (when < now_) {
    throw std::invalid_argument("EventQueue: scheduling into the past");
  }
  if (!fn) {
    throw std::invalid_argument("EventQueue: empty action");
  }
  const EventId id = next_id_++;
  heap_.push(Entry{when, id});
  actions_.emplace(id, std::move(fn));
  ++live_count_;
  return id;
}

EventId EventQueue::schedule_in(SimTime delay, std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

bool EventQueue::cancel(EventId id) {
  const auto it = actions_.find(id);
  if (it == actions_.end()) return false;
  actions_.erase(it);
  --live_count_;
  return true;
}

SimTime EventQueue::next_time() const {
  // Skip cancelled entries without mutating state: peek copies are cheap,
  // but we cannot pop from a const heap, so scan via a copy of the top run.
  // In practice cancelled density is low; we just look at the top and, if
  // stale, fall back to scanning (handled in step()).  For the const query
  // we conservatively walk a temporary copy only when the top is stale.
  if (live_count_ == 0) return kNever;
  auto heap_copy = heap_;
  while (!heap_copy.empty()) {
    const Entry top = heap_copy.top();
    if (actions_.count(top.id)) return top.when;
    heap_copy.pop();
  }
  return kNever;
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    heap_.pop();
    const auto it = actions_.find(top.id);
    if (it == actions_.end()) continue;  // lazily-removed cancelled event
    std::function<void()> fn = std::move(it->second);
    actions_.erase(it);
    --live_count_;
    now_ = top.when;
    if (auto* tr = trace::recorder()) {
      tr->span_begin("sim", "dispatch", "event_queue", now_,
                     static_cast<double>(top.id));
      fn();
      tr->span_end("sim", "dispatch", "event_queue", now_,
                   static_cast<double>(top.id));
    } else {
      fn();
    }
    return true;
  }
  return false;
}

std::size_t EventQueue::run_until(SimTime until) {
  std::size_t executed = 0;
  for (;;) {
    // Find the next live event without executing it yet.
    bool found = false;
    SimTime when = kNever;
    while (!heap_.empty()) {
      const Entry top = heap_.top();
      if (actions_.count(top.id) == 0) {
        heap_.pop();
        continue;
      }
      when = top.when;
      found = true;
      break;
    }
    if (!found || when > until) break;
    step();
    ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

std::size_t EventQueue::run_all(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && step()) ++executed;
  return executed;
}

}  // namespace iecd::sim
