file(REMOVE_RECURSE
  "libiecd_beans.a"
)
