file(REMOVE_RECURSE
  "CMakeFiles/iecd_periph.dir/adc.cpp.o"
  "CMakeFiles/iecd_periph.dir/adc.cpp.o.d"
  "CMakeFiles/iecd_periph.dir/can_controller.cpp.o"
  "CMakeFiles/iecd_periph.dir/can_controller.cpp.o.d"
  "CMakeFiles/iecd_periph.dir/capture.cpp.o"
  "CMakeFiles/iecd_periph.dir/capture.cpp.o.d"
  "CMakeFiles/iecd_periph.dir/gpio.cpp.o"
  "CMakeFiles/iecd_periph.dir/gpio.cpp.o.d"
  "CMakeFiles/iecd_periph.dir/pwm.cpp.o"
  "CMakeFiles/iecd_periph.dir/pwm.cpp.o.d"
  "CMakeFiles/iecd_periph.dir/quadrature_decoder.cpp.o"
  "CMakeFiles/iecd_periph.dir/quadrature_decoder.cpp.o.d"
  "CMakeFiles/iecd_periph.dir/timer.cpp.o"
  "CMakeFiles/iecd_periph.dir/timer.cpp.o.d"
  "CMakeFiles/iecd_periph.dir/uart.cpp.o"
  "CMakeFiles/iecd_periph.dir/uart.cpp.o.d"
  "CMakeFiles/iecd_periph.dir/watchdog.cpp.o"
  "CMakeFiles/iecd_periph.dir/watchdog.cpp.o.d"
  "libiecd_periph.a"
  "libiecd_periph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iecd_periph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
