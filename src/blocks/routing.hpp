/// \file routing.hpp
/// Signal routing: threshold switch and manual switch.
#pragma once

#include "model/block.hpp"

namespace iecd::blocks {

using model::Block;
using model::EmitContext;
using model::SimContext;

/// Three-input switch: out = in0 when in1 >= threshold, else in2.
class SwitchBlock : public Block {
 public:
  SwitchBlock(std::string name, double threshold = 0.5);
  const char* type_name() const override { return "Switch"; }
  void output(const SimContext& ctx) override;
  std::string emit_c(const EmitContext& ctx) const override;

 private:
  double threshold_;
};

/// Two-input switch toggled programmatically (operator action in MIL).
class ManualSwitchBlock : public Block {
 public:
  ManualSwitchBlock(std::string name, bool position_a = true);
  const char* type_name() const override { return "ManualSwitch"; }
  void output(const SimContext& ctx) override;
  void set_position_a(bool a) { position_a_ = a; }
  bool position_a() const { return position_a_; }

 private:
  bool position_a_;
};

}  // namespace iecd::blocks
