/// \file host_endpoint.hpp
/// Simulator-PC side of the PIL bench (Fig. 6.2): at each control period it
/// samples the plant model, ships the sensor frame down the serial line,
/// and applies the actuator frame coming back.  The plant and the board
/// exchange data "at the end of each simulation step (control period)".
#pragma once

#include <functional>
#include <vector>

#include "pil/frame.hpp"
#include "sim/serial_link.hpp"
#include "sim/world.hpp"
#include "util/statistics.hpp"

namespace iecd::pil {

class HostEndpoint {
 public:
  struct Options {
    sim::SimTime period = sim::milliseconds(1);  ///< control period
    sim::SimTime start = 0;
  };

  /// \p tx: channel toward the board, \p rx: channel from the board.
  HostEndpoint(sim::World& world, sim::SerialChannel& tx,
               sim::SerialChannel& rx, Options options);

  /// Plant coupling: \p sample reads the plant outputs, \p apply writes
  /// the actuator values, \p advance integrates the plant model up to the
  /// given time [s].
  void set_plant(std::function<std::vector<double>()> sample,
                 std::function<void(const std::vector<double>&)> apply,
                 std::function<void(double)> advance);

  /// Starts the periodic exchange.
  void start();
  void stop() { running_ = false; }

  const util::SampleSeries& round_trip_us() const { return rtt_us_; }
  std::uint64_t exchanges() const { return exchanges_; }
  std::uint64_t deadline_misses() const { return deadline_misses_; }
  std::uint64_t crc_errors() const { return decoder_.crc_errors(); }

 private:
  void exchange();

  sim::World& world_;
  sim::SerialChannel& tx_;
  Options options_;
  std::function<std::vector<double>()> sample_;
  std::function<void(const std::vector<double>&)> apply_;
  std::function<void(double)> advance_;
  FrameDecoder decoder_;
  bool running_ = false;
  sim::EventId exchange_event_ = 0;
  bool awaiting_response_ = false;
  sim::SimTime sent_at_ = 0;
  std::uint8_t seq_ = 0;
  util::SampleSeries rtt_us_;
  std::uint64_t exchanges_ = 0;
  std::uint64_t deadline_misses_ = 0;
};

}  // namespace iecd::pil
