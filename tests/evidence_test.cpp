// Evidence recorder tests: format round-trips, golden byte-identity,
// schema-evolution rules, tamper/truncation fuzz (this file runs under the
// ASan job), and campaign-evidence thread invariance.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "evidence/hash.hpp"
#include "evidence/reader.hpp"
#include "evidence/schema.hpp"
#include "evidence/sink.hpp"
#include "evidence/verify.hpp"
#include "evidence/writer.hpp"
#include "fault/campaign.hpp"
#include "fault/rng.hpp"
#include "obs/health_report.hpp"
#include "trace/export.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/build_info.hpp"

namespace iecd::evidence {
namespace {

namespace fs = std::filesystem;

std::vector<std::uint8_t> read_file_bytes(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(is),
                                   std::istreambuf_iterator<char>());
}

/// Fresh scratch directory under the test working dir.
fs::path scratch_dir(const std::string& name) {
  fs::path dir = fs::path("evidence_test_tmp") / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// A registry-of-everything workload: every metric kind plus a small
/// trace, deterministic so the byte-identity tests can hold exact.
void fill_workload(trace::TraceRecorder& rec, trace::MetricsRegistry& m) {
  for (int i = 0; i < 64; ++i) {
    const auto t = static_cast<sim::SimTime>(1000 + i * 250);
    switch (i % 3) {
      case 0:
        rec.span_complete("sim", "step", "cpu", t, t + 120, i * 0.5);
        break;
      case 1:
        rec.counter("sim", "queue", "bus", t, static_cast<double>(i % 7));
        break;
      default:
        rec.instant("sim", "mark", "pil", t);
        break;
    }
  }
  m.counter("steps").value = 64;
  m.gauge("iae") = 6.375;
  auto& s = m.stats("exec_us");
  for (int i = 0; i < 32; ++i) s.add(10.0 + (i % 5));
  auto& series = m.series("rtt_us");
  for (int i = 0; i < 16; ++i) series.add(800.0 + i);
  auto& h = m.histogram("lat_us", 0.0, 100.0, 8);
  for (int i = 0; i < 40; ++i) h.add(static_cast<double>((i * 13) % 100));
}

/// One fully loaded sealed artifact (build info, run meta, metrics,
/// health, trace).
std::vector<std::uint8_t> build_full_artifact() {
  trace::TraceRecorder rec(128);
  trace::MetricsRegistry m;
  fill_workload(rec, m);
  obs::HealthReport health;
  health.source = "evidence_test";
  EvidenceWriter w;
  w.record_build_info();
  w.record_run_meta("evidence_test", 3, 42);
  w.record_metrics(m);
  w.record_health(health);
  w.record_trace(rec);
  w.finish();
  return w.bytes();
}

// ---------------------------------------------------------------- hashing

TEST(EvidenceHash, Sha256FipsVectors) {
  // FIPS 180-4 known answers.
  const std::uint8_t abc[] = {'a', 'b', 'c'};
  EXPECT_EQ(hex(Sha256::of(abc, 3)),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(hex(Sha256::of(abc, 0)),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  const std::vector<std::uint8_t> million(1000000, 'a');
  EXPECT_EQ(hex(Sha256::of(million.data(), million.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(EvidenceHash, Sha256StreamingMatchesOneShot) {
  std::vector<std::uint8_t> data(4099);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  const auto oneshot = Sha256::of(data.data(), data.size());
  // Awkward chunk sizes straddle the 64-byte block boundary.
  for (std::size_t chunk : {1u, 7u, 63u, 64u, 65u, 1000u}) {
    Sha256 h;
    for (std::size_t pos = 0; pos < data.size(); pos += chunk) {
      h.update(data.data() + pos, std::min(chunk, data.size() - pos));
    }
    EXPECT_EQ(h.digest(), oneshot) << "chunk=" << chunk;
  }
  // The dispatch decision is stable within one process.
  EXPECT_EQ(Sha256::hardware_accelerated(), Sha256::hardware_accelerated());
}

TEST(EvidenceHash, CellHashDeterministicAndSensitive) {
  const std::uint8_t a[] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const std::uint8_t b[] = {1, 2, 3, 4, 5, 6, 7, 8, 10};
  EXPECT_EQ(cell_hash64(a, sizeof a), cell_hash64(a, sizeof a));
  EXPECT_NE(cell_hash64(a, sizeof a), cell_hash64(b, sizeof b));
  // Length is part of the hash: a zero-padded tail must not collide with
  // explicit zero bytes.
  const std::uint8_t c[] = {1, 2, 3, 0};
  EXPECT_NE(cell_hash64(c, 3), cell_hash64(c, 4));
  // The chain is order-sensitive even over identical cell sets.
  const std::uint64_t ab =
      chain_update(chain_update(kChainSeed, a, sizeof a), b, sizeof b);
  const std::uint64_t ba =
      chain_update(chain_update(kChainSeed, b, sizeof b), a, sizeof a);
  EXPECT_NE(ab, ba);
}

// ----------------------------------------------------------------- schema

TEST(EvidenceSchema, BuiltinEncodeDecodeRoundTrip) {
  const auto& reg = SchemaRegistry::builtin();
  EXPECT_EQ(reg.size(), 12u);  // + kSchemaCampaignCheckpoint
  for (const auto& [id, schema] : reg.schemas()) {
    std::vector<std::uint8_t> cell;
    SchemaRegistry::encode(schema, cell);
    // Cell = u32 length + payload.
    ASSERT_GE(cell.size(), 4u);
    const auto len = load_le<std::uint32_t>(cell.data());
    ASSERT_EQ(cell.size(), 4u + len);
    Schema out;
    ASSERT_TRUE(SchemaRegistry::decode(cell.data() + 4, len, out));
    EXPECT_EQ(out.id, schema.id);
    EXPECT_EQ(out.version, schema.version);
    EXPECT_EQ(out.name, schema.name);
    EXPECT_EQ(out.fields, schema.fields);
  }
}

TEST(EvidenceSchema, CompatibilityRules) {
  Schema reader;
  reader.id = 3;
  reader.version = 2;
  reader.name = "metric_counter";
  reader.fields = {{FieldType::kString, "name"},
                   {FieldType::kU64, "value"},
                   {FieldType::kU64, "added_later"}};

  Schema artifact = reader;
  EXPECT_TRUE(SchemaRegistry::compatible(artifact, reader));

  // Old writer: lower version, field prefix — accepted.
  artifact.version = 1;
  artifact.fields.pop_back();
  EXPECT_TRUE(SchemaRegistry::compatible(artifact, reader));

  // Newer artifact than reader — rejected.
  Schema newer = reader;
  newer.version = 3;
  newer.fields.push_back({FieldType::kF64, "from_the_future"});
  std::string why;
  EXPECT_FALSE(SchemaRegistry::compatible(newer, reader, &why));
  EXPECT_FALSE(why.empty());

  // A renamed field breaks the prefix rule.
  Schema renamed = reader;
  renamed.fields[1].name = "count";
  EXPECT_FALSE(SchemaRegistry::compatible(renamed, reader));

  // A changed field type breaks it too.
  Schema retyped = reader;
  retyped.fields[1].type = FieldType::kF64;
  EXPECT_FALSE(SchemaRegistry::compatible(retyped, reader));

  // Same id but different record name is a different schema.
  Schema othername = reader;
  othername.name = "metric_gauge";
  EXPECT_FALSE(SchemaRegistry::compatible(othername, reader));
}

// ------------------------------------------------------------- round-trip

TEST(EvidenceRoundTrip, EverythingDecodesExactly) {
  trace::TraceRecorder rec(128);
  trace::MetricsRegistry m;
  fill_workload(rec, m);
  obs::HealthReport health;
  health.source = "evidence_test";
  health.runs = 3;

  EvidenceWriter w;
  w.record_build_info();
  w.record_run_meta("evidence_test", 3, 42);
  w.record_metrics(m);
  w.record_health(health);
  w.record_trace(rec);
  w.finish();

  EvidenceReader r;
  ASSERT_EQ(r.parse(w.bytes()), Status::kOk) << r.error();
  EXPECT_EQ(r.record_count(), w.record_count());
  EXPECT_EQ(r.chain_hash(), w.chain_hash());
  EXPECT_EQ(r.sha256_hex(), w.sha256_hex());
  EXPECT_EQ(r.unknown_records(), 0u);

  // Run meta + build info.
  ASSERT_EQ(r.run_metas().size(), 1u);
  EXPECT_EQ(r.run_metas()[0].name, "evidence_test");
  EXPECT_EQ(r.run_metas()[0].index, 3u);
  EXPECT_EQ(r.run_metas()[0].seed, 42u);
  ASSERT_EQ(r.build_infos().size(), 1u);
  EXPECT_EQ(r.build_infos()[0].git_sha, util::build_info().git_sha);
  EXPECT_EQ(r.build_infos()[0].compiler, util::build_info().compiler);

  // Metrics: doubles travel as bit patterns, so equality is exact.
  const auto& rm = r.metrics();
  ASSERT_NE(rm.find_counter("steps"), nullptr);
  EXPECT_EQ(rm.find_counter("steps")->value, 64u);
  ASSERT_NE(rm.find_gauge("iae"), nullptr);
  EXPECT_EQ(*rm.find_gauge("iae"), 6.375);
  const auto* stats = rm.find_stats("exec_us");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->count(), m.stats("exec_us").count());
  EXPECT_EQ(stats->mean(), m.stats("exec_us").mean());
  EXPECT_EQ(stats->min(), m.stats("exec_us").min());
  EXPECT_EQ(stats->max(), m.stats("exec_us").max());
  const auto* series = rm.find_series("rtt_us");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->samples(), m.series("rtt_us").samples());
  const auto* hist = rm.find_histogram("lat_us");
  ASSERT_NE(hist, nullptr);
  ASSERT_EQ(hist->bins(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(hist->bin_count(i),
              m.histogram("lat_us", 0.0, 100.0, 8).bin_count(i));
  }

  // Health summary headline.
  ASSERT_EQ(r.health_summaries().size(), 1u);
  EXPECT_EQ(r.health_summaries()[0].source, "evidence_test");
  EXPECT_EQ(r.health_summaries()[0].runs, 3u);
  EXPECT_TRUE(r.health_summaries()[0].healthy);
  EXPECT_EQ(r.health_summaries()[0].json, health.to_json());

  // Trace: every event decoded with resolved names, in order.
  ASSERT_EQ(r.events().size(), rec.size());
  EXPECT_EQ(r.events()[0].category, "sim");
  EXPECT_EQ(r.events()[0].name, "step");
  EXPECT_EQ(r.events()[0].track, "cpu");
  EXPECT_EQ(r.events()[0].time, 1000);
  EXPECT_EQ(r.events()[0].duration, 120);
  EXPECT_EQ(r.events()[0].value, 0.0);
}

TEST(EvidenceRoundTrip, GoldenByteIdentity) {
  // Recording the same run twice — different writer objects, same input —
  // must produce the same bytes and digests.  This is the rebuild half of
  // the golden-file guarantee; the sweep half is CampaignThreadInvariance.
  const auto a = build_full_artifact();
  const auto b = build_full_artifact();
  EXPECT_EQ(a, b);

  EvidenceReader ra, rb;
  ASSERT_EQ(ra.parse(a), Status::kOk);
  ASSERT_EQ(rb.parse(b), Status::kOk);
  EXPECT_EQ(ra.sha256_hex(), rb.sha256_hex());
  EXPECT_EQ(ra.chain_hash(), rb.chain_hash());
}

TEST(EvidenceRoundTrip, RebuildTraceReexportsIdentically) {
  trace::TraceRecorder rec(128);
  trace::MetricsRegistry m;
  fill_workload(rec, m);
  EvidenceWriter w;
  w.record_trace(rec);
  w.finish();

  EvidenceReader r;
  ASSERT_EQ(r.parse(w.bytes()), Status::kOk) << r.error();
  const trace::TraceRecorder rebuilt = r.rebuild_trace();
  // Nothing dropped, so the Chrome-trace and CSV exports of the rebuilt
  // recorder are byte-identical to exporting the live one.
  EXPECT_EQ(trace::to_chrome_trace(rebuilt), trace::to_chrome_trace(rec));
  EXPECT_EQ(trace::to_csv(rebuilt), trace::to_csv(rec));
}

// ------------------------------------------------------- schema evolution

TEST(EvidenceEvolution, UnknownSchemaRecordsAreSkippedAndCounted) {
  // A future writer with a record kind this reader has never heard of.
  SchemaRegistry future;
  for (const auto& [id, schema] : SchemaRegistry::builtin().schemas()) {
    future.add(schema);
  }
  Schema extra;
  extra.id = 42;
  extra.version = 1;
  extra.name = "from_the_future";
  extra.fields = {{FieldType::kU64, "value"}};
  future.add(extra);

  EvidenceWriter w(future);
  w.record_run_meta("future", 0, 1);
  std::vector<std::uint8_t> payload;
  store_le<std::uint64_t>(payload, 7);
  w.append_record(42, 1, payload);
  w.record_run_meta("future", 1, 2);
  w.finish();

  EvidenceReader r;  // built-in registry: knows nothing about id 42
  ASSERT_EQ(r.parse(w.bytes()), Status::kOk) << r.error();
  EXPECT_EQ(r.unknown_records(), 1u);
  ASSERT_EQ(r.run_metas().size(), 2u);  // records around it still decode
  EXPECT_EQ(r.run_metas()[1].seed, 2u);
}

TEST(EvidenceEvolution, OldArtifactNewReaderAndViceVersa) {
  const auto bytes = build_full_artifact();

  // Reader whose run_meta schema grew a field (version bump): the old
  // artifact's field list is a prefix — accepted.
  SchemaRegistry grown;
  for (const auto& [id, schema] : SchemaRegistry::builtin().schemas()) {
    Schema s = schema;
    if (id == kSchemaRunMeta) {
      s.version = 2;
      s.fields.push_back({FieldType::kU64, "added_in_v2"});
    }
    grown.add(s);
  }
  EvidenceReader newer(grown);
  EXPECT_EQ(newer.parse(bytes), Status::kOk) << newer.error();

  // Reader whose run_meta schema is OLDER than the artifact's — rejected
  // at the schema section (the artifact version exceeds the reader's).
  SchemaRegistry shrunk;
  for (const auto& [id, schema] : SchemaRegistry::builtin().schemas()) {
    Schema s = schema;
    if (id == kSchemaRunMeta) {
      s.version = 0;
    }
    shrunk.add(s);
  }
  EvidenceReader older(shrunk);
  EXPECT_EQ(older.parse(bytes), Status::kBadSchema);
}

// --------------------------------------------------------- tamper / fuzz

TEST(EvidenceTamper, SpecificCorruptionsReportSpecificStatus) {
  const auto clean = build_full_artifact();

  {  // Header magic.
    auto bytes = clean;
    bytes[0] ^= 0xFF;
    EvidenceReader r;
    EXPECT_EQ(r.parse(bytes), Status::kBadMagic);
  }
  {  // Format version beyond this reader.
    auto bytes = clean;
    bytes[8] = 0xEE;
    bytes[9] = 0xEE;
    EvidenceReader r;
    EXPECT_EQ(r.parse(bytes), Status::kBadVersion);
  }
  {  // A flipped bit mid-record trips the chain (or the record decode).
    auto bytes = clean;
    bytes[bytes.size() / 2] ^= 0x01;
    EvidenceReader r;
    const Status s = r.parse(bytes);
    EXPECT_NE(s, Status::kOk);
  }
  {  // A flipped digest byte is a digest mismatch.
    auto bytes = clean;
    bytes[bytes.size() - 4 - 1] ^= 0x01;  // inside the 32-byte SHA-256
    EvidenceReader r;
    EXPECT_EQ(r.parse(bytes), Status::kDigestMismatch);
  }
  {  // A flipped chain-hash byte is a chain mismatch.
    auto bytes = clean;
    bytes[bytes.size() - 4 - 32 - 1] ^= 0x01;
    EvidenceReader r;
    EXPECT_EQ(r.parse(bytes), Status::kChainMismatch);
  }
  {  // End magic.  (Pointer form: gcc 12 misreads back() on the copied
     // vector as an out-of-bounds subscript.)
    auto bytes = clean;
    ASSERT_FALSE(bytes.empty());
    *(bytes.data() + bytes.size() - 1) ^= 0xFF;
    EvidenceReader r;
    EXPECT_EQ(r.parse(bytes), Status::kBadFooter);
  }
}

TEST(EvidenceTamper, EveryTruncationFailsGracefully) {
  // Small artifact so every prefix length is affordable; ASan watches the
  // reader for out-of-bounds access on all of them.
  trace::TraceRecorder rec(16);
  trace::MetricsRegistry m;
  m.counter("c").value = 1;
  rec.instant("sim", "mark", "cpu", 100);
  EvidenceWriter w;
  w.record_run_meta("trunc", 0, 1);
  w.record_metrics(m);
  w.record_trace(rec);
  w.finish();
  const auto& bytes = w.bytes();

  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EvidenceReader r;
    EXPECT_NE(r.parse(bytes.data(), len), Status::kOk) << "prefix " << len;
  }
  EvidenceReader whole;
  EXPECT_EQ(whole.parse(bytes), Status::kOk);
}

TEST(EvidenceTamper, EveryByteFlipIsDetected) {
  // The footer self-checks and everything before it is under the SHA-256,
  // so no single corrupted byte may verify.
  trace::TraceRecorder rec(16);
  trace::MetricsRegistry m;
  m.gauge("g") = 1.5;
  rec.instant("sim", "mark", "cpu", 100);
  EvidenceWriter w;
  w.record_run_meta("flip", 0, 1);
  w.record_metrics(m);
  w.record_trace(rec);
  w.finish();

  auto bytes = w.bytes();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] ^= 0xFF;
    EvidenceReader r;
    EXPECT_NE(r.parse(bytes), Status::kOk) << "byte " << i;
    bytes[i] ^= 0xFF;
  }
  EvidenceReader clean;
  EXPECT_EQ(clean.parse(bytes), Status::kOk);
}

// ----------------------------------------------------------- verification

TEST(EvidenceVerify, ResultSummaryAndJson) {
  const auto bytes = build_full_artifact();
  const VerifyResult pass = verify_artifact(bytes, "mem.evd");
  EXPECT_TRUE(pass.ok);
  EXPECT_EQ(pass.status, Status::kOk);
  EXPECT_EQ(pass.summary().rfind("PASS mem.evd", 0), 0u) << pass.summary();
  EXPECT_NE(pass.to_json().find("\"ok\":true"), std::string::npos);
  EXPECT_NE(pass.to_json().find(pass.sha256_hex), std::string::npos);
  EXPECT_EQ(pass.schema_names.size(), SchemaRegistry::builtin().size());

  auto tampered = bytes;
  tampered[tampered.size() / 2] ^= 0x01;
  const VerifyResult fail = verify_artifact(tampered, "mem.evd");
  EXPECT_FALSE(fail.ok);
  EXPECT_EQ(fail.summary().rfind("FAIL mem.evd", 0), 0u) << fail.summary();
  EXPECT_NE(fail.to_json().find("\"ok\":false"), std::string::npos);
}

// ------------------------------------------------------- campaign evidence

/// Cheap deterministic campaign scenario: no shared state, everything
/// derived from the run seed.
bool synthetic_scenario(fault::RunContext& ctx) {
  ctx.metrics.counter("runs").increment();
  auto& iae = ctx.metrics.stats("campaign.iae");
  fault::SplitMix64 rng(ctx.run_seed);
  for (int i = 0; i < 16; ++i) {
    iae.add(static_cast<double>(rng.next() % 1000) / 8.0);
  }
  ctx.health.source = "evidence_campaign";
  return true;
}

fault::CampaignOptions campaign_options(std::size_t threads) {
  fault::CampaignOptions opts;
  opts.name = "evidence_campaign";
  opts.seed = 42;
  opts.runs = 6;
  opts.threads = threads;
  return opts;
}

TEST(EvidenceCampaign, ThreadInvarianceAndManifestVerify) {
  // The acceptance bar: artifacts and manifest byte-identical across
  // 1/2/8 sweep threads, and evidence_verify passes on all of them.
  const fs::path base = scratch_dir("campaign");
  struct Out {
    CampaignEvidence ev;
    fs::path dir;
  };
  std::vector<Out> outs;
  for (std::size_t threads : {1u, 2u, 8u}) {
    const auto opts = campaign_options(threads);
    const auto report = fault::CampaignRunner(opts).run(synthetic_scenario);
    const fs::path dir = base / ("t" + std::to_string(threads));
    outs.push_back({write_campaign_evidence(dir.string(), opts, report), dir});
  }

  const Out& ref = outs[0];
  ASSERT_EQ(ref.ev.runs.size(), 6u);
  for (std::size_t i = 1; i < outs.size(); ++i) {
    EXPECT_EQ(outs[i].ev.manifest, ref.ev.manifest) << "threads variant " << i;
    ASSERT_EQ(outs[i].ev.runs.size(), ref.ev.runs.size());
    for (std::size_t run = 0; run < ref.ev.runs.size(); ++run) {
      EXPECT_EQ(outs[i].ev.runs[run].sha256_hex, ref.ev.runs[run].sha256_hex);
      EXPECT_EQ(read_file_bytes(outs[i].dir / outs[i].ev.runs[run].filename),
                read_file_bytes(ref.dir / ref.ev.runs[run].filename));
    }
    EXPECT_EQ(outs[i].ev.merged.sha256_hex, ref.ev.merged.sha256_hex);
    EXPECT_EQ(read_file_bytes(outs[i].dir / outs[i].ev.merged.filename),
              read_file_bytes(ref.dir / ref.ev.merged.filename));
  }

  // Every artifact verifies, one by one and through the manifest.
  for (const auto& run : ref.ev.runs) {
    const auto vr = verify_artifact_file((ref.dir / run.filename).string());
    EXPECT_TRUE(vr.ok) << vr.summary();
    EXPECT_EQ(vr.sha256_hex, run.sha256_hex);
  }
  const auto mv = verify_manifest(ref.ev.manifest_path);
  EXPECT_TRUE(mv.ok) << mv.error;
  EXPECT_EQ(mv.passed, mv.entries.size());
  EXPECT_GE(mv.passed, 7u);  // 6 runs + merged

  // The merged artifact carries the campaign summary.
  EvidenceReader merged;
  ASSERT_EQ(merged.parse_file((ref.dir / ref.ev.merged.filename).string()),
            Status::kOk);
  ASSERT_EQ(merged.campaign_summaries().size(), 1u);
  EXPECT_EQ(merged.campaign_summaries()[0].name, "evidence_campaign");
  EXPECT_EQ(merged.campaign_summaries()[0].runs, 6u);
  EXPECT_EQ(merged.campaign_summaries()[0].unrecovered, 0u);
}

TEST(EvidenceCampaign, ManifestDetectsTamperedArtifact) {
  const fs::path dir = scratch_dir("tampered");
  const auto opts = campaign_options(1);
  const auto report = fault::CampaignRunner(opts).run(synthetic_scenario);
  const auto ev = write_campaign_evidence(dir.string(), opts, report);

  // Flip one byte of the first run artifact on disk.
  const fs::path victim = dir / ev.runs[0].filename;
  auto bytes = read_file_bytes(victim);
  bytes[bytes.size() / 2] ^= 0x01;
  std::ofstream os(victim, std::ios::binary | std::ios::trunc);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
  os.close();

  const auto mv = verify_manifest(ev.manifest_path);
  EXPECT_FALSE(mv.ok);
  std::size_t failed = 0;
  for (const auto& entry : mv.entries) failed += entry.verified ? 0 : 1;
  EXPECT_EQ(failed, 1u);  // only the tampered artifact fails
}

// ---------------------------------------------------------------- sidecar

TEST(EvidenceSink, SidecarCarriesIdentityAndReexportsWork) {
  const fs::path dir = scratch_dir("sidecar");
  trace::TraceRecorder rec(128);
  trace::MetricsRegistry m;
  fill_workload(rec, m);
  const auto writer =
      build_run_artifact("sidecar_run", 0, 7, m, nullptr, &rec);
  const auto artifact = write_artifact_with_sidecar(
      dir.string(), "run.evd", writer, "sidecar_run", 0, 7);
  EXPECT_EQ(artifact.sha256_hex, writer.sha256_hex());

  // Sidecar exists and pins the digest (it doubles as a manifest line).
  std::ifstream side(dir / "run.evd.meta.jsonl");
  ASSERT_TRUE(side.good());
  std::string line;
  std::getline(side, line);
  EXPECT_NE(line.find(writer.sha256_hex()), std::string::npos);
  EXPECT_NE(line.find("\"name\":\"sidecar_run\""), std::string::npos);

  // Re-exports through the existing trace/metrics paths match the live
  // exporters byte for byte.
  const fs::path chrome = dir / "trace.json";
  const fs::path csv = dir / "metrics.csv";
  std::string error;
  ASSERT_TRUE(reexport_chrome_trace((dir / "run.evd").string(),
                                    chrome.string(), &error))
      << error;
  ASSERT_TRUE(reexport_metrics_csv((dir / "run.evd").string(), csv.string(),
                                   &error))
      << error;
  std::ifstream cj(chrome);
  const std::string chrome_out(std::istreambuf_iterator<char>(cj),
                               std::istreambuf_iterator<char>{});
  EXPECT_EQ(chrome_out, trace::to_chrome_trace(rec));
  std::ifstream mc(csv);
  const std::string csv_out(std::istreambuf_iterator<char>(mc),
                            std::istreambuf_iterator<char>{});
  EXPECT_EQ(csv_out, m.to_csv());
}

// -------------------------------------------------- health/build satellite

TEST(EvidenceSatellite, HealthReportJsonCarriesBuildInfo) {
  obs::HealthReport health;
  health.source = "build_probe";
  const std::string json = health.to_json();
  EXPECT_NE(json.find("\"build\":"), std::string::npos);
  EXPECT_NE(json.find(util::build_info().git_sha), std::string::npos);
  EXPECT_NE(json.find(util::build_info().build_type), std::string::npos);
}

}  // namespace
}  // namespace iecd::evidence
