/// \file rng.hpp
/// Deterministic random streams for fault injection.  Every injection site
/// owns an independent xoshiro256** stream whose state is expanded (via
/// SplitMix64) from a seed derived from the (campaign seed, site name)
/// pair.  Because a site's draws depend only on that pair and on how many
/// faults the site itself decided, the fault sequence at any one site is
/// reproducible in isolation: the same seed replays the same faults no
/// matter which other sites exist, in which order they were wired, or how
/// many worker threads the campaign fans across.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace iecd::fault {

/// SplitMix64 (Steele/Lea/Flood): the canonical seed expander — one 64-bit
/// state, full-period, and statistically strong enough to initialize the
/// main generator from correlated seeds (seed, seed^1, ...).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the site stream generator.  Fast (no divisions), 256-bit
/// state, passes BigCrush — and, unlike std::mt19937, its output for a
/// given seed is pinned down here, not by the standard library vendor, so
/// campaign replays are portable across toolchains.
class Xoshiro256ss {
 public:
  explicit Xoshiro256ss(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& word : s_) word = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1): the top 53 bits scaled — every value is
  /// exactly representable, so comparisons against rates are bit-stable.
  double uniform01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
};

/// FNV-1a over the site name: stable across platforms and runs (unlike
/// std::hash), so a site's stream is a pure function of its name.
constexpr std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Seed of the stream for \p site under \p campaign_seed.  The golden-ratio
/// multiply decorrelates name hashes before they meet the campaign seed;
/// SplitMix64 then whitens the combination into the xoshiro state.
inline std::uint64_t site_seed(std::uint64_t campaign_seed,
                               std::string_view site) {
  return SplitMix64(campaign_seed ^ (fnv1a(site) * 0x9E3779B97F4A7C15ULL))
      .next();
}

}  // namespace iecd::fault
