#include "trace/export.hpp"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

namespace iecd::trace {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Microseconds with nanosecond precision — deterministic formatting.
std::string ts_us(sim::SimTime t) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(t) * 1e-3);
  return buf;
}

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

/// Stable process id per track, in first-appearance order.
std::map<NameId, int> assign_pids(const TraceRecorder& recorder,
                                  std::vector<NameId>* order) {
  std::map<NameId, int> pids;
  recorder.for_each([&](const Event& e) {
    if (pids.emplace(e.track, 0).second) order->push_back(e.track);
  });
  int next = 1;
  for (NameId id : *order) pids[id] = next++;
  return pids;
}

}  // namespace

std::uint64_t write_chrome_trace(const TraceRecorder& recorder,
                                 std::ostream& os) {
  std::vector<NameId> track_order;
  const auto pids = assign_pids(recorder, &track_order);
  const std::uint64_t dropped = recorder.dropped();

  os << "{\"traceEvents\":[";
  bool first = true;
  if (dropped > 0) {
    // Metadata record: the viewer-visible warning that the ring overwrote
    // the oldest events, so the timeline starts mid-run.
    os << "\n{\"name\":\"trace_dropped_events\",\"ph\":\"M\",\"pid\":0,"
       << "\"tid\":0,\"args\":{\"dropped\":" << dropped
       << ",\"retained\":" << recorder.size()
       << ",\"total_recorded\":" << recorder.total_recorded() << "}}";
    first = false;
  }
  for (NameId track : track_order) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
       << pids.at(track) << ",\"tid\":0,\"args\":{\"name\":\""
       << json_escape(recorder.string_at(track)) << "\"}}";
  }
  recorder.for_each([&](const Event& e) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"cat\":\"" << json_escape(recorder.string_at(e.category))
       << "\",\"name\":\"" << json_escape(recorder.string_at(e.name))
       << "\",\"ph\":\"";
    switch (e.type) {
      case EventType::kSpanBegin: os << "B"; break;
      case EventType::kSpanEnd: os << "E"; break;
      case EventType::kSpanComplete: os << "X"; break;
      case EventType::kCounter: os << "C"; break;
      case EventType::kInstant: os << "i"; break;
    }
    os << "\",\"ts\":" << ts_us(e.time);
    if (e.type == EventType::kSpanComplete) {
      os << ",\"dur\":" << ts_us(e.duration);
    }
    os << ",\"pid\":" << pids.at(e.track) << ",\"tid\":0";
    if (e.type == EventType::kInstant) os << ",\"s\":\"p\"";
    if (e.type == EventType::kCounter) {
      os << ",\"args\":{\"value\":" << num(e.value) << "}";
    } else if (e.value != 0.0) {
      os << ",\"args\":{\"v\":" << num(e.value) << "}";
    }
    os << "}";
  });
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return dropped;
}

std::string to_chrome_trace(const TraceRecorder& recorder) {
  std::ostringstream os;
  write_chrome_trace(recorder, os);
  return os.str();
}

std::uint64_t write_csv(const TraceRecorder& recorder, std::ostream& os) {
  const std::uint64_t dropped = recorder.dropped();
  if (dropped > 0) {
    os << "# dropped " << dropped
       << " events (ring overwrote oldest; file starts mid-run)\n";
  }
  os << "seq,type,category,name,track,time_ns,dur_ns,value\n";
  recorder.for_each([&](const Event& e) {
    const char* type = "";
    switch (e.type) {
      case EventType::kSpanBegin: type = "span_begin"; break;
      case EventType::kSpanEnd: type = "span_end"; break;
      case EventType::kSpanComplete: type = "span"; break;
      case EventType::kCounter: type = "counter"; break;
      case EventType::kInstant: type = "instant"; break;
    }
    char buf[64];
    os << e.seq << ',' << type << ','
       << recorder.string_at(e.category) << ','
       << recorder.string_at(e.name) << ','
       << recorder.string_at(e.track) << ','
       << e.time << ',' << e.duration << ',';
    std::snprintf(buf, sizeof buf, "%.9g", e.value);
    os << buf << '\n';
  });
  return dropped;
}

std::string to_csv(const TraceRecorder& recorder) {
  std::ostringstream os;
  write_csv(recorder, os);
  return os.str();
}

bool export_chrome_trace_file(const TraceRecorder& recorder,
                              const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  write_chrome_trace(recorder, os);
  return os.good();
}

}  // namespace iecd::trace
