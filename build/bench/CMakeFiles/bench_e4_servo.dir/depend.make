# Empty dependencies file for bench_e4_servo.
# This may be replaced when dependencies are built.
