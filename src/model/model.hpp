/// \file model.hpp
/// The block-diagram graph: owns blocks, records connections, computes the
/// data-flow execution order (topological over direct-feedthrough edges)
/// and detects algebraic loops — the consistency layer Simulink provides
/// before any simulation or code generation can run.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "model/block.hpp"
#include "util/diagnostics.hpp"

namespace iecd::model {

class Model {
 public:
  explicit Model(std::string name = "model");

  const std::string& name() const { return name_; }

  /// Adds a block; instance names must be unique within the model.
  template <typename T, typename... Args>
  T& add(std::string block_name, Args&&... args) {
    ensure_unique(block_name);
    auto block =
        std::make_unique<T>(std::move(block_name), std::forward<Args>(args)...);
    T& ref = *block;
    blocks_.push_back(std::move(block));
    invalidate();
    return ref;
  }

  /// Connects src.out[src_port] -> dst.in[dst_port].  An input accepts only
  /// one driver; reconnecting replaces it.
  void connect(Block& src, int src_port, Block& dst, int dst_port);

  Block* find(const std::string& block_name);
  const Block* find(const std::string& block_name) const;
  bool remove(const std::string& block_name);
  bool rename(const std::string& old_name, const std::string& new_name);

  const std::vector<std::unique_ptr<Block>>& blocks() const { return blocks_; }
  std::size_t block_count() const { return blocks_.size(); }

  /// Structural checks: unconnected inputs (warning), algebraic loops
  /// (error, with the cycle spelled out), invalid sample times.
  util::DiagnosticList check() const;

  /// Execution order.  Throws std::logic_error on algebraic loops.
  const std::vector<Block*>& sorted() const;

 private:
  void ensure_unique(const std::string& block_name) const;
  void invalidate() { order_valid_ = false; }
  void compute_order() const;

  std::string name_;
  std::vector<std::unique_ptr<Block>> blocks_;
  mutable std::vector<Block*> order_;
  mutable bool order_valid_ = false;
};

}  // namespace iecd::model
