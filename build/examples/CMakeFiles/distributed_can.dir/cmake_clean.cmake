file(REMOVE_RECURSE
  "CMakeFiles/distributed_can.dir/distributed_can.cpp.o"
  "CMakeFiles/distributed_can.dir/distributed_can.cpp.o.d"
  "distributed_can"
  "distributed_can.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_can.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
