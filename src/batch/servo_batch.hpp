/// \file servo_batch.hpp
/// Lane-batched MIL execution of the servo case study: N independent runs
/// of the closed loop ServoSystem::run_mil() simulates — quadrature
/// decoder latch, wrapped count difference, speed scaling and moving-
/// average filter, PI with back-calculation anti-windup, mode switch, PWM
/// duty latch, and the RK4-integrated DC motor — advanced in lockstep with
/// every per-run scalar laid out as a SoA lane array (lanes.hpp).
///
/// Determinism contract (locked by tests/batch_test.cpp): every lane is
/// bit-identical to the scalar engine running the same configuration.
/// ServoBatch replicates the engine's arithmetic expression for expression
/// — the major-step time grid double(k) * double(period_ns) * 1e-9, the
/// stop test t >= stop - 1e-12, the block evaluation formulas, and the
/// shared RK4 stage/combination loops (util/rk4.hpp) — so batch width,
/// lane position and remainder grouping never change a trajectory, a
/// metric, or a downstream evidence artifact.  Lanes never interact:
/// per-lane divergence (saturation, early finish, a non-finite fault) is
/// handled by masking the lane's bookkeeping, never by branching the
/// shared instruction stream.
///
/// Scope: the MIL loop with no operator key events (the stimulus
/// run_mil() drives: mode chart in "automatic", keyboard set-point offset
/// 0).  Fixed-point configurations are out of scope — use the scalar
/// engine for those.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "batch/lanes.hpp"
#include "model/logging.hpp"
#include "model/metrics.hpp"
#include "plant/dc_motor.hpp"

namespace iecd::batch {

/// Lane-uniform configuration: the schedule and hardware quantities the
/// engine derives once per model rather than once per run.  Mirrors the
/// corresponding core::ServoConfig fields.
struct ServoBatchConfig {
  double period_s = 0.001;   ///< control (sample) period
  double duration_s = 1.0;   ///< default stop time (lanes may override)
  int minor_steps = 4;       ///< RK4 substeps per major step
  int encoder_lines = 100;
  int speed_filter_taps = 8;
  /// PWM counter modulo.  0 = clamp-only pass-through (a bean that never
  /// solved its timing).  For parity with ServoSystem::run_mil read the
  /// solved value from the servo's PWM bean ("modulo" property; the
  /// constructor derives it from pwm_frequency_hz — 3000 for the default
  /// configuration).
  std::int64_t pwm_modulo = 0;
  /// PE-block hardware fidelity (core::ServoConfig::mil_hw_fidelity):
  /// false = ideal pass-through decoder/actuator ablation.
  bool hw_fidelity = true;
};

/// Per-lane scenario parameters: what a sweep or fault campaign varies
/// from run to run.
struct ServoLane {
  double setpoint = 100.0;      ///< speed set-point [rad/s]
  double setpoint_time = 0.05;  ///< step instant [s]
  double kp = 0.004;
  double ki = 0.12;
  /// Per-lane stop time; 0 = ServoBatchConfig::duration_s.  A lane whose
  /// stop time passes is masked out (finishes early) while the rest of the
  /// batch keeps stepping.
  double duration_s = 0.0;
  plant::DcMotorParams motor;
  /// Optional load-torque disturbance (fault campaigns); must be pure in
  /// (t, omega) — e.g. fault::make_load_torque's pre-drawn pulse schedule.
  plant::LoadTorque load;
};

/// Extracted per-lane results, same shape as ServoSystem::MilResult and
/// computed with the same model/metrics.hpp functions.
struct ServoLaneResult {
  model::SampleLog speed;
  model::SampleLog duty;
  model::StepMetrics metrics;
  double iae = 0.0;
  /// True if the lane's state went non-finite (a faulted lane is retired
  /// at the end of the offending major step; its log keeps the samples
  /// recorded before the fault).  Healthy lanes are unaffected.
  bool faulted = false;
};

class ServoBatch {
 public:
  ServoBatch(ServoBatchConfig config, std::span<const ServoLane> lanes);

  std::size_t width() const { return width_; }
  const ServoBatchConfig& config() const { return config_; }

  /// Advances every still-active lane one major step (output -> update ->
  /// RK4 integrate, exactly the engine's phase order).  Returns false once
  /// every lane reached its stop time.
  bool step();
  /// Steps until every lane is done.
  void run();

  /// Per-lane trajectory + metrics (call after run()).
  ServoLaneResult result(std::size_t lane) const;
  bool lane_faulted(std::size_t lane) const;

 private:
  void controller_and_record(double t);
  void integrate(double t);
  void retire_nonfinite_lanes();

  ServoBatchConfig config_;
  std::size_t width_ = 0;
  std::int64_t base_period_ns_ = 0;
  double base_period_ = 0.0;  ///< double(base_period_ns_) * 1e-9
  double gain_ = 0.0;         ///< speed scaling 2*pi / (cpr * period)
  double cpr_ = 0.0;
  std::uint64_t major_ = 0;

  // Per-lane scenario parameters (SoA).
  LaneVector<> sp_, sp_time_, kp_, ki_, stop_;
  LaneVector<> res_, ind_, kt_, ke_, inertia_, damping_, supply_;
  std::vector<plant::LoadTorque> load_;
  bool any_load_ = false;

  // Per-lane controller + plant state (SoA).
  LaneVector<> cur_, omega_, theta_;   ///< motor {i, w, theta}
  LaneVector<> integral_, prev_cnt_;
  LaneVector<> window_;  ///< moving-average window, rows newest-first
  std::size_t window_len_ = 0;

  // Per-lane step scratch (SoA).
  LaneVector<> cnt_, spd_, filt_, err_, unsat_, sat_, duty_, volt_;
  LaneVector<> yi_, yw_, yt_, tau_;
  LaneVector<> k1_[3], k2_[3], k3_[3], k4_[3];

  // Lane masks and bookkeeping.
  std::vector<std::uint8_t> active_;   ///< still below its stop time
  std::vector<std::uint8_t> faulted_;
  std::size_t remaining_ = 0;

  // Recorded trajectories: time grid shared across lanes, values strided
  // by width (speed_hist_[major * width + lane]).  A lane's log length is
  // the count of majors it was active for (lane_samples_).
  std::vector<double> times_;
  std::vector<double> speed_hist_, duty_hist_;
  std::vector<std::size_t> lane_samples_;
};

/// Convenience: construct, run and extract every lane.
std::vector<ServoLaneResult> run_servo_batch(const ServoBatchConfig& config,
                                             std::span<const ServoLane> lanes);

}  // namespace iecd::batch
