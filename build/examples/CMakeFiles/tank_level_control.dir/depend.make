# Empty dependencies file for tank_level_control.
# This may be replaced when dependencies are built.
