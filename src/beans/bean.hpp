/// \file bean.hpp
/// Embedded Bean base class.  A bean encapsulates one hardware function
/// (ADC converter, PWM channel, periodic interrupt, ...) behind a unified
/// interface of *properties* (design-time settings), *methods* (the C API
/// the generated application calls) and *events* (interrupt callbacks).
/// Beans validate themselves against the selected CPU derivative, bind to
/// the simulated peripheral at build time, and emit their PE-style C
/// driver sources.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "beans/property.hpp"
#include "mcu/derivative.hpp"
#include "mcu/mcu.hpp"
#include "util/diagnostics.hpp"

namespace iecd::beans {

/// Method of a bean's generated driver (e.g. AD1_Measure).
struct MethodSpec {
  std::string name;
  std::string signature;  ///< C signature fragment, e.g. "byte %M_GetValue(word* Value)"
  std::string description;
};

/// Event a bean can raise (maps to an interrupt service routine).
struct EventSpec {
  std::string name;  ///< e.g. "OnEnd"
  std::string description;
};

/// Resource units a bean consumes on the selected derivative; summed and
/// checked by the project-level expert system.
struct ResourceDemand {
  int adc_channels = 0;
  int pwm_channels = 0;
  int timer_channels = 0;
  int quadrature_decoders = 0;
  int uarts = 0;
  int gpio_pins = 0;
};

/// Generated driver sources for one bean.
struct DriverSource {
  std::string header_name;
  std::string header;
  std::string source_name;
  std::string source;
};

class GpioPortHolder;

/// Shared state threaded through Bean::bind of every bean in a project:
/// interrupt vector allocation and the shared GPIO port.
struct BindContext {
  explicit BindContext(mcu::Mcu& target) : mcu(target) {}

  mcu::Mcu& mcu;
  int next_vector = 100;
  mcu::IrqVector alloc_vector() { return next_vector++; }

  /// Lazily-created port shared by all BitIo beans (pins are per-bean).
  std::shared_ptr<GpioPortHolder> gpio;
};

class Bean {
 public:
  Bean(std::string instance_name, std::string type_name);
  virtual ~Bean() = default;

  Bean(const Bean&) = delete;
  Bean& operator=(const Bean&) = delete;

  const std::string& name() const { return name_; }
  const std::string& type_name() const { return type_name_; }
  void rename(const std::string& new_name);

  PropertySet& properties() { return props_; }
  const PropertySet& properties() const { return props_; }

  /// Convenience validated property write.
  bool set_property(const std::string& prop, const PropertyValue& value,
                    util::DiagnosticList& diagnostics);

  virtual std::vector<MethodSpec> methods() const = 0;
  virtual std::vector<EventSpec> events() const = 0;
  virtual ResourceDemand demand() const = 0;

  /// Expert-system pass: checks properties against the derivative and
  /// computes derived properties (achieved periods, prescalers, ...).
  virtual void validate(const mcu::DerivativeSpec& cpu,
                        util::DiagnosticList& diagnostics) = 0;

  /// Instantiates the peripheral on the target MCU.  Must be called after a
  /// successful validate() against the same derivative.
  virtual void bind(BindContext& ctx) = 0;
  bool bound() const { return bound_; }

  /// Installs (or replaces) the ISR attached to one of this bean's events.
  /// May be called before or after bind(); the registered trampoline picks
  /// up the current handler at dispatch time.
  void set_event_handler(const std::string& event, mcu::IsrHandler handler);

  /// Trampoline entry points: run the currently installed handler for an
  /// event.  Exposed so bean subclasses can register custom vectors (e.g.
  /// BitIo pins) that still honour late handler installation.
  std::uint64_t dispatch_event_body(const std::string& event);
  void dispatch_event_commit(const std::string& event);

  /// Emits the PE-style C driver (only enabled methods appear).
  virtual DriverSource driver_source() const = 0;

  /// Method enablement: the make_rtw_hook auto-enables exactly the methods
  /// the generated model code calls (paper Section 5).
  void enable_method(const std::string& method);
  bool method_enabled(const std::string& method) const;
  const std::set<std::string>& enabled_methods() const {
    return enabled_methods_;
  }

  /// Interrupt vector assigned to an event at bind time (-1 if none).
  mcu::IrqVector event_vector(const std::string& event) const;

  /// Bean-Inspector rendering: type, instance, properties, methods, events.
  std::string inspector_render() const;

 protected:
  void mark_bound() { bound_ = true; }
  void assign_event_vector(const std::string& event, mcu::IrqVector vec);

  /// Allocates a vector, registers a trampoline ISR forwarding to the
  /// event's current handler, and records the vector for event_vector().
  /// Returns the allocated vector.
  mcu::IrqVector register_event(BindContext& ctx, const std::string& event,
                                int priority,
                                std::uint32_t default_stack_bytes = 96);

  /// Emits the common driver header boilerplate.
  std::string driver_header_prologue() const;

  /// Emits C declarations for the currently enabled methods ("%M" in the
  /// signature expands to the instance name).
  std::string driver_method_decls() const;

 private:
  std::string name_;
  std::string type_name_;
  PropertySet props_;
  std::set<std::string> enabled_methods_;
  std::vector<std::pair<std::string, mcu::IrqVector>> event_vectors_;
  std::map<std::string, std::shared_ptr<mcu::IsrHandler>> event_slots_;
  bool bound_ = false;
};

}  // namespace iecd::beans
