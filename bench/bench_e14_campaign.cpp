// E14 — fleet-scale campaign engine (src/campaign/): the work-stealing
// scheduler + streaming O(sites) aggregation + checkpoint/resume measured
// against the retained baseline.  Four tables:
//
//   (a) memory: fault::CampaignRunner (retains per-run registries and
//       health reports, then copies them into the report) vs the streaming
//       CampaignEngine, peak RSS measured in a forked child per
//       configuration (ru_maxrss is a process-lifetime high-water mark, so
//       in-process comparisons would contaminate each other).  The
//       retained cost is linear in runs; the extrapolated retained RSS at
//       the fleet scale vs the streaming engine's MEASURED RSS at that
//       scale is the gated ratio (>= 10x).
//   (b) scheduling: a straggler mix (a contiguous heavy front block, 8x
//       the base work) run under static contiguous tiling without
//       stealing vs cyclic placement with steal-half stealing — the gated
//       speedup (>= 1.3x runs/s).
//   (c) determinism: the engine's campaign JSON is byte-identical across
//       thread counts, batch widths and placements, and identical to
//       fault::CampaignRunner's.
//   (d) checkpoint/resume: a child process killed (_exit) mid-campaign
//       right after a checkpoint seal; the resumed campaign's report JSON
//       and evidence MANIFEST.jsonl are byte-compared against an
//       uninterrupted run.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "bench_util.hpp"
#include "campaign/engine.hpp"
#include "fault/campaign.hpp"
#include "fault/rng.hpp"

#if defined(__unix__)
#include <sys/wait.h>
#include <unistd.h>
#endif

using namespace iecd;

namespace {

// ------------------------------------------------------------- workloads

std::size_t fleet_runs() {
  if (bench::overrides().runs > 0) return bench::overrides().runs;
  return bench::smoke() ? 5000 : 100000;
}
std::size_t memory_runs() { return bench::smoke() ? 1200 : 3000; }
std::size_t steal_runs() { return bench::smoke() ? 512 : 2048; }
std::size_t identity_runs() { return bench::smoke() ? 192 : 512; }

std::size_t bench_threads() {
  if (bench::overrides().threads > 0) return bench::overrides().threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 4 ? 4 : (hw >= 2 ? 2 : 1);
}

/// Deterministic busy work: a SplitMix64-fed fma chain.  Pure arithmetic,
/// no clocks — the result (and therefore every campaign output) is
/// bit-identical across threads and schedules.
double spin(std::uint64_t seed, std::size_t iters) {
  fault::SplitMix64 rng(seed);
  double acc = 0.0;
  for (std::size_t i = 0; i < iters; ++i) {
    const double x =
        static_cast<double>(rng.next() >> 11) * 0x1.0p-53;  // [0, 1)
    acc = acc * 0.9999999 + x;
  }
  return acc;
}

/// One synthetic campaign run.  \p heavy_front runs at the FRONT of the
/// index space cost 8x the base work — the straggler mix the stealing
/// table gates on.  \p heavy_health bulks the per-run health report with
/// two full timing monitors (6 histograms, ~92 kB retained per run) so
/// the memory table has a realistic per-run footprint to retain.
fault::CampaignScenario make_scenario(std::size_t base_iters,
                                      std::size_t heavy_front,
                                      bool heavy_health) {
  return [base_iters, heavy_front, heavy_health](fault::RunContext& ctx) {
    const std::size_t mult = ctx.index < heavy_front ? 8 : 1;
    const double acc = spin(ctx.run_seed, base_iters * mult);
    ctx.metrics.stats("campaign.cost").add(acc);
    ctx.metrics.counter("campaign.iters").value += base_iters * mult;
    if (heavy_health) {
      auto& work = ctx.health.tasks["e14.work"];
      auto& drain = ctx.health.tasks["e14.drain"];
      const auto t = static_cast<sim::SimTime>(1000 + ctx.index);
      work.record(t, t + 1, t + 2 + static_cast<sim::SimTime>(mult));
      drain.record(t, t + 1, t + 3);
      ctx.health.watermarks["e14.acc"].update(acc);
    }
    return true;
  };
}

fault::CampaignOptions campaign_options(const char* name, std::size_t runs,
                                        std::size_t threads) {
  fault::CampaignOptions opts;
  opts.name = name;
  opts.seed = 2026;
  opts.runs = runs;
  opts.threads = threads;
  return opts;
}

campaign::EngineOptions engine_options(const char* name, std::size_t runs,
                                       std::size_t threads,
                                       const std::string& dir) {
  campaign::EngineOptions eo;
  eo.campaign = campaign_options(name, runs, threads);
  eo.evidence_dir = dir;
  eo.write_run_artifacts = false;
  return eo;
}

std::uint64_t fnv64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

// ------------------------------------------- fork-per-measurement harness

struct ChildResult {
  double rss_kb = 0.0;
  double wall_ms = 0.0;
  std::uint64_t hash = 0;
  bool ok = false;
};

/// Runs \p fn (returning an output hash) in a forked child and reports the
/// CHILD's peak RSS — the only way to compare configurations, since
/// ru_maxrss never decreases within one process.  Falls back to in-process
/// execution (shared, monotonic RSS) where fork is unavailable.
template <typename Fn>
ChildResult measure_in_child(Fn fn) {
  ChildResult r;
#if defined(__unix__)
  int fds[2];
  if (pipe(fds) != 0) return r;
  const pid_t pid = fork();
  if (pid == 0) {
    close(fds[0]);
    ChildResult child;
    bench::Stopwatch watch;
    child.hash = fn();
    child.wall_ms = watch.elapsed_ms();
    child.rss_kb = bench::peak_rss_kb();
    child.ok = true;
    ssize_t ignored = write(fds[1], &child, sizeof child);
    (void)ignored;
    close(fds[1]);
    _exit(0);
  }
  close(fds[1]);
  if (pid > 0) {
    std::size_t got = 0;
    auto* p = reinterpret_cast<char*>(&r);
    while (got < sizeof r) {
      const ssize_t n = read(fds[0], p + got, sizeof r - got);
      if (n <= 0) break;
      got += static_cast<std::size_t>(n);
    }
    int status = 0;
    waitpid(pid, &status, 0);
    if (got != sizeof r || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      r.ok = false;
    }
  }
  close(fds[0]);
#else
  bench::Stopwatch watch;
  r.hash = fn();
  r.wall_ms = watch.elapsed_ms();
  r.rss_kb = bench::peak_rss_kb();
  r.ok = true;
#endif
  return r;
}

// ------------------------------------------------------------ table (a)

void memory_table() {
  const std::size_t n = memory_runs();
  const std::size_t fleet = fleet_runs();
  const std::size_t threads = bench_threads();
  const std::size_t iters = 400;

  std::printf("(a) aggregation memory: retained runner vs streaming engine "
              "(peak RSS per forked child)\n\n");
  std::printf("%-26s | %-8s %-12s %-10s\n", "engine", "runs", "peak RSS[MB]",
              "wall[ms]");
  bench::print_rule(64);

  const auto scenario = make_scenario(iters, 0, /*heavy_health=*/true);
  const ChildResult retained = measure_in_child([&] {
    const auto report =
        fault::CampaignRunner(campaign_options("e14_mem", n, threads))
            .run(scenario);
    return fnv64(report.to_json());
  });
  const ChildResult streaming = measure_in_child([&] {
    campaign::CampaignEngine engine(
        engine_options("e14_mem", n, threads, "E14_mem_stream"));
    return fnv64(engine.run(scenario).report.to_json());
  });
  const ChildResult fleet_stream = measure_in_child([&] {
    campaign::CampaignEngine engine(
        engine_options("e14_fleet", fleet, threads, "E14_fleet_stream"));
    return fnv64(engine.run(scenario).report.to_json());
  });

  std::printf("%-26s | %-8zu %-12.1f %-10.1f\n", "retained (CampaignRunner)",
              n, retained.rss_kb / 1024.0, retained.wall_ms);
  std::printf("%-26s | %-8zu %-12.1f %-10.1f\n", "streaming (engine)", n,
              streaming.rss_kb / 1024.0, streaming.wall_ms);
  std::printf("%-26s | %-8zu %-12.1f %-10.1f\n", "streaming (engine)", fleet,
              fleet_stream.rss_kb / 1024.0, fleet_stream.wall_ms);

  // Retained growth is linear in runs; extrapolate its fleet-scale RSS
  // from the measured per-run retention cost and compare against the
  // streaming engine's MEASURED fleet-scale RSS.
  const double per_run_kb =
      (retained.rss_kb - streaming.rss_kb) / static_cast<double>(n);
  const double retained_fleet_kb =
      streaming.rss_kb + per_run_kb * static_cast<double>(fleet);
  const double ratio = fleet_stream.rss_kb > 0.0
                           ? retained_fleet_kb / fleet_stream.rss_kb
                           : 0.0;
  std::printf("%-26s | %-8zu %-12.1f (extrapolated, %.1f kB/run retained)\n",
              "retained (extrapolated)", fleet, retained_fleet_kb / 1024.0,
              per_run_kb);
  std::printf("\nfleet-scale RSS ratio (retained extrapolated / streaming "
              "measured): %.1fx, identical reports: %s\n\n",
              ratio,
              retained.hash == streaming.hash ? "yes" : "NO");

  bench::summarize("e14.mem.retained_rss_kb", retained.rss_kb);
  bench::summarize("e14.mem.stream_rss_kb", streaming.rss_kb);
  bench::summarize("e14.mem.fleet_runs", static_cast<double>(fleet));
  bench::summarize("e14.mem.fleet_stream_rss_kb", fleet_stream.rss_kb);
  bench::summarize("e14.mem.rss_ratio", ratio);
  bench::summarize("e14.mem.report_identical",
                   retained.ok && streaming.ok &&
                           retained.hash == streaming.hash
                       ? 1.0
                       : 0.0);
  bench::summarize("e14.fleet.runs_per_s",
                   fleet_stream.wall_ms > 0.0
                       ? 1000.0 * static_cast<double>(fleet) /
                             fleet_stream.wall_ms
                       : 0.0);
}

// ------------------------------------------------------------ table (b)

void steal_table() {
  const std::size_t n = steal_runs();
  const std::size_t threads = bench_threads();
  const std::size_t iters = bench::smoke() ? 2000 : 4000;
  const std::size_t heavy_front = n / 8;

  std::printf("(b) straggler mix (front %zu/%zu runs cost 8x): static "
              "tiling vs work stealing, %zu threads\n\n",
              heavy_front, n, threads);
  std::printf("%-26s | %-10s %-10s %-8s %-8s\n", "schedule", "wall[ms]",
              "runs/s", "steals", "speedup");
  bench::print_rule(70);

  const auto scenario = make_scenario(iters, heavy_front, false);
  auto run_once = [&](bool contiguous, bool stealing, campaign::StreamStats& sched) {
    campaign::EngineOptions eo = engine_options(
        "e14_steal", n, threads,
        contiguous ? "E14_steal_static" : "E14_steal_ws");
    eo.contiguous = contiguous;
    eo.stealing = stealing;
    campaign::CampaignEngine engine(eo);
    auto result = engine.run(scenario);
    sched = result.sched;
    return fnv64(result.report.to_json());
  };

  campaign::StreamStats static_sched;
  bench::Stopwatch static_watch;
  const std::uint64_t static_hash = run_once(true, false, static_sched);
  const double static_ms = static_watch.elapsed_ms();
  const double static_rps = 1000.0 * static_cast<double>(n) / static_ms;
  std::printf("%-26s | %-10.1f %-10.1f %-8llu %-8s\n",
              "static contiguous", static_ms, static_rps,
              static_cast<unsigned long long>(static_sched.steals), "1.00");

  campaign::StreamStats ws_sched;
  bench::Stopwatch ws_watch;
  const std::uint64_t ws_hash = run_once(false, true, ws_sched);
  const double ws_ms = ws_watch.elapsed_ms();
  const double ws_rps = 1000.0 * static_cast<double>(n) / ws_ms;
  const double speedup = ws_rps / static_rps;
  std::printf("%-26s | %-10.1f %-10.1f %-8llu %-8.2f\n",
              "cyclic + steal-half", ws_ms, ws_rps,
              static_cast<unsigned long long>(ws_sched.steals), speedup);

  std::printf("\nsteal speedup: %.2fx (identical outputs: %s, window "
              "waits: %llu, peak pending groups: %zu)\n\n",
              speedup, static_hash == ws_hash ? "yes" : "NO",
              static_cast<unsigned long long>(ws_sched.window_waits),
              ws_sched.peak_pending_groups);

  bench::summarize("e14.steal.static_runs_per_s", static_rps);
  bench::summarize("e14.steal.ws_runs_per_s", ws_rps);
  bench::summarize("e14.steal.speedup", speedup);
  bench::summarize("e14.steal.steals", static_cast<double>(ws_sched.steals));
  bench::summarize("e14.steal.identical",
                   static_hash == ws_hash ? 1.0 : 0.0);
}

// ------------------------------------------------------------ table (c)

void identity_table() {
  const std::size_t n = identity_runs();
  const std::size_t iters = 200;
  const auto scenario = make_scenario(iters, n / 8, true);

  std::printf("(c) determinism: campaign JSON across engines/threads/"
              "batches\n\n");

  const auto baseline =
      fault::CampaignRunner(campaign_options("e14_ident", n, 1))
          .run(scenario);
  const std::string expect = baseline.to_json();

  struct Config {
    const char* label;
    std::size_t threads;
    std::size_t batch;
    bool contiguous;
  };
  const Config configs[] = {
      {"engine t1", 1, 1, false},
      {"engine t2", 2, 1, false},
      {"engine t8", 8, 1, false},
      {"engine t4 b8", 4, 8, false},
      {"engine t4 contiguous", 4, 1, true},
  };
  bool all_identical = true;
  for (const Config& c : configs) {
    campaign::EngineOptions eo =
        engine_options("e14_ident", n, c.threads, "E14_ident");
    eo.campaign.batch = c.batch;
    eo.contiguous = c.contiguous;
    const auto result = campaign::CampaignEngine(eo).run(scenario);
    const bool same = result.report.to_json() == expect;
    all_identical = all_identical && same;
    std::printf("  %-22s vs retained runner: %s\n", c.label,
                same ? "byte-identical" : "DIFFERS");
  }
  std::printf("\n");
  bench::summarize("e14.identity.all_identical", all_identical ? 1.0 : 0.0);
}

// ------------------------------------------------------------ table (d)

void resume_table() {
  const std::size_t n = identity_runs();
  const std::size_t iters = 200;
  const std::size_t every = n / 4;
  const auto scenario = make_scenario(iters, 0, true);

  std::printf("(d) checkpoint/resume: child killed after a checkpoint "
              "seal, campaign resumed\n\n");

  std::filesystem::remove_all("E14_resume_full");
  std::filesystem::remove_all("E14_resume_kill");

  auto options_for = [&](const char* dir) {
    campaign::EngineOptions eo =
        engine_options("e14_resume", n, 2, dir);
    eo.write_run_artifacts = true;
    eo.checkpoint_every = every;
    return eo;
  };

  // The uninterrupted reference.
  const auto full =
      campaign::CampaignEngine(options_for("E14_resume_full")).run(scenario);

  bool killed = false;
  bool resumed_identical = false;
#if defined(__unix__)
  const pid_t pid = fork();
  if (pid == 0) {
    campaign::EngineOptions eo = options_for("E14_resume_kill");
    eo.on_checkpoint = [](const campaign::CheckpointState&) { _exit(42); };
    campaign::CampaignEngine(eo).run(scenario);
    _exit(0);  // not reached: the first seal kills the child
  }
  int status = 0;
  waitpid(pid, &status, 0);
  killed = WIFEXITED(status) && WEXITSTATUS(status) == 42;
#endif
  if (killed) {
    const auto resumed =
        campaign::CampaignEngine(options_for("E14_resume_kill"))
            .run(scenario);
    resumed_identical =
        resumed.resumed &&
        resumed.report.to_json() == full.report.to_json() &&
        slurp("E14_resume_kill/MANIFEST.jsonl") ==
            slurp("E14_resume_full/MANIFEST.jsonl");
    std::printf("  child killed after checkpoint (watermark %zu), resumed "
                "at %zu/%zu: report + manifest %s\n\n",
                resumed.resume_start, resumed.resume_start, n,
                resumed_identical ? "byte-identical" : "DIFFER");
  } else {
    std::printf("  fork/kill unavailable on this platform — resume "
                "identity covered by tests/campaign_test.cpp\n\n");
  }
  bench::summarize("e14.resume.killed", killed ? 1.0 : 0.0);
  bench::summarize("e14.resume.identical", resumed_identical ? 1.0 : 0.0);
}

void print_table() {
  std::printf("E14: fleet-scale campaign engine — streaming aggregation, "
              "work stealing, checkpoint/resume\n\n");
  memory_table();
  steal_table();
  identity_table();
  resume_table();
  std::printf("expected shape: retained memory grows ~linearly with runs "
              "while the streaming engine stays\nO(sites + window); the CI "
              "gate holds e14.mem.rss_ratio >= 10, e14.steal.speedup >= "
              "1.3 and\nevery identity/resume flag at 1.\n\n");
}

// -------------------------------------------------- microbenchmarks

void BM_StreamCampaign(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const std::size_t runs = 256;
  const auto scenario = make_scenario(200, runs / 8, false);
  for (auto _ : state) {
    campaign::CampaignEngine engine(
        engine_options("e14_bm", runs, threads, "E14_bm"));
    auto result = engine.run(scenario);
    benchmark::DoNotOptimize(result.report.faults_injected);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(runs));
}
BENCHMARK(BM_StreamCampaign)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

IECD_BENCH_MAIN(print_table)
