/// \file stream.hpp
/// StreamRunner: the campaign execution core — a work-stealing scheduler
/// over lane groups feeding a windowed index-order fold (fold.hpp).
///
/// Scheduling: the groups are cut into contiguous chunks and dealt to
/// per-worker deques.  An owner always claims from the FRONT of its deque
/// (its lowest run indices — the invariant the reorder window's
/// deadlock-freedom proof rests on); an idle worker steals the BACK half
/// of a victim's deque (the work its owner would reach last).  Because
/// results flow through the ReorderFold, the sink sees groups in strict
/// run-index order regardless of which worker ran what, so the merged
/// output is byte-identical for any thread count, chunk size, steal
/// schedule and window — the repo-wide determinism contract.
///
/// Placement: kCyclic (default) deals chunks round-robin, so every
/// worker's front sits near the watermark and a bounded reorder window
/// throttles without stalling — this is what makes O(window) streaming
/// memory possible.  kContiguous is the classic static tiling (worker w
/// owns one solid block); it is kept as the measured baseline — with a
/// bounded window it would stall every worker but the first, so its auto
/// window is unbounded (O(runs) buffering, the old behaviour).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>

#include "campaign/fold.hpp"
#include "obs/progress.hpp"

namespace iecd::campaign {

enum class Placement {
  kCyclic,      ///< chunks dealt round-robin (streaming-friendly)
  kContiguous,  ///< one solid block per worker (static-tiling baseline)
};

struct StreamOptions {
  /// Worker threads; 0 selects hardware_concurrency.  1 executes groups
  /// inline in index order (the sequential reference execution).
  std::size_t threads = 0;
  /// Lane-group width: each work item covers up to `batch` consecutive
  /// run indices (1 = scalar tiling).
  std::size_t batch = 1;
  /// Reorder window in RUNS: a group may start only once the fold is
  /// within `window` runs of it, bounding buffered state to O(window).
  /// 0 = auto — cyclic placement picks max(2 * threads * chunk * batch,
  /// 64) so every worker's initial front is eligible; contiguous
  /// placement gets an effectively unbounded window (see file comment).
  std::size_t window = 0;
  /// Groups per placement chunk (the steal granule); 0 = auto (4).
  std::size_t chunk = 0;
  Placement placement = Placement::kCyclic;
  /// Steal-half work stealing between worker deques.  Off = pure static
  /// schedule (the baseline the E14 bench gates against).
  bool stealing = true;
  /// Optional live progress counters (obs/progress.hpp).
  obs::CampaignProgress* progress = nullptr;
};

struct StreamStats {
  std::size_t runs = 0;          ///< total run count (absolute index space)
  std::size_t start = 0;         ///< first executed run index (resume)
  std::size_t groups = 0;        ///< groups executed
  std::size_t threads_used = 0;
  std::size_t window = 0;        ///< resolved reorder window (runs)
  std::uint64_t steals = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t window_waits = 0;     ///< claims throttled by the window
  std::size_t peak_pending_groups = 0;  ///< reorder-buffer high-water mark
  double wall_ms = 0.0;
};

class StreamRunner {
 public:
  /// Executes the lane group covering runs [first, first + metrics.size()),
  /// recording run first + k into metrics[k] / health[k].  Runs on an
  /// arbitrary worker thread; must touch only the handed spans.
  using GroupFn = std::function<void(
      std::size_t first, std::span<trace::MetricsRegistry> metrics,
      std::span<obs::HealthReport> health)>;

  /// Receives every executed group strictly in ascending index order (the
  /// ReorderFold contract: serialized, never concurrent, free to move the
  /// buffers out).
  using SinkFn = std::function<void(GroupResult&)>;

  explicit StreamRunner(StreamOptions options = {});

  const StreamOptions& options() const { return options_; }

  /// Executes runs [0, runs).
  StreamStats run(std::size_t runs, const GroupFn& group,
                  const SinkFn& sink) const;

  /// Resume form: executes runs [start, runs) with lane groups tiled on
  /// ABSOLUTE batch boundaries, so a resumed campaign reproduces the
  /// uninterrupted run's exact group structure.  \p start must be
  /// group-aligned (a multiple of batch, or == runs).
  StreamStats run(std::size_t runs, std::size_t start, const GroupFn& group,
                  const SinkFn& sink) const;

 private:
  StreamOptions options_;
};

}  // namespace iecd::campaign
