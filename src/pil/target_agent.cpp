#include "pil/target_agent.hpp"

namespace iecd::pil {

TargetAgent::TargetAgent(rt::Runtime& runtime, beans::SerialBean& serial,
                         codegen::SignalBuffer& buffer)
    : runtime_(runtime), serial_(serial), buffer_(buffer) {
  decoder_.set_callback([this](const Frame& frame) {
    if (frame.type != FrameType::kSensorData) return;
    buffer_.set_inputs(decode_signals(frame.payload));
    respond_ = true;
    respond_seq_ = frame.seq;
  });
}

void TargetAgent::start() {
  mcu::IsrHandler handler;
  handler.name = "pil_rx";
  handler.stack_bytes = 192;
  handler.body = [this]() -> std::uint64_t {
    std::uint64_t cycles = per_byte_cycles_;
    const auto byte = serial_.RecvChar();
    if (!byte) return cycles;
    respond_ = false;
    decoder_.feed(*byte);
    if (respond_) {
      // The completed sensor frame stands in for the sampling interrupt:
      // run the whole controller step inside this ISR (reads from the
      // buffer, computes, writes back to the buffer).
      model::SimContext ctx;
      ctx.t = runtime_.now_seconds();
      ctx.dt = runtime_.period_s();
      runtime_.step_once(ctx);
      ++frames_processed_;
      cycles += runtime_.step_cycles();
    }
    return cycles;
  };
  handler.commit = [this] {
    if (!respond_) return;
    // Response leaves the board when the ISR retires.
    Frame response;
    response.type = FrameType::kActuatorData;
    response.seq = respond_seq_;
    response.payload = encode_signals(buffer_.outputs());
    for (std::uint8_t b : encode_frame(response)) serial_.SendChar(b);
    respond_ = false;
  };
  serial_.set_event_handler("OnRxChar", std::move(handler));
}

}  // namespace iecd::pil
