#include <gtest/gtest.h>

#include <cmath>

#include "blocks/continuous.hpp"
#include "blocks/custom.hpp"
#include "blocks/discontinuities.hpp"
#include "blocks/discrete.hpp"
#include "blocks/lookup.hpp"
#include "blocks/math_blocks.hpp"
#include "blocks/routing.hpp"
#include "blocks/sinks.hpp"
#include "blocks/sources.hpp"
#include "mcu/derivative.hpp"
#include "model/engine.hpp"
#include "model/metrics.hpp"
#include "model/model.hpp"

namespace iecd::blocks {
namespace {

using model::DataType;
using model::Engine;
using model::Model;
using model::SampleTime;
using model::SimContext;

/// Runs a tiny model feeding `input` through `block` and returns the scope
/// trace.  The block must be 1-in/1-out.
template <typename BlockT, typename... Args>
const model::SampleLog& run_siso(Model& m, double stop, double input,
                                 Args&&... args) {
  auto& c = m.add<ConstantBlock>("in", input);
  auto& b = m.add<BlockT>("dut", std::forward<Args>(args)...);
  auto& s = m.add<ScopeBlock>("scope");
  m.connect(c, 0, b, 0);
  m.connect(b, 0, s, 0);
  Engine eng(m, {.stop_time = stop});
  eng.run();
  return s.log();
}

TEST(Sources, StepSwitchesAtStepTime) {
  Model m("t");
  auto& step = m.add<StepBlock>("u", 0.005, -1.0, 1.0);
  auto& s = m.add<ScopeBlock>("s");
  m.connect(step, 0, s, 0);
  Engine eng(m, {.stop_time = 0.01});
  eng.run();
  EXPECT_DOUBLE_EQ(s.log().sample(0.004), -1.0);
  EXPECT_DOUBLE_EQ(s.log().sample(0.006), 1.0);
}

TEST(Sources, RampAndPulseShapes) {
  Model m("t");
  auto& ramp = m.add<RampBlock>("r", 2.0, 0.01);
  auto& pulse = m.add<PulseBlock>("p", 0.01, 0.3, 5.0);
  auto& s = m.add<ScopeBlock>("s", 2);
  m.connect(ramp, 0, s, 0);
  m.connect(pulse, 0, s, 1);
  Engine eng(m, {.stop_time = 0.1});
  eng.run();
  EXPECT_NEAR(s.log(0).sample(0.0605), 2.0 * 0.05, 1e-3);
  EXPECT_DOUBLE_EQ(s.log(1).sample(0.002), 5.0);   // within duty
  EXPECT_DOUBLE_EQ(s.log(1).sample(0.005), 0.0);   // past duty
}

TEST(Sources, SineFrequencyAndBias) {
  Model m("t");
  auto& sine = m.add<SineBlock>("s1", 2.0, 10.0, 0.0, 1.0);
  auto& s = m.add<ScopeBlock>("s");
  m.connect(sine, 0, s, 0);
  Engine eng(m, {.stop_time = 0.1, .base_period = 1e-4});
  eng.run();
  EXPECT_NEAR(s.log().max_value(), 3.0, 0.01);
  EXPECT_NEAR(s.log().min_value(), -1.0, 0.01);
  // Quarter period of 10 Hz = 25 ms: peak there.
  EXPECT_NEAR(s.log().sample(0.025), 3.0, 0.01);
}

TEST(Math, SumWithMixedSigns) {
  Model m("t");
  auto& a = m.add<ConstantBlock>("a", 10.0);
  auto& b = m.add<ConstantBlock>("b", 4.0);
  auto& c = m.add<ConstantBlock>("c", 1.0);
  auto& sum = m.add<SumBlock>("sum", "+-+");
  auto& s = m.add<ScopeBlock>("s");
  m.connect(a, 0, sum, 0);
  m.connect(b, 0, sum, 1);
  m.connect(c, 0, sum, 2);
  m.connect(sum, 0, s, 0);
  Engine eng(m, {.stop_time = 0.002});
  eng.run();
  EXPECT_DOUBLE_EQ(s.log().last_value(), 7.0);
}

TEST(Math, SumRejectsBadSigns) {
  Model m("t");
  EXPECT_THROW(m.add<SumBlock>("bad", "+*"), std::invalid_argument);
  EXPECT_THROW(m.add<SumBlock>("empty", ""), std::invalid_argument);
}

TEST(Math, ProductAbsMinMax) {
  Model m("t");
  auto& a = m.add<ConstantBlock>("a", -3.0);
  auto& b = m.add<ConstantBlock>("b", 4.0);
  auto& prod = m.add<ProductBlock>("p", 2);
  auto& abs = m.add<AbsBlock>("abs");
  auto& mx = m.add<MinMaxBlock>("max", true, 2);
  auto& s = m.add<ScopeBlock>("s", 3);
  m.connect(a, 0, prod, 0);
  m.connect(b, 0, prod, 1);
  m.connect(prod, 0, abs, 0);
  m.connect(a, 0, mx, 0);
  m.connect(b, 0, mx, 1);
  m.connect(prod, 0, s, 0);
  m.connect(abs, 0, s, 1);
  m.connect(mx, 0, s, 2);
  Engine eng(m, {.stop_time = 0.002});
  eng.run();
  EXPECT_DOUBLE_EQ(s.log(0).last_value(), -12.0);
  EXPECT_DOUBLE_EQ(s.log(1).last_value(), 12.0);
  EXPECT_DOUBLE_EQ(s.log(2).last_value(), 4.0);
}

TEST(Discontinuities, SaturationClamps) {
  Model m("t");
  const auto& log = run_siso<SaturationBlock>(m, 0.002, 9.0, -2.0, 2.0);
  EXPECT_DOUBLE_EQ(log.last_value(), 2.0);
}

TEST(Discontinuities, QuantizerSnapsToGrid) {
  Model m("t");
  const auto& log = run_siso<QuantizerBlock>(m, 0.002, 1.26, 0.5);
  EXPECT_DOUBLE_EQ(log.last_value(), 1.5);
}

TEST(Discontinuities, RelayHysteresis) {
  Model m("t");
  auto& sine = m.add<SineBlock>("u", 1.0, 10.0);
  auto& relay = m.add<RelayBlock>("r", 0.5, -0.5, 1.0, 0.0);
  auto& s = m.add<ScopeBlock>("s");
  m.connect(sine, 0, relay, 0);
  m.connect(relay, 0, s, 0);
  Engine eng(m, {.stop_time = 0.1, .base_period = 1e-4});
  eng.run();
  // At t=25 ms the sine peaks: relay on.  At 60 ms sine ~ -0.95: off.
  EXPECT_DOUBLE_EQ(s.log().sample(0.026), 1.0);
  EXPECT_DOUBLE_EQ(s.log().sample(0.065), 0.0);
  // Within the hysteresis band (sine near 0 going down) the state holds.
  EXPECT_DOUBLE_EQ(s.log().sample(0.051), 1.0);
}

TEST(Discontinuities, RateLimiterBoundsSlew) {
  Model m("t");
  auto& step = m.add<StepBlock>("u", 0.0, 0.0, 1.0);
  auto& rl = m.add<RateLimiterBlock>("rl", 10.0, 10.0);  // 10 units/s
  rl.set_sample_time(SampleTime::discrete(0.001));
  auto& s = m.add<ScopeBlock>("s");
  m.connect(step, 0, rl, 0);
  m.connect(rl, 0, s, 0);
  Engine eng(m, {.stop_time = 0.2});
  eng.run();
  // Reaching 1.0 takes 0.1 s at 10/s.
  EXPECT_LT(s.log().sample(0.05), 0.52);
  EXPECT_NEAR(s.log().sample(0.15), 1.0, 1e-9);
}

TEST(Discontinuities, DeadZonePassesOutsideBand) {
  Model m("t");
  const auto& log = run_siso<DeadZoneBlock>(m, 0.002, 0.3, -0.5, 0.5);
  EXPECT_DOUBLE_EQ(log.last_value(), 0.0);
  Model m2("t2");
  const auto& log2 = run_siso<DeadZoneBlock>(m2, 0.002, 0.8, -0.5, 0.5);
  EXPECT_NEAR(log2.last_value(), 0.3, 1e-12);
}

TEST(Discrete, UnitDelayDelaysOneSample) {
  Model m("t");
  auto& step = m.add<StepBlock>("u", 0.0, 0.0, 1.0);
  auto& z = m.add<UnitDelayBlock>("z", -7.0);
  auto& s = m.add<ScopeBlock>("s");
  m.connect(step, 0, z, 0);
  m.connect(z, 0, s, 0);
  Engine eng(m, {.stop_time = 0.003});
  eng.run();
  EXPECT_DOUBLE_EQ(s.log().value_at(0), -7.0);  // initial value
  EXPECT_DOUBLE_EQ(s.log().value_at(1), 1.0);
}

TEST(Discrete, IntegratorMethodsConverge) {
  for (const auto method :
       {IntegrationMethod::kForwardEuler, IntegrationMethod::kBackwardEuler,
        IntegrationMethod::kTrapezoidal}) {
    Model m("t");
    auto& c = m.add<ConstantBlock>("u", 2.0);
    auto& i = m.add<DiscreteIntegratorBlock>("i", 1.0, method);
    i.set_sample_time(SampleTime::discrete(0.001));
    auto& s = m.add<ScopeBlock>("s");
    m.connect(c, 0, i, 0);
    m.connect(i, 0, s, 0);
    Engine eng(m, {.stop_time = 0.5});
    eng.run();
    EXPECT_NEAR(s.log().last_value(), 2.0 * 0.5, 0.01)
        << "method " << static_cast<int>(method);
  }
}

TEST(Discrete, IntegratorLimitsClampWindup) {
  Model m("t");
  auto& c = m.add<ConstantBlock>("u", 100.0);
  auto& i = m.add<DiscreteIntegratorBlock>("i", 1.0);
  i.set_limits(-1.0, 1.0);
  i.set_sample_time(SampleTime::discrete(0.001));
  auto& s = m.add<ScopeBlock>("s");
  m.connect(c, 0, i, 0);
  m.connect(i, 0, s, 0);
  Engine eng(m, {.stop_time = 0.1});
  eng.run();
  EXPECT_DOUBLE_EQ(s.log().last_value(), 1.0);
  EXPECT_DOUBLE_EQ(s.log().max_value(), 1.0);
}

TEST(Discrete, DerivativeOfRampIsSlope) {
  Model m("t");
  auto& ramp = m.add<RampBlock>("u", 3.0);
  auto& d = m.add<DiscreteDerivativeBlock>("d", 1.0);
  d.set_sample_time(SampleTime::discrete(0.001));
  auto& s = m.add<ScopeBlock>("s");
  m.connect(ramp, 0, d, 0);
  m.connect(d, 0, s, 0);
  Engine eng(m, {.stop_time = 0.05});
  eng.run();
  EXPECT_NEAR(s.log().last_value(), 3.0, 1e-9);
}

TEST(Discrete, TransferFnFirstOrderLowpassDcGain) {
  // H(z) = 0.1 / (1 - 0.9 z^-1): DC gain = 1.
  Model m("t");
  auto& c = m.add<ConstantBlock>("u", 2.0);
  auto& h = m.add<DiscreteTransferFnBlock>("h", std::vector<double>{0.1},
                                           std::vector<double>{1.0, -0.9});
  h.set_sample_time(SampleTime::discrete(0.001));
  auto& s = m.add<ScopeBlock>("s");
  m.connect(c, 0, h, 0);
  m.connect(h, 0, s, 0);
  Engine eng(m, {.stop_time = 0.2});
  eng.run();
  EXPECT_NEAR(s.log().last_value(), 2.0, 1e-3);
}

TEST(Discrete, TransferFnRejectsImproper) {
  Model m("t");
  EXPECT_THROW(m.add<DiscreteTransferFnBlock>(
                   "bad", std::vector<double>{1.0, 2.0, 3.0},
                   std::vector<double>{1.0, 0.5}),
               std::invalid_argument);
}

TEST(Discrete, PidDrivesFirstOrderPlantToSetpoint) {
  // Closed loop: PID -> plant 1/(s+1) (discretized via engine continuous).
  Model m("t");
  auto& ref = m.add<StepBlock>("ref", 0.0, 0.0, 1.0);
  auto& err = m.add<SumBlock>("err", "+-");
  DiscretePidBlock::Gains g;
  g.kp = 4.0;
  g.ki = 6.0;
  g.kd = 0.0;
  auto& pid = m.add<DiscretePidBlock>("pid", g, -10.0, 10.0);
  pid.set_sample_time(SampleTime::discrete(0.001));
  auto& plant = m.add<TransferFunctionBlock>(
      "plant", std::vector<double>{1.0}, std::vector<double>{1.0, 1.0});
  auto& s = m.add<ScopeBlock>("s");
  m.connect(ref, 0, err, 0);
  m.connect(plant, 0, err, 1);
  m.connect(err, 0, pid, 0);
  m.connect(pid, 0, plant, 0);
  m.connect(plant, 0, s, 0);
  Engine eng(m, {.stop_time = 3.0});
  eng.run();
  const auto metrics = model::analyze_step(s.log(), 1.0);
  EXPECT_TRUE(metrics.settled);
  EXPECT_LT(metrics.steady_state_error, 0.01);
}

TEST(Discrete, PidAntiWindupRecoversFast) {
  // Saturated PID against an unreachable setpoint, then a reachable one:
  // without anti-windup the integrator would need long to unwind.
  Model m("t");
  DiscretePidBlock::Gains g;
  g.kp = 1.0;
  g.ki = 50.0;
  auto& pid = m.add<DiscretePidBlock>("pid", g, -1.0, 1.0);
  pid.set_sample_time(SampleTime::discrete(0.001));
  auto& err = m.add<StepBlock>("e", 0.5, 10.0, -0.1);
  auto& s = m.add<ScopeBlock>("s");
  m.connect(err, 0, pid, 0);
  m.connect(pid, 0, s, 0);
  Engine eng(m, {.stop_time = 1.0});
  eng.run();
  // Output must leave the positive rail shortly after the error flips.
  EXPECT_LT(s.log().sample(0.6), 0.9);
}

TEST(Discrete, MovingAverageSmoothsToMean) {
  Model m("t");
  auto& c = m.add<ConstantBlock>("u", 5.0);
  auto& ma = m.add<MovingAverageBlock>("ma", 8);
  ma.set_sample_time(SampleTime::discrete(0.001));
  auto& s = m.add<ScopeBlock>("s");
  m.connect(c, 0, ma, 0);
  m.connect(ma, 0, s, 0);
  Engine eng(m, {.stop_time = 0.05});
  eng.run();
  EXPECT_NEAR(s.log().last_value(), 5.0, 1e-12);
}

TEST(Continuous, StateSpaceFirstOrder) {
  // x' = -2x + 2u, y = x: step response y(t) = 1 - e^(-2t).
  Model m("t");
  auto& c = m.add<ConstantBlock>("u", 1.0);
  auto& ss = m.add<StateSpaceBlock>(
      "ss", std::vector<std::vector<double>>{{-2.0}}, std::vector<double>{2.0},
      std::vector<double>{1.0}, 0.0);
  m.connect(c, 0, ss, 0);
  Engine eng(m, {.stop_time = 1.0});
  eng.run();
  SimContext ctx{1.0, 1e-3, false};
  ss.output(ctx);
  EXPECT_NEAR(ss.out(0).as_double(), 1.0 - std::exp(-2.0), 1e-6);
}

TEST(Continuous, TransferFunctionMatchesStateSpace) {
  // 1/(s^2 + 3s + 2): DC gain 0.5.
  Model m("t");
  auto& c = m.add<ConstantBlock>("u", 4.0);
  auto& tf = m.add<TransferFunctionBlock>(
      "tf", std::vector<double>{1.0}, std::vector<double>{1.0, 3.0, 2.0});
  m.connect(c, 0, tf, 0);
  Engine eng(m, {.stop_time = 15.0});
  eng.run();
  SimContext ctx{15.0, 1e-3, false};
  tf.output(ctx);
  EXPECT_NEAR(tf.out(0).as_double(), 2.0, 1e-4);
}

TEST(Routing, SwitchSelectsByThreshold) {
  Model m("t");
  auto& a = m.add<ConstantBlock>("a", 1.0);
  auto& b = m.add<ConstantBlock>("b", 2.0);
  auto& ctl = m.add<StepBlock>("ctl", 0.005, 0.0, 1.0);
  auto& sw = m.add<SwitchBlock>("sw", 0.5);
  auto& s = m.add<ScopeBlock>("s");
  m.connect(a, 0, sw, 0);
  m.connect(ctl, 0, sw, 1);
  m.connect(b, 0, sw, 2);
  m.connect(sw, 0, s, 0);
  Engine eng(m, {.stop_time = 0.01});
  eng.run();
  EXPECT_DOUBLE_EQ(s.log().sample(0.004), 2.0);
  EXPECT_DOUBLE_EQ(s.log().sample(0.006), 1.0);
}

TEST(Routing, ManualSwitchTogglesLive) {
  Model m("t");
  auto& a = m.add<ConstantBlock>("a", 1.0);
  auto& b = m.add<ConstantBlock>("b", 2.0);
  auto& sw = m.add<ManualSwitchBlock>("sw", true);
  auto& s = m.add<ScopeBlock>("s");
  m.connect(a, 0, sw, 0);
  m.connect(b, 0, sw, 1);
  m.connect(sw, 0, s, 0);
  Engine eng(m, {.stop_time = 0.01});
  eng.initialize();
  for (int i = 0; i < 5; ++i) eng.step();
  sw.set_position_a(false);
  while (eng.step()) {
  }
  EXPECT_DOUBLE_EQ(s.log().value_at(0), 1.0);
  EXPECT_DOUBLE_EQ(s.log().last_value(), 2.0);
}

TEST(Lookup, InterpolationAndClipping) {
  Model m("t");
  auto& lut = m.add<Lookup1DBlock>("lut", std::vector<double>{0.0, 1.0, 2.0},
                                   std::vector<double>{0.0, 10.0, 15.0});
  EXPECT_DOUBLE_EQ(lut.lookup(0.5), 5.0);
  EXPECT_DOUBLE_EQ(lut.lookup(1.5), 12.5);
  EXPECT_DOUBLE_EQ(lut.lookup(-3.0), 0.0);
  EXPECT_DOUBLE_EQ(lut.lookup(9.0), 15.0);
  EXPECT_THROW(m.add<Lookup1DBlock>("bad", std::vector<double>{1.0, 1.0},
                                    std::vector<double>{0.0, 1.0}),
               std::invalid_argument);
}

TEST(Custom, FunctionBlockWrapsCallable) {
  Model m("t");
  auto& a = m.add<ConstantBlock>("a", 3.0);
  auto& b = m.add<ConstantBlock>("b", 4.0);
  auto& hyp = m.add<FunctionBlock>(
      "hyp", 2, [](const std::vector<double>& u, double) {
        return std::sqrt(u[0] * u[0] + u[1] * u[1]);
      });
  auto& s = m.add<ScopeBlock>("s");
  m.connect(a, 0, hyp, 0);
  m.connect(b, 0, hyp, 1);
  m.connect(hyp, 0, s, 0);
  Engine eng(m, {.stop_time = 0.002});
  eng.run();
  EXPECT_DOUBLE_EQ(s.log().last_value(), 5.0);
}

TEST(FixedPointSignals, GainChainQuantizes) {
  // A gain with a 16-bit fixed output introduces bounded quantization error.
  Model m("t");
  auto& c = m.add<ConstantBlock>("u", 0.777);
  auto& g = m.add<GainBlock>("g", 1.0);
  const auto fmt = fixpt::FixedFormat::s16(10);
  g.set_output_type(0, DataType::kFixed, fmt);
  auto& s = m.add<ScopeBlock>("s");
  m.connect(c, 0, g, 0);
  m.connect(g, 0, s, 0);
  Engine eng(m, {.stop_time = 0.002});
  eng.run();
  EXPECT_NEAR(s.log().last_value(), 0.777, fmt.resolution() / 2 + 1e-12);
  EXPECT_NE(s.log().last_value(), 0.777);  // genuinely quantized
}

TEST(FixedPointSignals, SaturationAtFormatLimits) {
  Model m("t");
  auto& c = m.add<ConstantBlock>("u", 100.0);
  auto& g = m.add<GainBlock>("g", 1.0);
  g.set_output_type(0, DataType::kFixed, fixpt::FixedFormat::s16(12));
  auto& s = m.add<ScopeBlock>("s");
  m.connect(c, 0, g, 0);
  m.connect(g, 0, s, 0);
  Engine eng(m, {.stop_time = 0.002});
  eng.run();
  EXPECT_NEAR(s.log().last_value(), fixpt::FixedFormat::s16(12).max_value(),
              1e-9);
}

TEST(CostModel, BlockOpsPriceFixedCheaperThanFloatOnDsc) {
  const auto& dsc = mcu::find_derivative("DSC56F8367");
  DiscretePidBlock pid("pid", {}, -1.0, 1.0);
  const auto float_cycles = dsc.costs.cycles(pid.step_ops(false));
  const auto fixed_cycles = dsc.costs.cycles(pid.step_ops(true));
  EXPECT_GT(float_cycles, 10 * fixed_cycles);
}

TEST(Emission, BlocksEmitPlausibleC) {
  model::EmitContext ctx;
  ctx.inputs = {"rtb_u"};
  ctx.outputs = {"rtb_y"};
  ctx.state_prefix = "rtDW.g_";
  GainBlock g("g1", 2.5);
  EXPECT_NE(g.emit_c(ctx).find("2.5"), std::string::npos);
  ctx.fixed_point = true;
  EXPECT_NE(g.emit_c(ctx).find("sat16"), std::string::npos);
  SaturationBlock sat("sat", -1.0, 1.0);
  ctx.fixed_point = false;
  EXPECT_NE(sat.emit_c(ctx).find("rtb_u"), std::string::npos);
}

}  // namespace
}  // namespace iecd::blocks
