/// \file autoscale.hpp
/// Fixed-point autoscaling: given the real-value range a signal takes in
/// simulation (MIL run), choose the Q-format that fits the range with
/// maximal resolution.  This reproduces the Simulink fixed-point advisor
/// step the paper's case study relies on ("Simulink allows choosing and
/// validating an appropriate fix-point representation").
#pragma once

#include <vector>

#include "fixpt/format.hpp"
#include "util/diagnostics.hpp"

namespace iecd::fixpt {

struct RangeObservation {
  double min = 0.0;
  double max = 0.0;

  void include(double x) {
    if (x < min) min = x;
    if (x > max) max = x;
  }
  /// Widens the range symmetrically by \p factor (design margin).
  RangeObservation with_margin(double factor) const;
};

/// Chooses the signed format with \p word_bits that covers [range.min,
/// range.max] with the most fractional bits.  Ranges containing values
/// beyond what any frac_bits shift can cover are reported via diagnostics
/// and fall back to frac_bits minimizing overflow.
FixedFormat choose_format(const RangeObservation& range, int word_bits,
                          util::DiagnosticList* diagnostics = nullptr);

/// Worst-case quantization error (one LSB / 2 for round-to-nearest).
double worst_case_error(const FixedFormat& fmt);

}  // namespace iecd::fixpt
