#include "util/crc16.hpp"

namespace iecd::util {

std::uint16_t crc16_ccitt_update(std::uint16_t crc, std::uint8_t byte) {
  crc = static_cast<std::uint16_t>(crc ^ (static_cast<std::uint16_t>(byte) << 8));
  for (int i = 0; i < 8; ++i) {
    if (crc & 0x8000) {
      crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021);
    } else {
      crc = static_cast<std::uint16_t>(crc << 1);
    }
  }
  return crc;
}

std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data,
                          std::uint16_t seed) {
  std::uint16_t crc = seed;
  for (std::uint8_t b : data) crc = crc16_ccitt_update(crc, b);
  return crc;
}

}  // namespace iecd::util
