// E1 (Fig. 4.1) — the Bean Inspector / expert system.  Reproduces the
// paper's claim that hardware settings are made at high level and
// "calculated by the expert system ... verification of user decisions is
// provided": for a sweep of requested timer periods and PWM frequencies,
// the table shows the derived register-level configuration (prescaler,
// modulo), the achieved value and the relative error, per derivative —
// including the requests each part must reject.  The microbenchmarks
// measure how cheap the immediate re-validation on every property edit is.
#include <cstdio>

#include "beans/adc_bean.hpp"
#include "beans/bean_project.hpp"
#include "beans/pwm_bean.hpp"
#include "beans/solvers.hpp"
#include "beans/timer_int_bean.hpp"
#include "bench_util.hpp"
#include "mcu/derivative.hpp"

using namespace iecd;

namespace {

void print_table() {
  std::printf("E1: expert-system parameter solving (Bean Inspector)\n\n");
  std::printf("%-12s %-12s | %-10s %-10s %-14s %-10s\n", "derivative",
              "request", "prescaler", "modulo", "achieved", "error");
  bench::print_rule(78);

  const double periods[] = {1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0};
  for (const auto& cpu : mcu::derivative_registry()) {
    for (double period : periods) {
      const auto sol = beans::solve_timer_period(cpu, period, 0.001);
      if (sol) {
        std::printf("%-12s timer %5.0e | %-10u %-10u %-14.9g %.5f%%\n",
                    cpu.name.c_str(), period, sol->prescaler, sol->modulo,
                    sol->achieved_period_s, sol->relative_error * 100);
      } else {
        std::printf("%-12s timer %5.0e | %-47s\n", cpu.name.c_str(), period,
                    "REJECTED (outside prescaler/modulo range)");
      }
    }
  }
  std::printf("\n%-12s %-12s | %-10s %-10s %-14s %-10s\n", "derivative",
              "request", "prescaler", "modulo", "achieved", "duty bits");
  bench::print_rule(78);
  const double freqs[] = {1e3, 2e4, 1e5, 1e6, 2e7};
  for (const auto& cpu : mcu::derivative_registry()) {
    for (double f : freqs) {
      const auto sol = beans::solve_pwm_frequency(cpu, f, 0.01);
      if (sol) {
        std::printf("%-12s pwm %7.0e | %-10u %-10u %-14.6g %d\n",
                    cpu.name.c_str(), f, sol->prescaler, sol->modulo,
                    sol->achieved_frequency_hz, sol->duty_resolution_bits);
      } else {
        std::printf("%-12s pwm %7.0e | %-47s\n", cpu.name.c_str(), f,
                    "REJECTED (counter cannot reach this frequency)");
      }
    }
  }

  // Validation catching a bad configuration immediately.
  std::printf("\nimmediate verification on property edit:\n");
  beans::BeanProject project("demo");
  project.add<beans::TimerIntBean>("TI1");
  auto diags = project.set_property("TI1", "period_s", 10.0);
  std::printf("%s\n", diags.to_string().c_str());
}

void BM_ProjectValidate(benchmark::State& state) {
  beans::BeanProject project("p");
  project.add<beans::TimerIntBean>("TI1");
  project.add<beans::PwmBean>("PWM1");
  project.add<beans::AdcBean>("AD1");
  for (auto _ : state) {
    auto diags = project.validate();
    benchmark::DoNotOptimize(diags);
  }
}
BENCHMARK(BM_ProjectValidate);

void BM_PropertyEditWithRevalidation(benchmark::State& state) {
  beans::BeanProject project("p");
  project.add<beans::TimerIntBean>("TI1");
  project.add<beans::PwmBean>("PWM1");
  double period = 0.001;
  for (auto _ : state) {
    period = period == 0.001 ? 0.002 : 0.001;
    auto diags = project.set_property("TI1", "period_s", period);
    benchmark::DoNotOptimize(diags);
  }
}
BENCHMARK(BM_PropertyEditWithRevalidation);

void BM_TimerSolver(benchmark::State& state) {
  const auto& cpu = mcu::find_derivative("DSC56F8367");
  double period = 1e-5;
  for (auto _ : state) {
    period = period > 0.1 ? 1e-5 : period * 1.1;
    auto sol = beans::solve_timer_period(cpu, period, 0.001);
    benchmark::DoNotOptimize(sol);
  }
}
BENCHMARK(BM_TimerSolver);

void BM_InspectorRender(benchmark::State& state) {
  beans::BeanProject project("p");
  project.add<beans::TimerIntBean>("TI1");
  project.add<beans::PwmBean>("PWM1");
  project.add<beans::AdcBean>("AD1");
  project.validate();
  for (auto _ : state) {
    auto text = project.inspector_render();
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_InspectorRender);

}  // namespace

IECD_BENCH_MAIN(print_table)
