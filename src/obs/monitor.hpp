/// \file monitor.hpp
/// Online timing monitors.  A TimingMonitor tracks one task's (or one
/// protocol sequence's) response time, execution time, activation jitter
/// and deadline misses as the run executes — the per-task view the paper's
/// PIL phase promises, computed online from fixed-memory histograms instead
/// of post-hoc from retained sample vectors.  MonitorHub is the per-run
/// registry that owns the monitors, the watermark probes and the flight
/// recorder, arms the periodic poll on a simulation world, and renders
/// everything into a HealthReport.
#pragma once

#include <cmath>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/latency_histogram.hpp"
#include "obs/watermark.hpp"
#include "sim/time.hpp"

namespace iecd::sim {
class World;
class CanBus;
}  // namespace iecd::sim

namespace iecd::obs {

class TimingMonitor {
 public:
  struct Config {
    double period_s = 0.0;    ///< nominal activation period (0 = aperiodic)
    double deadline_s = 0.0;  ///< relative deadline (0 = none monitored)
  };

  TimingMonitor() = default;
  explicit TimingMonitor(Config config) : config_(config) {}

  /// Records one activation: released (raised) at \p release, began
  /// service at \p start, completed at \p end.  Response time is
  /// completion - release (the schedulability-analysis convention), so a
  /// non-preemptive task blocked behind another accrues its wait here.
  /// Returns true when this activation missed its deadline — response
  /// STRICTLY greater than the deadline; response == deadline is met
  /// exactly (the boundary test locks this).  Allocation-free and inline:
  /// this runs at every dispatch retirement (E9 bounds the cost).
  bool record(sim::SimTime release, sim::SimTime start, sim::SimTime end) {
    exec_us_.record(sim::to_microseconds(end - start));
    const bool missed =
        record_response_us(sim::to_microseconds(end - release), start);
    if (missed) last_miss_time_ = end;  // exact completion time
    return missed;
  }

  /// Direct-value form for quantities that arrive as a latency sample
  /// (e.g. PIL per-sequence round trip): \p response_us against the
  /// deadline, \p start for jitter tracking.
  bool record_response_us(double response_us, sim::SimTime start) {
    response_us_.record(response_us);
    if (have_prev_ && config_.period_s > 0.0) {
      const double interval_us = sim::to_microseconds(start - prev_start_);
      jitter_us_.record(std::fabs(interval_us - config_.period_s * 1e6));
    }
    prev_start_ = start;
    have_prev_ = true;
    ++activations_;

    bool missed = false;
    if (config_.deadline_s > 0.0) {
      // Strictly greater: response == deadline is met exactly.
      missed = response_us > config_.deadline_s * 1e6;
      if (missed) {
        ++deadline_misses_;
        last_miss_time_ = start + sim::from_seconds(response_us * 1e-6);
      }
    }
    return missed;
  }

  const Config& config() const { return config_; }
  const LatencyHistogram& response_us() const { return response_us_; }
  const LatencyHistogram& exec_us() const { return exec_us_; }
  /// |inter-activation interval - nominal period| in us (empty when the
  /// monitor is aperiodic).
  const LatencyHistogram& jitter_us() const { return jitter_us_; }

  std::uint64_t activations() const { return activations_; }
  std::uint64_t deadline_misses() const { return deadline_misses_; }
  double worst_response_us() const { return response_us_.max(); }
  /// Completion time of the most recent deadline miss (0 if none).
  sim::SimTime last_miss_time() const { return last_miss_time_; }

  /// Deterministic fold for sweep aggregation: histograms merge bin-wise,
  /// counters add.  The inter-run jitter seam is NOT stitched (the first
  /// activation of the merged-in run contributes no interval), matching a
  /// sequential re-feed of run boundaries.
  void merge(const TimingMonitor& other);

  void reset();

  /// One-line state snapshot (flight-recorder dumps, reports).
  std::string state_line(const std::string& name) const;

  /// Full serializable state — what a campaign checkpoint needs to rebuild
  /// the monitor exactly (the jitter seam fields included, so a resumed
  /// fold is bit-identical to an uninterrupted one).
  struct RawState {
    Config config;
    LatencyHistogram response_us;
    LatencyHistogram exec_us;
    LatencyHistogram jitter_us;
    std::uint64_t activations = 0;
    std::uint64_t deadline_misses = 0;
    sim::SimTime last_miss_time = 0;
    sim::SimTime prev_start = 0;
    bool have_prev = false;
  };

  RawState raw() const {
    return RawState{config_,           response_us_,      exec_us_,
                    jitter_us_,        activations_,      deadline_misses_,
                    last_miss_time_,   prev_start_,       have_prev_};
  }

  static TimingMonitor from_raw(RawState state) {
    TimingMonitor m(state.config);
    m.response_us_ = std::move(state.response_us);
    m.exec_us_ = std::move(state.exec_us);
    m.jitter_us_ = std::move(state.jitter_us);
    m.activations_ = state.activations;
    m.deadline_misses_ = state.deadline_misses;
    m.last_miss_time_ = state.last_miss_time;
    m.prev_start_ = state.prev_start;
    m.have_prev_ = state.have_prev;
    return m;
  }

 private:
  Config config_;
  LatencyHistogram response_us_;
  LatencyHistogram exec_us_;
  LatencyHistogram jitter_us_;
  std::uint64_t activations_ = 0;
  std::uint64_t deadline_misses_ = 0;
  sim::SimTime last_miss_time_ = 0;
  sim::SimTime prev_start_ = 0;
  bool have_prev_ = false;
};

struct HealthReport;

/// Per-run observability hub: owns the timing monitors, watermark
/// monitors, gauge probes and the flight recorder; one `arm()` call per
/// world schedules the recurring poll that samples the probes (event-queue
/// depth first among them) and evaluates the flight-recorder predicates.
class MonitorHub {
 public:
  MonitorHub();
  MonitorHub(const MonitorHub&) = delete;
  MonitorHub& operator=(const MonitorHub&) = delete;

  /// Get-or-create.  \p config applies on first creation only.
  TimingMonitor& timing(const std::string& name,
                        TimingMonitor::Config config = {});
  WatermarkMonitor& watermark(const std::string& name);

  const TimingMonitor* find_timing(const std::string& name) const;
  const WatermarkMonitor* find_watermark(const std::string& name) const;
  const std::map<std::string, TimingMonitor>& timings() const {
    return timings_;
  }
  const std::map<std::string, WatermarkMonitor>& watermarks() const {
    return watermarks_;
  }

  FlightRecorder& flight() { return flight_; }
  const FlightRecorder& flight() const { return flight_; }

  /// Registers a gauge sampled into watermark(\p name) at every poll; the
  /// gauge receives the poll's simulated time (rate-style probes need it to
  /// normalise deltas).
  void add_probe(const std::string& name,
                 std::function<double(sim::SimTime)> gauge);

  /// Convenience probes for a CAN bus: utilisation since the previous
  /// poll ("<name>.load") and frames pending on the nodes
  /// ("<name>.pending").
  void watch_can_bus(const sim::CanBus& bus);

  /// Schedules the recurring poll on \p world every \p poll_period:
  /// samples "sim.event_queue.depth" plus all registered probes, then
  /// evaluates the flight recorder's polled triggers.  Also registers the
  /// trace-ring drop counter trigger against the active trace recorder
  /// (if any).  Call once per world/run.
  void arm(sim::World& world, sim::SimTime poll_period);

  /// Number of polls executed since arm().
  std::uint64_t polls() const { return polls_; }

  /// Renders the hub into a mergeable HealthReport snapshot.
  HealthReport report(const std::string& source) const;

 private:
  void poll(sim::World& world);

  struct Probe {
    std::string name;
    std::function<double(sim::SimTime)> gauge;
    WatermarkMonitor* into = nullptr;
  };

  std::map<std::string, TimingMonitor> timings_;
  std::map<std::string, WatermarkMonitor> watermarks_;
  std::vector<Probe> probes_;
  FlightRecorder flight_;
  std::uint64_t polls_ = 0;
};

}  // namespace iecd::obs
