#include <gtest/gtest.h>

#include <vector>

#include "mcu/clock.hpp"
#include "mcu/cost_model.hpp"
#include "mcu/derivative.hpp"
#include "mcu/mcu.hpp"
#include "sim/world.hpp"

namespace iecd::mcu {
namespace {

TEST(Clock, CycleTimeConversions) {
  Clock clk(60e6);  // 60 MHz -> 16.67 ns / cycle
  EXPECT_EQ(clk.cycles_to_time(60), 1000);   // 60 cycles = 1 us
  EXPECT_EQ(clk.cycles_to_time(0), 0);
  EXPECT_GE(clk.cycles_to_time(1), 1);       // never rounds to zero
  EXPECT_EQ(clk.time_to_cycles(sim::microseconds(1)), 60u);
  EXPECT_THROW(Clock(0), std::invalid_argument);
}

TEST(CostModel, PricesOpsLinearly) {
  CostModel cm;
  OpCounts ops;
  ops.alu16 = 10;
  ops.mul16 = 2;
  ops.fadd = 1;
  const std::uint64_t base = cm.cycles(ops);
  EXPECT_EQ(base, 10 * cm.alu16 + 2 * cm.mul16 + cm.fadd);
  const OpCounts doubled = ops * 2;
  EXPECT_EQ(cm.cycles(doubled), 2 * base);
  OpCounts sum = ops;
  sum += ops;
  EXPECT_EQ(cm.cycles(sum), 2 * base);
}

TEST(CostModel, FloatFarCostlierThanFixedOnNoFpuParts) {
  const auto& dsc = find_derivative("DSC56F8367");
  OpCounts fixed_op;
  fixed_op.mul16 = 1;
  OpCounts float_op;
  float_op.fmul = 1;
  EXPECT_GT(dsc.costs.cycles(float_op), 50 * dsc.costs.cycles(fixed_op));
}

TEST(DerivativeRegistry, ContainsAllFourFamilies) {
  const auto& regs = derivative_registry();
  EXPECT_EQ(regs.size(), 4u);
  EXPECT_NO_THROW(find_derivative("DSC56F8367"));
  EXPECT_NO_THROW(find_derivative("HCS12X128"));
  EXPECT_NO_THROW(find_derivative("MCF5235"));
  EXPECT_NO_THROW(find_derivative("HCS08GB60"));
  EXPECT_THROW(find_derivative("Z80"), std::invalid_argument);
}

TEST(DerivativeRegistry, SpecsAreInternallyConsistent) {
  for (const auto& d : derivative_registry()) {
    EXPECT_GT(d.clock_hz, 0) << d.name;
    EXPECT_GT(d.memory.ram_bytes, 0u) << d.name;
    EXPECT_GT(d.adc_channels, 0) << d.name;
    EXPECT_FALSE(d.timer_prescalers.empty()) << d.name;
    EXPECT_GT(d.uarts, 0) << d.name;
  }
}

TEST(InterruptController, PriorityOrdering) {
  InterruptController intc;
  std::vector<int> served;
  auto handler = [&served](int id) {
    IsrHandler h;
    h.name = "h" + std::to_string(id);
    h.body = [&served, id]() -> std::uint64_t {
      served.push_back(id);
      return 10;
    };
    return h;
  };
  intc.register_vector(1, /*priority=*/5, handler(1));
  intc.register_vector(2, /*priority=*/1, handler(2));
  intc.register_vector(3, /*priority=*/3, handler(3));

  intc.raise(1, 0);
  intc.raise(2, 0);
  intc.raise(3, 0);
  EXPECT_EQ(intc.acknowledge(), 2);  // best priority first
  EXPECT_EQ(intc.acknowledge(), 3);
  EXPECT_EQ(intc.acknowledge(), 1);
  EXPECT_EQ(intc.acknowledge(), -1);
}

TEST(InterruptController, MaskedVectorsLoseRequests) {
  InterruptController intc;
  IsrHandler h;
  h.body = []() -> std::uint64_t { return 1; };
  intc.register_vector(7, 0, std::move(h));
  intc.set_enabled(7, false);
  EXPECT_FALSE(intc.raise(7, 0));
  EXPECT_FALSE(intc.any_pending());
  intc.set_enabled(7, true);
  EXPECT_TRUE(intc.raise(7, 0));
  EXPECT_TRUE(intc.any_pending());
}

TEST(InterruptController, OverrunCountsRepeatedRaises) {
  InterruptController intc;
  IsrHandler h;
  h.body = []() -> std::uint64_t { return 1; };
  intc.register_vector(4, 0, std::move(h));
  EXPECT_TRUE(intc.raise(4, 10));
  EXPECT_FALSE(intc.raise(4, 11));  // still pending -> lost
  EXPECT_EQ(intc.overruns(), 1u);
}

TEST(InterruptController, RejectsDuplicateAndInvalidRegistration) {
  InterruptController intc;
  IsrHandler h;
  h.body = []() -> std::uint64_t { return 1; };
  intc.register_vector(1, 0, h);
  EXPECT_THROW(intc.register_vector(1, 0, h), std::logic_error);
  IsrHandler empty;
  EXPECT_THROW(intc.register_vector(2, 0, std::move(empty)),
               std::invalid_argument);
}

class McuFixture : public ::testing::Test {
 protected:
  sim::World world;
  Mcu mcu{world, find_derivative("DSC56F8367")};
};

TEST_F(McuFixture, IsrExecutionChargesCycleTime) {
  std::vector<DispatchRecord> records;
  mcu.cpu().set_dispatch_observer(
      [&](const DispatchRecord& r) { records.push_back(r); });

  bool committed = false;
  IsrHandler h;
  h.name = "tick";
  h.body = []() -> std::uint64_t { return 600; };  // 10 us at 60 MHz
  h.commit = [&] { committed = true; };
  mcu.intc().register_vector(1, 0, std::move(h));

  world.queue().schedule_at(sim::microseconds(5), [&] { mcu.raise_irq(1); });
  world.run_for(sim::milliseconds(1));

  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(committed);
  EXPECT_EQ(records[0].raise_time, sim::microseconds(5));
  EXPECT_EQ(records[0].start_time, sim::microseconds(5));
  const auto total_cycles =
      600 + mcu.spec().costs.isr_entry + mcu.spec().costs.isr_exit;
  EXPECT_EQ(records[0].end_time - records[0].start_time,
            mcu.clock().cycles_to_time(total_cycles));
  EXPECT_EQ(records[0].body_cycles, 600u);
}

TEST_F(McuFixture, NonPreemptiveInterruptWaitsForRunningIsr) {
  std::vector<DispatchRecord> records;
  mcu.cpu().set_dispatch_observer(
      [&](const DispatchRecord& r) { records.push_back(r); });

  IsrHandler slow;
  slow.name = "slow";
  slow.body = []() -> std::uint64_t { return 6000; };  // 100 us
  mcu.intc().register_vector(1, /*priority=*/2, std::move(slow));

  IsrHandler urgent;
  urgent.name = "urgent";
  urgent.body = []() -> std::uint64_t { return 60; };
  mcu.intc().register_vector(2, /*priority=*/0, std::move(urgent));

  world.queue().schedule_at(sim::microseconds(10), [&] { mcu.raise_irq(1); });
  // Raised in the middle of the slow ISR: must wait (non-preemptive).
  world.queue().schedule_at(sim::microseconds(50), [&] { mcu.raise_irq(2); });
  world.run_for(sim::milliseconds(1));

  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "slow");
  EXPECT_EQ(records[1].name, "urgent");
  // The urgent ISR starts only after the slow one retires.
  EXPECT_GE(records[1].start_time, records[0].end_time);
  // Its response time shows the blocking.
  EXPECT_GT(records[1].start_time - records[1].raise_time,
            sim::microseconds(40));
}

TEST_F(McuFixture, PendingInterruptsServedByPriorityAfterBlocking) {
  std::vector<std::string> order;
  auto make = [&](const char* name, std::uint64_t cycles) {
    IsrHandler h;
    h.name = name;
    h.body = [&order, name, cycles]() -> std::uint64_t {
      order.emplace_back(name);
      return cycles;
    };
    return h;
  };
  mcu.intc().register_vector(1, 3, make("low", 60));
  mcu.intc().register_vector(2, 1, make("high", 60));
  mcu.intc().register_vector(3, 2, make("mid", 60));

  // A long-running first ISR blocks while all three become pending.
  mcu.intc().register_vector(9, 0, make("first", 60000));
  world.queue().schedule_at(1, [&] { mcu.raise_irq(9); });
  world.queue().schedule_at(100, [&] { mcu.raise_irq(1); });
  world.queue().schedule_at(101, [&] { mcu.raise_irq(3); });
  world.queue().schedule_at(102, [&] { mcu.raise_irq(2); });
  world.run_for(sim::milliseconds(10));

  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], "first");
  EXPECT_EQ(order[1], "high");
  EXPECT_EQ(order[2], "mid");
  EXPECT_EQ(order[3], "low");
}

TEST_F(McuFixture, BackgroundTaskRunsWhenIdleAndYieldsToInterrupts) {
  int background_chunks = 0;
  mcu.cpu().set_background([&]() -> std::uint64_t {
    if (background_chunks >= 100) return 0;  // idle after 100 chunks
    ++background_chunks;
    return 600;  // 10 us per chunk
  });
  int isr_runs = 0;
  IsrHandler h;
  h.name = "evt";
  h.body = [&]() -> std::uint64_t {
    ++isr_runs;
    return 60;
  };
  mcu.intc().register_vector(1, 0, std::move(h));

  mcu.cpu().kick();  // start background processing
  world.queue().schedule_at(sim::microseconds(55), [&] { mcu.raise_irq(1); });
  world.run_for(sim::milliseconds(5));

  EXPECT_EQ(background_chunks, 100);
  EXPECT_EQ(isr_runs, 1);
}

TEST_F(McuFixture, StackAccountingTracksDeepestHandler) {
  mcu.cpu().set_main_stack_bytes(256);
  IsrHandler big;
  big.name = "big";
  big.stack_bytes = 512;
  big.body = []() -> std::uint64_t { return 10; };
  mcu.intc().register_vector(1, 0, std::move(big));
  IsrHandler small;
  small.name = "small";
  small.stack_bytes = 64;
  small.body = []() -> std::uint64_t { return 10; };
  mcu.intc().register_vector(2, 1, std::move(small));

  world.queue().schedule_at(1, [&] { mcu.raise_irq(1); });
  world.queue().schedule_at(2, [&] { mcu.raise_irq(2); });
  world.run_for(sim::milliseconds(1));
  EXPECT_EQ(mcu.cpu().max_stack_bytes(), 256u + 512u);
}

TEST_F(McuFixture, BusyTimeAccumulatesUtilisation) {
  IsrHandler h;
  h.name = "work";
  h.body = []() -> std::uint64_t { return 6000; };  // 100 us per run
  mcu.intc().register_vector(1, 0, std::move(h));
  for (int i = 0; i < 5; ++i) {
    world.queue().schedule_at(sim::milliseconds(i + 1),
                              [&] { mcu.raise_irq(1); });
  }
  world.run_for(sim::milliseconds(10));
  EXPECT_EQ(mcu.cpu().dispatches(), 5u);
  const auto per_run = mcu.clock().cycles_to_time(
      6000 + mcu.spec().costs.isr_entry + mcu.spec().costs.isr_exit);
  EXPECT_EQ(mcu.cpu().busy_time(), 5 * per_run);
}

TEST_F(McuFixture, ResetClearsRuntimeState) {
  IsrHandler h;
  h.name = "x";
  h.body = []() -> std::uint64_t { return 100; };
  mcu.intc().register_vector(1, 0, std::move(h));
  world.queue().schedule_at(1, [&] { mcu.raise_irq(1); });
  world.run_for(sim::milliseconds(1));
  EXPECT_GT(mcu.cpu().dispatches(), 0u);
  mcu.reset();
  EXPECT_EQ(mcu.cpu().dispatches(), 0u);
  EXPECT_EQ(mcu.cpu().busy_time(), 0);
  EXPECT_FALSE(mcu.intc().any_pending());
}

TEST(MemoryMap, ChargesAndValidates) {
  MemoryMap mem({1000, 100});
  mem.charge_flash(600, "code");
  mem.charge_ram(40, "arena");
  util::DiagnosticList diags;
  mem.validate(diags);
  EXPECT_FALSE(diags.has_errors());
  EXPECT_DOUBLE_EQ(mem.flash_utilisation(), 0.6);
  EXPECT_DOUBLE_EQ(mem.ram_utilisation(), 0.4);

  mem.charge_ram(100, "stack");
  mem.validate(diags);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_NE(mem.report().find("arena"), std::string::npos);
}

}  // namespace
}  // namespace iecd::mcu
