#include "periph/gpio.hpp"

#include <stdexcept>

namespace iecd::periph {

GpioPort::GpioPort(mcu::Mcu& mcu, GpioConfig config, std::string name)
    : Peripheral(mcu, std::move(name)),
      config_(config),
      pins_(static_cast<std::size_t>(config.pins)) {
  if (config.pins < 1) throw std::invalid_argument("GpioPort: pins >= 1");
}

GpioPort::Pin& GpioPort::at(int pin) {
  if (pin < 0 || pin >= config_.pins) {
    throw std::out_of_range("GpioPort: pin out of range");
  }
  return pins_[static_cast<std::size_t>(pin)];
}

const GpioPort::Pin& GpioPort::at(int pin) const {
  if (pin < 0 || pin >= config_.pins) {
    throw std::out_of_range("GpioPort: pin out of range");
  }
  return pins_[static_cast<std::size_t>(pin)];
}

void GpioPort::set_direction(int pin, PinDirection dir) { at(pin).dir = dir; }

PinDirection GpioPort::direction(int pin) const { return at(pin).dir; }

void GpioPort::set_edge_sense(int pin, EdgeSense sense) {
  at(pin).sense = sense;
}

void GpioPort::write(int pin, bool level) {
  Pin& p = at(pin);
  if (p.dir != PinDirection::kOutput) {
    throw std::logic_error("GpioPort: write to input pin");
  }
  if (p.level == level) return;
  p.level = level;
  if (output_obs_) output_obs_(pin, level, now());
}

bool GpioPort::read(int pin) const { return at(pin).level; }

void GpioPort::drive_external(int pin, bool level) {
  Pin& p = at(pin);
  if (p.dir != PinDirection::kInput) return;  // fighting an output: ignore
  const bool old = p.level;
  if (old == level) return;
  p.level = level;
  const bool rising = !old && level;
  const bool falling = old && !level;
  const bool fire = (p.sense == EdgeSense::kBoth) ||
                    (p.sense == EdgeSense::kRising && rising) ||
                    (p.sense == EdgeSense::kFalling && falling);
  if (fire && config_.irq_base >= 0) mcu().raise_irq(config_.irq_base + pin);
}

void GpioPort::set_output_observer(
    std::function<void(int, bool, sim::SimTime)> obs) {
  output_obs_ = std::move(obs);
}

void GpioPort::reset() {
  for (auto& p : pins_) p.level = false;
}

PushButton::PushButton(GpioPort& port, int pin, bool active_low)
    : port_(port), pin_(pin), active_low_(active_low) {
  port_.set_direction(pin, PinDirection::kInput);
  // Idle level: pulled up for active-low buttons.
  port_.drive_external(pin, active_low_);
}

void PushButton::press_at(sim::SimTime when, sim::SimTime hold, int bounces,
                          sim::SimTime bounce_window) {
  const bool pressed_level = !active_low_;
  emit_transition(when, pressed_level, bounces, bounce_window);
  emit_transition(when + hold, !pressed_level, bounces, bounce_window);
}

void PushButton::emit_transition(sim::SimTime when, bool target, int bounces,
                                 sim::SimTime bounce_window) {
  auto& queue = port_.mcu().queue();
  // Bounce: alternate target/!target levels, then settle on target.
  for (int i = 0; i < bounces; ++i) {
    const sim::SimTime t =
        when + bounce_window * i / (bounces + 1);
    const bool level = (i % 2 == 0) ? target : !target;
    queue.schedule_at(t, [this, level] {
      port_.drive_external(pin_, level);
    });
  }
  queue.schedule_at(when + bounce_window, [this, target] {
    port_.drive_external(pin_, target);
  });
}

}  // namespace iecd::periph
