# Empty dependencies file for bench_e8_codegen.
# This may be replaced when dependencies are built.
