/// \file clock.hpp
/// The MCU core clock: converts between CPU cycles and simulated time.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace iecd::mcu {

class Clock {
 public:
  explicit Clock(double hz);

  double hz() const { return hz_; }

  /// Duration of \p cycles core cycles, rounded to the nearest ns (>= 1 ns
  /// for any nonzero cycle count so events always make progress).
  sim::SimTime cycles_to_time(std::uint64_t cycles) const;

  /// Cycles elapsing in \p duration (floor).
  std::uint64_t time_to_cycles(sim::SimTime duration) const;

  /// Nanoseconds per cycle (may be fractional).
  double cycle_ns() const { return 1e9 / hz_; }

 private:
  double hz_;
};

}  // namespace iecd::mcu
