# Empty dependencies file for iecd_plant.
# This may be replaced when dependencies are built.
