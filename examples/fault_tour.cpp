// Fault tour: the fault-injection & robustness subsystem (src/fault/) on
// the DC-servo case study, in four acts.
//
//   1. A single reproducible fault: one FaultInjector, one site, the
//      exact same fault sequence on every replay of (seed, site).
//   2. A lossy PIL link WITHOUT recovery: serial byte faults and frame
//      truncation eat exchanges; the loop degrades unprotected.
//   3. The same seed WITH the timeout/retransmit recovery layer: the host
//      retransmits through every loss (the board answers duplicates from
//      its response cache without re-stepping the controller) and the
//      degradation collapses.
//   4. A deterministic campaign: fault::CampaignRunner fans N runs over
//      worker threads and folds them in index order — the
//      CAMPAIGN_fault_tour.json report is byte-identical for any thread
//      count.
//
// A FaultInjector with an all-zero plan wires nothing: such a run is
// bit-identical to one with no fault subsystem attached
// (tests/fault_test.cpp locks that bit-for-bit).
#include <cstdio>
#include <string>

#include "core/case_study.hpp"
#include "fault/campaign.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "fault/sites.hpp"
#include "obs/monitor.hpp"

using namespace iecd;

namespace {

core::ServoConfig tour_config() {
  core::ServoConfig cfg;
  cfg.duration_s = 0.3;
  cfg.setpoint_time = 0.02;
  return cfg;
}

void act_one_reproducible_fault() {
  std::printf("=== 1. one fault, reproducible in isolation ===\n\n");

  fault::FaultPlan plan;
  plan.serial_corrupt_rate = 0.01;
  for (int replay = 0; replay < 2; ++replay) {
    fault::FaultInjector injector(fault::CampaignRunner::run_seed(42, 0),
                                  plan);
    auto& site = injector.site("serial.rs232.a2b");
    std::printf("replay %d, first byte indices hit:", replay);
    int hits = 0;
    for (int byte = 0; byte < 2000 && hits < 6; ++byte) {
      if (site.fire(plan.serial_corrupt_rate)) {
        std::printf(" %d", byte);
        ++hits;
      }
    }
    std::printf("\n");
  }
  std::printf("same (seed, site) -> same sequence, independent of every "
              "other site.\n\n");
}

double run_pil(bool with_faults, bool with_recovery, const char* label) {
  core::ServoSystem servo(tour_config());
  fault::FaultInjector injector(fault::CampaignRunner::run_seed(42, 1),
                                fault::FaultPlan::defaults().scaled(2.0));
  core::ServoSystem::PilRunOptions opts;
  opts.baud = 1000000;  // RTT must fit inside the period for retransmits
  if (with_faults) opts.faults = &injector;
  opts.recovery.enabled = with_recovery;
  const auto result = servo.run_pil(opts);

  const auto count = [&](const char* name) {
    const auto* c = result.report.metrics.find_counter(name);
    return c ? c->value : 0;
  };
  std::printf("%-22s IAE %.3f  crc_err %llu  retrans %llu  recovered %llu  "
              "abandoned %llu  dup %llu\n",
              label, result.iae,
              static_cast<unsigned long long>(result.report.crc_errors),
              static_cast<unsigned long long>(count("pil.retransmits")),
              static_cast<unsigned long long>(
                  count("pil.recovered_exchanges")),
              static_cast<unsigned long long>(
                  count("pil.exchanges_abandoned")),
              static_cast<unsigned long long>(count("pil.duplicate_frames")));
  return result.iae;
}

void act_two_three_lossy_link() {
  std::printf("=== 2+3. lossy PIL link, without vs with recovery ===\n\n");
  const double clean = run_pil(false, false, "clean:");
  const double unprotected = run_pil(true, false, "faults, no recovery:");
  const double recovered = run_pil(true, true, "faults + recovery:");
  std::printf("\nIAE ratio vs clean: unprotected %.3f, recovered %.3f\n\n",
              unprotected / clean, recovered / clean);
}

void act_four_campaign() {
  std::printf("=== 4. deterministic campaign ===\n\n");

  fault::CampaignOptions opts;
  opts.name = "fault_tour";
  opts.seed = 42;
  opts.runs = 4;
  opts.threads = 4;
  opts.plan = fault::FaultPlan::defaults();
  const fault::CampaignReport report =
      fault::CampaignRunner(opts).run([](fault::RunContext& ctx) {
        core::ServoSystem servo(tour_config());
        obs::MonitorHub hub;
        core::ServoSystem::PilRunOptions run;
        run.baud = 1000000;
        run.faults = &ctx.injector;
        run.monitors = &hub;
        run.recovery.enabled = true;
        const auto result = servo.run_pil(run);
        ctx.metrics.merge(result.report.metrics);
        ctx.metrics.stats("campaign.iae").add(result.iae);
        ctx.health.merge(hub.report("pil"));
        const auto* abandoned =
            result.report.metrics.find_counter("pil.exchanges_abandoned");
        return abandoned == nullptr || abandoned->value == 0;
      });

  std::printf("%s\n", report.summary().c_str());
  std::printf("per-site injections:\n");
  for (const auto& [name, counter] : report.merged.counters()) {
    if (name.rfind("fault.", 0) == 0 &&
        name.size() > 9 && name.compare(name.size() - 9, 9, ".injected") == 0) {
      std::printf("  %-28s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(counter.value));
    }
  }
  report.write_json("CAMPAIGN_fault_tour.json");
  std::printf("wrote CAMPAIGN_fault_tour.json (byte-identical for any "
              "thread count)\n\n");
}

}  // namespace

int main() {
  std::printf("IECD fault tour: deterministic fault campaigns across link, "
              "MCU, plant and PIL layers\n\n");
  act_one_reproducible_fault();
  act_two_three_lossy_link();
  act_four_campaign();
  return 0;
}
