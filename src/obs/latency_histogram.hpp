/// \file latency_histogram.hpp
/// HDR-style log-bucketed histogram for online latency analysis: fixed
/// memory chosen at construction, allocation-free on the record path, exact
/// min/max/count/sum, and interpolated quantiles whose relative error is
/// bounded by the sub-bucket resolution (1/32 per octave by default).
///
/// The paper's PIL phase surfaces "execution times of the implemented
/// controller code, interrupts response times, sampling jitters"; this is
/// the container those quantities stream into while the run executes, so
/// percentiles are available online instead of being recomputed ad hoc per
/// bench from retained sample vectors.
///
/// Bucketing: a positive value v = m * 2^e (frexp, m in [0.5, 1)) lands in
/// octave (e - min_exp), sub-bucket floor((m - 0.5) * 2 * S).  Bucket
/// widths therefore grow geometrically while each octave is split into S
/// linear sub-buckets — the classic HDR layout.  Zero and values below the
/// tracked range land in the dedicated underflow bucket; values above it
/// saturate into the last bucket.  Exact min/max are tracked separately, so
/// quantile answers are always clamped into the true observed range.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace iecd::obs {

class LatencyHistogram {
 public:
  struct Config {
    /// log2 of the sub-buckets per octave; 5 -> 32 sub-buckets -> worst
    /// relative quantile error ~3.1%.
    int sub_bucket_bits = 5;
    /// Smallest tracked binary exponent: 2^min_exp is the resolution
    /// floor.  -20 ~ 1e-6 (sub-microsecond when recording microseconds).
    int min_exp = -20;
    /// Largest tracked exponent: values >= 2^max_exp saturate.  40 ~ 1e12.
    int max_exp = 40;

    bool operator==(const Config&) const = default;
  };

  LatencyHistogram();
  explicit LatencyHistogram(Config config);

  /// Records one sample.  Allocation-free: bucket arithmetic plus a
  /// handful of scalar updates.  Negative values are clamped to 0 (they
  /// count in the underflow bucket but still update the exact min).
  /// Inline and branch-light — this sits on the dispatch-retirement hot
  /// path of every monitored task (the E9 overhead bench bounds its cost).
  void record(double value) {
    ++counts_[bucket_index(value)];
    if (count_ == 0) {
      min_ = value;
      max_ = value;
    } else {
      if (value < min_) min_ = value;
      if (value > max_) max_ = value;
    }
    sum_ += value;
    ++count_;
  }

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

  /// Interpolated quantile, p in [0, 100] (clamped).  Uses the same
  /// rank convention as util::SampleSeries::percentile (linear rank
  /// r = p/100 * (n-1)); the bucket containing the rank is located by a
  /// cumulative walk and the answer interpolated linearly inside it, then
  /// clamped to the exact [min, max].  Empty histogram yields 0.
  double percentile(double p) const;

  double p50() const { return percentile(50.0); }
  double p90() const { return percentile(90.0); }
  double p99() const { return percentile(99.0); }
  double p999() const { return percentile(99.9); }

  /// Bin-wise merge; both histograms must share a Config (returns false
  /// and leaves this untouched otherwise).  Merging is associative and
  /// commutative up to floating-point addition order of sum_, so an
  /// index-order fold over sweep runs is deterministic.
  bool merge(const LatencyHistogram& other);

  void reset();

  const Config& config() const { return config_; }
  std::size_t bucket_count() const { return counts_.size(); }

  /// Raw bucket counts (campaign checkpoints serialize these; together
  /// with count()/sum()/min()/max() they are the histogram's full state).
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

  /// Rebuilds a histogram from raw state previously read off
  /// bucket_counts()/count()/sum()/min()/max().  A counts vector whose size
  /// does not match \p config's bucket count yields an empty histogram
  /// (defensive: checkpoint payloads are untrusted input).
  static LatencyHistogram from_raw(Config config,
                                   std::vector<std::uint64_t> counts,
                                   std::uint64_t count, double sum,
                                   double min, double max);

  /// Upper bound of the worst-case relative quantile error: one sub-bucket
  /// width relative to its octave base.
  double relative_error_bound() const {
    return 1.0 / static_cast<double>(std::size_t{1} << config_.sub_bucket_bits);
  }

  /// One-line summary: n, mean, p50/p90/p99/max.
  std::string summary() const;

 private:
  /// Bucket selection by IEEE-754 bit extraction — identical result to the
  /// frexp formulation (v = m * 2^e, m in [0.5, 1): octave e - 1 - min_exp,
  /// sub-bucket floor((m - 0.5) * 2 * S)) but without the libm call: for a
  /// normal double, e == biased_exponent - 1022 and (m - 0.5) * 2 * S is
  /// exactly mantissa >> (52 - sub_bucket_bits).
  std::size_t bucket_index(double value) const {
    if (!(value > 0.0)) return 0;  // zero, negative, NaN -> underflow bucket
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
    const int biased = static_cast<int>(bits >> 52);  // sign known positive
    if (biased == 0) return 0;  // subnormal: below any sane min_exp
    const int e = biased - 1022;
    if (e <= config_.min_exp) return 0;
    if (e > config_.max_exp) return counts_.size() - 1;  // saturate (and inf)
    const std::size_t sub = std::size_t{1} << config_.sub_bucket_bits;
    const auto octave = static_cast<std::size_t>(e - 1 - config_.min_exp);
    const std::size_t s = (bits & ((std::uint64_t{1} << 52) - 1)) >>
                          (52 - config_.sub_bucket_bits);
    return 1 + octave * sub + s;
  }
  /// Inclusive lower / exclusive upper value bound of bucket \p i.
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

  Config config_;
  std::vector<std::uint64_t> counts_;  ///< [underflow, octaves * sub-buckets]
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace iecd::obs
