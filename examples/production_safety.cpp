// Production hardening walk-through: the servo application with the
// safety net a series ECU ships with —
//   * static schedulability analysis of the generated task set
//     (cross-checked against the observed HIL response times),
//   * a watchdog serviced from the model step, with a failure-injection
//     run showing it catching a chronically overrunning controller,
//   * AUTOSAR-flavoured code emission (the paper's second block-set
//     variant) for integration with a standardized basic software stack.
#include <cstdio>

#include "beans/autosar.hpp"
#include "beans/watchdog_bean.hpp"
#include "codegen/generator.hpp"
#include "core/case_study.hpp"
#include "mcu/derivative.hpp"
#include "rt/schedulability.hpp"

using namespace iecd;

int main() {
  core::ServoConfig cfg;
  cfg.duration_s = 0.6;
  core::ServoSystem servo(cfg);
  auto& wdog = servo.project().add<beans::WatchdogBean>("WDog1");
  servo.project().set_property("WDog1", "timeout_s", 0.004);

  auto build = servo.build_target("servo");
  if (!build.ok()) {
    std::printf("%s", build.diagnostics.to_string().c_str());
    return 1;
  }

  std::printf("=== 1. static schedulability analysis ===\n\n");
  const auto& cpu = mcu::find_derivative(cfg.derivative);
  // The operator can press the key at most ~20x/s.
  const auto report = rt::analyze_schedulability(
      build.app, cpu, {{"KeyUp_OnInterrupt", 0.05}});
  std::printf("%s\n", report.to_string().c_str());

  std::printf("=== 2. healthy run: watchdog stays quiet ===\n\n");
  const auto healthy = servo.run_hil();
  std::printf("  settled %s, IAE %.3f; watchdog refreshes %llu, bites "
              "%llu\n",
              healthy.metrics.settled ? "yes" : "no", healthy.iae,
              static_cast<unsigned long long>(
                  wdog.peripheral()->refreshes()),
              static_cast<unsigned long long>(wdog.peripheral()->bites()));
  std::printf("  observed worst response %.1f us vs analytic bound %.1f "
              "us\n\n",
              healthy.exec_us_max + healthy.response_us_max,
              report.tasks[0].response_bound_s * 1e6);

  std::printf("=== 3. failure injection: controller overruns its period "
              "===\n\n");
  core::ServoSystem faulty(cfg);
  auto& wdog2 = faulty.project().add<beans::WatchdogBean>("WDog1");
  faulty.project().set_property("WDog1", "timeout_s", 0.004);
  core::ServoSystem::HilOptions fault;
  fault.extra_latency_cycles = 200000;  // ~3.3 ms busy-wait per 1 ms period
  const auto sick = faulty.run_hil(fault);
  std::printf("  interrupt overruns %llu, watchdog bites %llu -> the COP "
              "catches the stuck loop\n\n",
              static_cast<unsigned long long>(sick.overruns),
              static_cast<unsigned long long>(wdog2.peripheral()->bites()));

  std::printf("=== 4. AUTOSAR code variant ===\n\n");
  core::ServoSystem autosar_servo(cfg);
  autosar_servo.project().add<beans::WatchdogBean>("WDog1");
  autosar_servo.validate();
  codegen::GeneratorOptions opts;
  opts.app_name = "servo";
  opts.api = beans::DriverApi::kAutosar;
  codegen::Generator gen;
  auto ar = gen.generate(autosar_servo.controller(), autosar_servo.project(),
                         opts);
  std::printf("  emitted %zu files against the MCAL API, e.g.:\n",
              ar.sources.size());
  const std::string& step = ar.sources.at("servo.c");
  for (const char* needle :
       {"Cdd_QuadDec_GetPosition", "Pwm_SetDutyCycle", "Dio_ReadChannel"}) {
    const auto pos = step.find(needle);
    if (pos == std::string::npos) continue;
    const auto start = step.rfind('\n', pos) + 1;
    const auto end = step.find('\n', pos);
    std::printf("    %s\n", step.substr(start, end - start).c_str());
  }
  std::printf("  (PE-variant and AUTOSAR-variant applications are "
              "functionally identical;\n   see tests/autosar_test.cpp)\n");
  return 0;
}
