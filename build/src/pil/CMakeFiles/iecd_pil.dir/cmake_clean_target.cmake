file(REMOVE_RECURSE
  "libiecd_pil.a"
)
