/// \file writer.hpp
/// EvidenceWriter: serializes one run's records into an in-memory
/// artifact (format.hpp layout) and seals it with the hash footer.  All
/// output is deterministic — recording the same run twice produces the
/// same bytes, and the golden tests hold that byte-for-byte.
///
/// Usage:
///   EvidenceWriter w;
///   w.record_build_info();
///   w.record_run_meta("servo_pil", index, seed);
///   w.record_metrics(metrics);
///   w.record_health(health);
///   w.record_trace(recorder);   // string table + events
///   w.finish();
///   w.write_file("run_0000.evd");
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "evidence/hash.hpp"
#include "evidence/schema.hpp"
#include "obs/health_report.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/build_info.hpp"

namespace iecd::evidence {

class EvidenceWriter {
 public:
  explicit EvidenceWriter(
      const SchemaRegistry& registry = SchemaRegistry::builtin());

  // ------------------------------------------------------------- records
  /// Process build provenance (util::build_info()).
  void record_build_info();
  void record_build_info(const util::BuildInfo& info);
  void record_run_meta(const std::string& name, std::uint64_t index,
                       std::uint64_t seed);
  /// Every registry entry in deterministic (map) order: counters, gauges,
  /// stats, series, histograms.
  void record_metrics(const trace::MetricsRegistry& metrics);
  /// Headline numbers + the full JSON document.
  void record_health(const obs::HealthReport& health);
  /// Campaign headline record (the sink layer fills the JSON string with
  /// CampaignReport::to_json(); this header stays fault-agnostic).
  void record_campaign_summary(const std::string& name, std::uint64_t seed,
                               std::uint64_t runs, std::uint64_t unrecovered,
                               std::uint64_t faults_injected,
                               std::uint64_t fault_opportunities,
                               const std::string& json);
  /// The recorder's interned-string table (in id order) followed by every
  /// live event (oldest first).
  void record_trace(const trace::TraceRecorder& recorder);

  /// Low-level escape hatch: appends one record cell with an arbitrary
  /// schema id/version and payload (used by tests to craft artifacts).
  void append_record(std::uint16_t schema_id, std::uint16_t schema_version,
                     const std::vector<std::uint8_t>& payload);
  /// Allocation-free variant (the trace fast path serializes events into
  /// a stack buffer and appends through this).
  void append_record(std::uint16_t schema_id, std::uint16_t schema_version,
                     const std::uint8_t* payload, std::size_t size);

  // -------------------------------------------------------------- sealing
  /// Writes the footer (record count, chain hash, SHA-256).  No records
  /// may be appended afterwards.
  void finish();
  bool finished() const { return finished_; }

  const std::vector<std::uint8_t>& bytes() const { return buffer_; }
  std::uint64_t record_count() const { return record_count_; }
  std::uint64_t chain_hash() const { return chain_; }
  /// SHA-256 (hex) of the sealed artifact body; empty before finish().
  const std::string& sha256_hex() const { return sha256_hex_; }

  /// Writes the sealed artifact to \p path (binary).  Requires finish().
  bool write_file(const std::string& path) const;

 private:
  const SchemaRegistry& registry_;
  std::vector<std::uint8_t> buffer_;
  std::uint64_t record_count_ = 0;
  std::uint64_t chain_ = kChainSeed;
  bool finished_ = false;
  std::string sha256_hex_;
};

}  // namespace iecd::evidence
