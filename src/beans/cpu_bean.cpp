#include "beans/cpu_bean.hpp"

#include "util/strings.hpp"

namespace iecd::beans {

namespace {
std::vector<std::string> derivative_names() {
  std::vector<std::string> names;
  for (const auto& d : mcu::derivative_registry()) names.push_back(d.name);
  return names;
}
}  // namespace

CpuBean::CpuBean(std::string name, const std::string& derivative)
    : Bean(std::move(name), "CPU") {
  properties().declare(PropertySpec::enumeration(
      "derivative", derivative, derivative_names(),
      "target MCU derivative (swap to retarget the whole project)"));
  properties().declare(PropertySpec::integer(
      "main_stack_bytes", 256, 64, 65536, "stack reserved for main/startup"));
  properties().declare(
      PropertySpec::real("clock_hz", 0.0, 0.0, 1e12, "core clock")
          .derived());
  properties().declare(
      PropertySpec::integer("word_bits", 0, 0, 64, "native word size")
          .derived());
}

const mcu::DerivativeSpec& CpuBean::derivative() const {
  return mcu::find_derivative(properties().get_string("derivative"));
}

std::vector<MethodSpec> CpuBean::methods() const {
  return {
      {"EnableInt", "void %M_EnableInt(void)", "global interrupt enable"},
      {"DisableInt", "void %M_DisableInt(void)", "global interrupt disable"},
      {"Delay100US", "void %M_Delay100US(word n)", "busy-wait delay"},
  };
}

std::vector<EventSpec> CpuBean::events() const { return {}; }

ResourceDemand CpuBean::demand() const { return {}; }

void CpuBean::validate(const mcu::DerivativeSpec& cpu,
                       util::DiagnosticList& diagnostics) {
  properties().set_derived("clock_hz", cpu.clock_hz);
  properties().set_derived("word_bits",
                           static_cast<std::int64_t>(cpu.native_word_bits));
  if (!cpu.has_fpu) {
    diagnostics.info(name() + ".derivative",
                     "no FPU: floating-point model code will be emulated in "
                     "software (consider fixed point)");
  }
}

void CpuBean::bind(BindContext& ctx) {
  ctx.mcu.cpu().set_main_stack_bytes(
      static_cast<std::uint32_t>(properties().get_int("main_stack_bytes")));
  mark_bound();
}

DriverSource CpuBean::driver_source() const {
  DriverSource out;
  out.header_name = name() + ".h";
  out.source_name = name() + ".c";
  std::string h = driver_header_prologue();
  h += "void " + name() + "_EnableInt(void);\n";
  h += "void " + name() + "_DisableInt(void);\n";
  h += "\n#endif /* __" + name() + "_H */\n";
  out.header = h;
  std::string c;
  c += "#include \"" + name() + ".h\"\n\n";
  c += util::format(
      "/* derivative: %s, core clock %.0f Hz */\n",
      properties().get_string("derivative").c_str(),
      properties().get_real("clock_hz"));
  c += "void " + name() + "_EnableInt(void) { __EI(); }\n";
  c += "void " + name() + "_DisableInt(void) { __DI(); }\n";
  out.source = c;
  return out;
}

}  // namespace iecd::beans
