# Empty compiler generated dependencies file for iecd_core.
# This may be replaced when dependencies are built.
