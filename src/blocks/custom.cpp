#include "blocks/custom.hpp"

#include <stdexcept>

namespace iecd::blocks {

FunctionBlock::FunctionBlock(std::string name, int inputs, Fn fn)
    : Block(std::move(name), inputs, 1), fn_(std::move(fn)) {
  if (!fn_) throw std::invalid_argument(this->name() + ": empty function");
  ops_.alu16 = 4;
  ops_.mem = 2;
}

void FunctionBlock::output(const SimContext& ctx) {
  args_.resize(static_cast<std::size_t>(input_count()));
  for (int i = 0; i < input_count(); ++i) {
    args_[static_cast<std::size_t>(i)] = in(i);
  }
  set_out(0, fn_(args_, ctx.t));
}

mcu::OpCounts FunctionBlock::step_ops(bool) const { return ops_; }

}  // namespace iecd::blocks
