// campaign_ctl — drives the streaming campaign engine from the command
// line: start a campaign, kill it mid-flight (deterministically, right
// after a checkpoint seal), resume it, and inspect a checkpoint.  The CI
// campaign-resume job runs exactly this sequence and byte-compares the
// resumed evidence against an uninterrupted run.
//
//   campaign_ctl run --dir DIR [--runs N] [--threads N] [--batch N]
//                    [--seed S] [--checkpoint-every N] [--crash-after K]
//                    [--no-artifacts] [--fresh]
//       Runs the built-in synthetic campaign (deterministic SplitMix64
//       spin work; output depends only on seed/runs/batch).  When a
//       matching CHECKPOINT.evd exists in DIR the run RESUMES at its
//       watermark.  --crash-after K calls _exit(42) right after the K-th
//       checkpoint seal — the crash the resume path is tested against.
//       --fresh wipes DIR first.  Writes DIR/REPORT.json on completion.
//   campaign_ctl status --dir DIR
//       Prints the checkpoint's identity and watermark; exit 0 when a
//       valid checkpoint exists, 1 otherwise.
//
// Exit code: 0 success, 1 status-missing/failure, 2 usage, 42 when
// --crash-after fired.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "campaign/engine.hpp"
#include "fault/campaign.hpp"
#include "fault/rng.hpp"

#if defined(__unix__)
#include <unistd.h>
#endif

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: campaign_ctl run --dir DIR [--runs N] [--threads N]\n"
      "                        [--batch N] [--seed S]\n"
      "                        [--checkpoint-every N] [--crash-after K]\n"
      "                        [--no-artifacts] [--fresh]\n"
      "       campaign_ctl status --dir DIR\n");
  return 2;
}

/// The synthetic run body: deterministic arithmetic seeded from the
/// per-run seed, so the campaign output is a pure function of
/// (seed, runs, batch) — what the resume byte-comparison needs.
bool scenario(iecd::fault::RunContext& ctx) {
  iecd::fault::SplitMix64 rng(ctx.run_seed);
  double acc = 0.0;
  for (int i = 0; i < 2000; ++i) {
    acc = acc * 0.9999999 +
          static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
  }
  ctx.metrics.stats("campaign.cost").add(acc);
  const auto t = static_cast<iecd::sim::SimTime>(1000 + ctx.index);
  ctx.health.tasks["ctl.work"].record(t, t + 1, t + 2);
  return true;
}

int cmd_status(const std::string& dir) {
  iecd::campaign::CheckpointState state;
  const std::string path =
      (std::filesystem::path(dir) /
       iecd::campaign::CampaignEngine::checkpoint_filename())
          .string();
  switch (iecd::campaign::load_checkpoint(path, state)) {
    case iecd::campaign::CheckpointStatus::kOk:
      std::printf("checkpoint %s: campaign \"%s\", config %016llx, "
                  "watermark %llu / %llu runs, %zu unrecovered so far\n",
                  path.c_str(), state.name.c_str(),
                  static_cast<unsigned long long>(state.config_hash),
                  static_cast<unsigned long long>(state.watermark),
                  static_cast<unsigned long long>(state.total_runs),
                  state.unrecovered_runs.size());
      return 0;
    case iecd::campaign::CheckpointStatus::kMissing:
      std::printf("no checkpoint at %s\n", path.c_str());
      return 1;
    case iecd::campaign::CheckpointStatus::kCorrupt:
      std::printf("checkpoint at %s is corrupt\n", path.c_str());
      return 1;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  std::string dir;
  std::size_t runs = 512;
  std::size_t threads = 2;
  std::size_t batch = 1;
  std::uint64_t seed = 2026;
  std::size_t checkpoint_every = 64;
  std::size_t crash_after = 0;
  bool artifacts = true;
  bool fresh = false;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--dir" && (v = next())) {
      dir = v;
    } else if (arg == "--runs" && (v = next())) {
      runs = std::strtoull(v, nullptr, 10);
    } else if (arg == "--threads" && (v = next())) {
      threads = std::strtoull(v, nullptr, 10);
    } else if (arg == "--batch" && (v = next())) {
      batch = std::strtoull(v, nullptr, 10);
    } else if (arg == "--seed" && (v = next())) {
      seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--checkpoint-every" && (v = next())) {
      checkpoint_every = std::strtoull(v, nullptr, 10);
    } else if (arg == "--crash-after" && (v = next())) {
      crash_after = std::strtoull(v, nullptr, 10);
    } else if (arg == "--no-artifacts") {
      artifacts = false;
    } else if (arg == "--fresh") {
      fresh = true;
    } else {
      return usage();
    }
  }
  if (dir.empty()) return usage();

  if (cmd == "status") return cmd_status(dir);
  if (cmd != "run") return usage();

  if (fresh) std::filesystem::remove_all(dir);

  iecd::campaign::EngineOptions eo;
  eo.campaign.name = "campaign_ctl";
  eo.campaign.seed = seed;
  eo.campaign.runs = runs;
  eo.campaign.threads = threads;
  eo.campaign.batch = batch;
  eo.evidence_dir = dir;
  eo.checkpoint_every = checkpoint_every;
  eo.write_run_artifacts = artifacts;
  std::size_t sealed = 0;
  if (crash_after > 0) {
    eo.on_checkpoint =
        [&sealed, crash_after](const iecd::campaign::CheckpointState& state) {
          if (++sealed == crash_after) {
            std::printf("crash-after: exiting after checkpoint seal at "
                        "watermark %llu\n",
                        static_cast<unsigned long long>(state.watermark));
            std::fflush(stdout);
#if defined(__unix__)
            _exit(42);
#else
            std::_Exit(42);
#endif
          }
        };
  }

  iecd::campaign::CampaignEngine engine(eo);
  const iecd::campaign::EngineResult result = engine.run(
      iecd::fault::CampaignScenario(scenario));

  result.report.write_json(
      (std::filesystem::path(dir) / "REPORT.json").string());
  std::printf("%s%s: %zu runs (%zu threads, batch %zu), %llu checkpoints "
              "sealed, %llu steals, manifest %s\n",
              result.resumed ? "resumed at " : "ran",
              result.resumed
                  ? std::to_string(result.resume_start).c_str()
                  : "",
              runs, result.sched.threads_used,
              batch,
              static_cast<unsigned long long>(result.checkpoints_sealed),
              static_cast<unsigned long long>(result.sched.steals),
              result.evidence.manifest_path.c_str());
  return 0;
}
