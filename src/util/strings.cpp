#include "util/strings.hpp"

#include <cctype>
#include <cstdio>

namespace iecd::util {

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool is_c_identifier(const std::string& s) {
  if (s.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_')) {
    return false;
  }
  for (char c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
  }
  return true;
}

std::string sanitize_c_identifier(const std::string& s) {
  if (s.empty()) return "_";
  std::string out;
  out.reserve(s.size() + 1);
  if (std::isdigit(static_cast<unsigned char>(s[0]))) out += '_';
  for (char c : s) {
    out += (std::isalnum(static_cast<unsigned char>(c)) || c == '_') ? c : '_';
  }
  return out;
}

std::string indent(const std::string& text, int spaces) {
  const std::string pad(static_cast<std::size_t>(spaces < 0 ? 0 : spaces), ' ');
  std::string out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::string line = text.substr(
        start, nl == std::string::npos ? std::string::npos : nl - start);
    if (!line.empty()) out += pad;
    out += line;
    if (nl == std::string::npos) break;
    out += '\n';
    start = nl + 1;
  }
  return out;
}

}  // namespace iecd::util
