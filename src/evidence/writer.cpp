#include "evidence/writer.hpp"

#include <cassert>
#include <fstream>

namespace iecd::evidence {

EvidenceWriter::EvidenceWriter(const SchemaRegistry& registry)
    : registry_(registry) {
  // Header.  (Byte-wise append: gcc-12 misdiagnoses a char[8] range
  // insert into a uint8 vector as a stringop overflow.)
  for (char c : kHeaderMagic) buffer_.push_back(static_cast<std::uint8_t>(c));
  store_le<std::uint16_t>(buffer_, kFormatVersion);
  store_le<std::uint16_t>(buffer_, kHeaderSize);
  store_le<std::uint32_t>(buffer_,
                          static_cast<std::uint32_t>(registry_.size()));
  store_le<std::uint64_t>(buffer_, 0);  // flags
  store_le<std::uint64_t>(buffer_, 0);  // reserved
  // Schema section, id order (std::map).
  for (const auto& [id, schema] : registry_.schemas()) {
    SchemaRegistry::encode(schema, buffer_);
  }
}

void EvidenceWriter::append_record(std::uint16_t schema_id,
                                   std::uint16_t schema_version,
                                   const std::uint8_t* payload,
                                   std::size_t size) {
  assert(!finished_ && "append_record after finish()");
  const std::size_t cell_start = buffer_.size();
  buffer_.resize(cell_start + kCellHeaderSize + size);
  std::uint8_t* p = buffer_.data() + cell_start;
  p = store_le_at<std::uint32_t>(p, static_cast<std::uint32_t>(size));
  p = store_le_at<std::uint16_t>(p, schema_id);
  p = store_le_at<std::uint16_t>(p, schema_version);
  if (size > 0) std::memcpy(p, payload, size);
  chain_ = chain_update(chain_, buffer_.data() + cell_start,
                        kCellHeaderSize + size);
  ++record_count_;
}

void EvidenceWriter::append_record(std::uint16_t schema_id,
                                   std::uint16_t schema_version,
                                   const std::vector<std::uint8_t>& payload) {
  append_record(schema_id, schema_version, payload.data(), payload.size());
}

void EvidenceWriter::record_build_info() {
  record_build_info(util::build_info());
}

void EvidenceWriter::record_build_info(const util::BuildInfo& info) {
  std::vector<std::uint8_t> p;
  store_str(p, info.git_sha);
  store_str(p, info.compiler);
  store_str(p, info.flags);
  store_str(p, info.build_type);
  append_record(kSchemaBuildInfo, 1, p);
}

void EvidenceWriter::record_run_meta(const std::string& name,
                                     std::uint64_t index, std::uint64_t seed) {
  std::vector<std::uint8_t> p;
  store_str(p, name);
  store_le<std::uint64_t>(p, index);
  store_le<std::uint64_t>(p, seed);
  append_record(kSchemaRunMeta, 1, p);
}

void EvidenceWriter::record_metrics(const trace::MetricsRegistry& metrics) {
  for (const auto& [name, counter] : metrics.counters()) {
    std::vector<std::uint8_t> p;
    store_str(p, name);
    store_le<std::uint64_t>(p, counter.value);
    append_record(kSchemaMetricCounter, 1, p);
  }
  for (const auto& [name, value] : metrics.gauges()) {
    std::vector<std::uint8_t> p;
    store_str(p, name);
    store_f64(p, value);
    append_record(kSchemaMetricGauge, 1, p);
  }
  for (const auto& [name, stats] : metrics.all_stats()) {
    std::vector<std::uint8_t> p;
    store_str(p, name);
    store_le<std::uint64_t>(p, stats.count());
    store_f64(p, stats.mean());
    store_f64(p, stats.m2());
    store_f64(p, stats.sum());
    store_f64(p, stats.min());
    store_f64(p, stats.max());
    append_record(kSchemaMetricStats, 1, p);
  }
  for (const auto& [name, series] : metrics.all_series()) {
    std::vector<std::uint8_t> p;
    store_str(p, name);
    store_le<std::uint32_t>(
        p, static_cast<std::uint32_t>(series.samples().size() * 8));
    for (double x : series.samples()) store_f64(p, x);
    append_record(kSchemaMetricSeries, 1, p);
  }
  for (const auto& [name, hist] : metrics.histograms()) {
    std::vector<std::uint8_t> p;
    store_str(p, name);
    store_f64(p, hist.lo());
    store_f64(p, hist.hi());
    store_le<std::uint32_t>(p, static_cast<std::uint32_t>(hist.bins() * 8));
    for (std::size_t i = 0; i < hist.bins(); ++i) {
      store_le<std::uint64_t>(p, hist.bin_count(i));
    }
    append_record(kSchemaMetricHistogram, 1, p);
  }
}

void EvidenceWriter::record_health(const obs::HealthReport& health) {
  std::vector<std::uint8_t> p;
  store_str(p, health.source);
  store_le<std::uint64_t>(p, health.runs);
  store_le<std::uint64_t>(p, health.deadline_misses());
  store_le<std::uint64_t>(p, health.anomaly_count());
  store_le<std::uint8_t>(p, health.healthy() ? 1 : 0);
  store_str(p, health.to_json());
  append_record(kSchemaHealthSummary, 1, p);
}

void EvidenceWriter::record_campaign_summary(
    const std::string& name, std::uint64_t seed, std::uint64_t runs,
    std::uint64_t unrecovered, std::uint64_t faults_injected,
    std::uint64_t fault_opportunities, const std::string& json) {
  std::vector<std::uint8_t> p;
  store_str(p, name);
  store_le<std::uint64_t>(p, seed);
  store_le<std::uint64_t>(p, runs);
  store_le<std::uint64_t>(p, unrecovered);
  store_le<std::uint64_t>(p, faults_injected);
  store_le<std::uint64_t>(p, fault_opportunities);
  store_str(p, json);
  append_record(kSchemaCampaignSummary, 1, p);
}

void EvidenceWriter::record_trace(const trace::TraceRecorder& recorder) {
  // One up-front reservation for the whole trace section keeps the event
  // loop free of vector growth.
  constexpr std::size_t kEventPayload = 1 + 4 + 4 + 4 + 8 + 8 + 8 + 8;
  std::size_t intern_bytes = 0;
  for (trace::NameId id = 0; id < recorder.interned_count(); ++id) {
    intern_bytes +=
        kCellHeaderSize + 4 + 4 + recorder.string_at(id).size();
  }
  buffer_.reserve(buffer_.size() + intern_bytes +
                  recorder.size() * (kCellHeaderSize + kEventPayload));

  for (trace::NameId id = 0; id < recorder.interned_count(); ++id) {
    std::vector<std::uint8_t> p;
    store_le<std::uint32_t>(p, id);
    store_str(p, recorder.string_at(id));
    append_record(kSchemaStringIntern, 1, p);
  }
  recorder.for_each([this](const trace::Event& ev) {
    std::uint8_t cell[kEventPayload];
    std::uint8_t* p = cell;
    p = store_le_at<std::uint8_t>(p, static_cast<std::uint8_t>(ev.type));
    p = store_le_at<std::uint32_t>(p, ev.category);
    p = store_le_at<std::uint32_t>(p, ev.name);
    p = store_le_at<std::uint32_t>(p, ev.track);
    p = store_le_at<std::int64_t>(p, ev.time);
    p = store_le_at<std::int64_t>(p, ev.duration);
    p = store_le_at<std::uint64_t>(p, ev.seq);
    store_f64_at(p, ev.value);
    append_record(kSchemaTraceEvent, 1, cell, kEventPayload);
  });
}

void EvidenceWriter::finish() {
  assert(!finished_);
  finished_ = true;
  const auto digest = Sha256::of(buffer_.data(), buffer_.size());
  sha256_hex_ = hex(digest);
  store_le<std::uint32_t>(buffer_, kFooterSentinel);
  for (char c : kFooterMagic) buffer_.push_back(static_cast<std::uint8_t>(c));
  store_le<std::uint64_t>(buffer_, record_count_);
  store_le<std::uint64_t>(buffer_, chain_);
  buffer_.insert(buffer_.end(), digest.begin(), digest.end());
  store_le<std::uint32_t>(buffer_, kEndMagic);
}

bool EvidenceWriter::write_file(const std::string& path) const {
  if (!finished_) return false;
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  os.write(reinterpret_cast<const char*>(buffer_.data()),
           static_cast<std::streamsize>(buffer_.size()));
  return os.good();
}

}  // namespace iecd::evidence
