// The paper's Section 7 case study, end to end: DC-motor speed control
// with PWM actuation, incremental-encoder feedback through the quadrature
// decoder, keyboard set-point/mode input, on the 16-bit DSC target.
//
// The example walks the full development cycle of Fig. 6.1:
//   1. Bean Inspector view of the PE project (Fig. 4.1)
//   2. expert-system validation
//   3. MIL simulation of the single model (Fig. 7.1/7.2)
//   4. PEERT code generation (generated C shown in codegen_tour)
//   5. PIL co-simulation over the byte-timed RS232 link (Fig. 6.2)
//   6. HIL execution against the peripheral-level plant
// and prints the control quality + target profiling at each phase.
//
// Pass a path as the first argument (e.g. `servo_case_study trace.json`)
// to run the PIL phase with the unified tracer on and export the
// cross-layer timeline as Chrome trace-event JSON for Perfetto /
// chrome://tracing.
#include <cstdio>
#include <memory>

#include "core/case_study.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

using namespace iecd;

namespace {

void print_quality(const char* phase, const model::StepMetrics& m,
                   double iae, double final_speed) {
  std::printf("  %-4s rise %6.1f ms  overshoot %5.2f %%  settle %6.1f ms  "
              "ss-err %6.3f  IAE %7.3f  final %7.2f rad/s\n",
              phase, m.rise_time * 1e3, m.overshoot_percent,
              m.settling_time * 1e3, m.steady_state_error, iae, final_speed);
}

}  // namespace

int main(int argc, char** argv) {
  const char* trace_path = argc > 1 ? argv[1] : nullptr;
  core::ServoConfig config;
  config.duration_s = 1.0;
  core::ServoSystem servo(config);

  std::printf("=== 1. Bean Inspector (PE project view) ===\n\n%s\n",
              servo.project().inspector_render().c_str());

  std::printf("=== 2. Expert-system validation ===\n\n");
  const auto diagnostics = servo.validate();
  std::printf("%s\n", diagnostics.to_string().c_str());
  if (diagnostics.has_errors()) return 1;

  std::printf("=== 3. Model-in-the-loop ===\n\n");
  const auto mil = servo.run_mil();
  print_quality("MIL", mil.metrics, mil.iae, mil.speed.last_value());

  std::printf("\n=== 4. PEERT code generation ===\n\n");
  auto build = servo.build_target("servo");
  if (!build.ok()) {
    std::printf("build failed:\n%s", build.diagnostics.to_string().c_str());
    return 1;
  }
  std::printf("%s\n", build.app.report().c_str());

  std::printf("=== 5. Processor-in-the-loop (RS232 @ 460800 baud) ===\n\n");
  std::unique_ptr<trace::TraceRecorder> recorder;
  std::unique_ptr<trace::TraceSession> tracing;
  if (trace_path) {
    recorder = std::make_unique<trace::TraceRecorder>(std::size_t{1} << 20);
    tracing = std::make_unique<trace::TraceSession>(*recorder);
  }
  const auto pil = servo.run_pil({.baud = 460800});
  tracing.reset();
  if (recorder) {
    if (trace::export_chrome_trace_file(*recorder, trace_path)) {
      std::printf("PIL timeline written to %s (%llu events) — open it in "
                  "https://ui.perfetto.dev\n\n",
                  trace_path,
                  static_cast<unsigned long long>(recorder->total_recorded()));
    } else {
      std::printf("cannot write trace to %s\n", trace_path);
    }
  }
  print_quality("PIL", pil.metrics, pil.iae, pil.speed.last_value());
  std::printf("\n%s\n", pil.report.to_string().c_str());

  std::printf("=== 6. Hardware-in-the-loop ===\n\n");
  const auto hil = servo.run_hil();
  print_quality("HIL", hil.metrics, hil.iae, hil.speed.last_value());
  std::printf("\n  controller exec %0.2f us mean / %0.2f us max, "
              "jitter %0.2f us, CPU %0.1f %%\n",
              hil.exec_us_mean, hil.exec_us_max, hil.jitter_us,
              hil.cpu_utilisation * 100.0);
  std::printf("  memory: %u B data, %u B code, stack observed %u B\n",
              hil.memory.data_bytes, hil.memory.code_bytes,
              hil.observed_stack_bytes);
  std::printf("\n  target profile:\n%s\n", hil.profile_report.c_str());

  std::printf("=== 6b. HIL with operator input (event-driven task) ===\n\n");
  core::ServoSystem::HilOptions key_options;
  key_options.key_up_presses = {sim::milliseconds(800)};
  const auto hil_key = servo.run_hil(key_options);
  std::printf("  set-point key pressed at t=0.8 s: the bouncing contact "
              "fired the edge ISR %llu times\n",
              static_cast<unsigned long long>(
                  servo.setpoint_bump().activations()));
  std::printf("  final speed %0.2f rad/s (base set-point %0.1f + keyed "
              "increments)\n\n",
              hil_key.speed.last_value(), config.setpoint);

  const bool consistent =
      mil.metrics.settled && pil.metrics.settled && hil.metrics.settled;
  std::printf("development cycle %s: all three phases %s\n",
              consistent ? "PASSED" : "FAILED",
              consistent ? "track the set-point" : "disagree");
  return consistent ? 0 : 1;
}
