file(REMOVE_RECURSE
  "libiecd_util.a"
)
