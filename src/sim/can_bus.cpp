#include "sim/can_bus.hpp"

#include <stdexcept>

#include "trace/trace.hpp"

namespace iecd::sim {

CanBus::CanBus(World& world, std::uint32_t bitrate_bps, std::string name)
    : world_(world), name_(std::move(name)), bitrate_(bitrate_bps) {
  if (bitrate_bps == 0) throw std::invalid_argument("CanBus: bitrate 0");
  world.attach(*this);
}

void CanBus::reset() {
  for (auto& n : nodes_) n.tx_queue.clear();
  busy_ = false;
  stats_ = Stats{};
}

CanBus::NodeId CanBus::attach_node(std::string node_name, RxCallback on_rx) {
  nodes_.push_back({std::move(node_name), std::move(on_rx), {}});
  return static_cast<NodeId>(nodes_.size() - 1);
}

SimTime CanBus::frame_time(int dlc) const {
  // Standard frame: 47 overhead bits + 8*dlc data bits; worst-case bit
  // stuffing adds ~1 bit per 5 (applied to the stuffable 34+8*dlc bits);
  // plus 3 bits interframe space.
  const double stuffable = 34.0 + 8.0 * dlc;
  const double bits = 47.0 + 8.0 * dlc + stuffable / 5.0 + 3.0;
  return static_cast<SimTime>(bits * 1e9 / bitrate_ + 0.5);
}

bool CanBus::transmit(NodeId node, CanFrame frame) {
  if (frame.dlc() > 8) return false;
  if (node < 0 || node >= static_cast<NodeId>(nodes_.size())) {
    throw std::out_of_range("CanBus: unknown node");
  }
  nodes_[static_cast<std::size_t>(node)].tx_queue.push_back(std::move(frame));
  if (!busy_) try_start();
  return true;
}

std::size_t CanBus::pending() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) n += node.tx_queue.size();
  return n;
}

void CanBus::try_start() {
  if (busy_) return;
  // Arbitration: among the heads of all non-empty queues, the lowest
  // identifier wins (ties: lowest node index, deterministic).
  int winner = -1;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].tx_queue.empty()) continue;
    if (winner < 0 ||
        nodes_[i].tx_queue.front().id <
            nodes_[static_cast<std::size_t>(winner)].tx_queue.front().id) {
      winner = static_cast<int>(i);
    }
  }
  if (winner < 0) return;
  busy_ = true;
  Node& tx = nodes_[static_cast<std::size_t>(winner)];
  const CanFrame frame = tx.tx_queue.front();
  tx.tx_queue.pop_front();
  const SimTime wire = frame_time(frame.dlc());
  stats_.busy_time += wire;
  const SimTime started = world_.now();
  world_.queue().schedule_in(wire, [this, frame, winner, started] {
    ++stats_.frames_delivered;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (static_cast<int>(i) == winner) continue;
      if (nodes_[i].on_rx) nodes_[i].on_rx(frame, world_.now());
    }
    if (auto* tr = trace::recorder()) {
      // One slice per frame on the bus track: arbitration winner's wire
      // occupation, tagged with the arbitrating identifier.
      tr->span_complete("sim", nodes_[static_cast<std::size_t>(winner)].name,
                        name_, started, world_.now(),
                        static_cast<double>(frame.id));
      tr->counter("sim", "pending_frames", name_, world_.now(),
                  static_cast<double>(pending()));
    }
    busy_ = false;
    try_start();
  });
}

}  // namespace iecd::sim
