/// \file dc_motor.hpp
/// The case-study plant: a mechanically commutated DC motor driven by a
/// power transistor switched by PWM (paper Section 7).  Electrical and
/// mechanical dynamics:
///   L di/dt = u - R i - Ke w
///   J dw/dt = Kt i - b w - tau_load
///   dtheta/dt = w
/// Two couplings are provided: a model::Block for MIL simulation inside the
/// plant subsystem, and an event-world component (lazy RK4 integrator over
/// a ZohSignal voltage input) for HIL co-simulation against the simulated
/// PWM peripheral.
#pragma once

#include <functional>

#include "model/block.hpp"
#include "sim/world.hpp"
#include "sim/zoh_signal.hpp"

namespace iecd::plant {

struct DcMotorParams {
  double resistance = 2.0;      ///< R [ohm]
  double inductance = 2.5e-3;   ///< L [H]
  double kt = 0.05;             ///< torque constant [N m / A]
  double ke = 0.05;             ///< back-EMF constant [V s / rad]
  double inertia = 2.0e-5;      ///< J [kg m^2]
  double damping = 1.0e-5;      ///< viscous friction b [N m s / rad]
  double supply_voltage = 24.0; ///< H-bridge rail [V]
};

/// External load torque as a function of time and speed.
using LoadTorque = std::function<double(double t, double omega)>;

/// Shared dynamics: state = {current, omega, theta}.
struct DcMotorDynamics {
  DcMotorParams params;

  void derivatives(const double state[3], double voltage, double load_torque,
                   double dx[3]) const;
};

/// MIL plant block: input 0 = armature voltage [V], outputs 0..2 = speed
/// [rad/s], angle [rad], current [A].
class DcMotorBlock : public model::Block {
 public:
  DcMotorBlock(std::string name, DcMotorParams params);
  const char* type_name() const override { return "DCMotor"; }
  bool has_direct_feedthrough() const override { return false; }

  void set_load(LoadTorque load) { load_ = std::move(load); }

  void initialize(const model::SimContext& ctx) override;
  void output(const model::SimContext& ctx) override;
  int continuous_state_count() const override { return 3; }
  void read_states(std::span<double> into) const override;
  void write_states(std::span<const double> from) override;
  void derivatives(const model::SimContext& ctx,
                   std::span<double> dx) const override;

  const DcMotorParams& params() const { return dynamics_.params; }

 private:
  DcMotorDynamics dynamics_;
  LoadTorque load_;
  double state_[3] = {0, 0, 0};
};

/// HIL plant: lives in the co-simulation world, integrates lazily up to any
/// queried time using the PWM's zero-order-hold average output as the
/// armature voltage (duty * supply, sign from a direction input).
class DcMotorSim : public sim::Component {
 public:
  DcMotorSim(sim::World& world, DcMotorParams params,
             std::string name = "motor");

  const std::string& name() const override { return name_; }
  void reset() override;

  /// Voltage source: a ZohSignal whose value is the *duty ratio* in [0, 1];
  /// armature voltage = duty * supply (times direction()).
  void drive_from_duty(const sim::ZohSignal* duty);
  /// Direction input (+1 / -1), e.g. from an H-bridge direction GPIO.
  void set_direction_source(std::function<double()> dir);
  void set_load(LoadTorque load) { load_ = std::move(load); }

  /// Integrates internally up to \p t (idempotent for t <= last).
  void advance_to(sim::SimTime t);

  double current() const { return state_[0]; }
  double speed() const { return state_[1]; }     ///< [rad/s]
  double angle() const { return state_[2]; }     ///< [rad], unwrapped

  double speed_at(sim::SimTime t);
  double angle_at(sim::SimTime t);

  /// Internal integration step (default 20 us).
  void set_max_step(sim::SimTime h);

 private:
  double voltage_at(sim::SimTime t) const;

  std::string name_;
  DcMotorDynamics dynamics_;
  const sim::ZohSignal* duty_ = nullptr;
  std::function<double()> direction_;
  LoadTorque load_;
  double state_[3] = {0, 0, 0};
  sim::SimTime last_ = 0;
  sim::SimTime max_step_ = sim::microseconds(20);
};

}  // namespace iecd::plant
