// Tests for the paper's extension points: the SPI communication link for
// PIL (future work in the paper's conclusions) and the watchdog (COP)
// safety net in the real-time kernel.
#include <gtest/gtest.h>

#include "beans/autosar.hpp"
#include "beans/watchdog_bean.hpp"
#include "core/case_study.hpp"
#include "mcu/derivative.hpp"
#include "periph/watchdog.hpp"
#include "sim/serial_link.hpp"
#include "sim/world.hpp"

namespace iecd {
namespace {

// ------------------------------------------------------------------- SPI

TEST(SpiLink, SynchronousByteTimeHasNoFraming) {
  const auto spi = sim::SerialConfig::spi(1'000'000);
  EXPECT_EQ(spi.bits_per_byte(), 8);  // no start/stop bits
  EXPECT_EQ(spi.byte_time(), 8000);   // 8 us at 1 MHz
  const auto rs232 = sim::SerialConfig::rs232(1'000'000);
  EXPECT_EQ(rs232.bits_per_byte(), 10);
  EXPECT_GT(rs232.byte_time(), spi.byte_time());
}

TEST(SpiLink, TransfersBytesLikeAsyncChannel) {
  sim::World world;
  sim::SerialLink link(world, sim::SerialConfig::spi(4'000'000), "spi");
  std::vector<std::uint8_t> rx;
  std::vector<sim::SimTime> at;
  link.a_to_b().set_receiver([&](std::uint8_t b, sim::SimTime t) {
    rx.push_back(b);
    at.push_back(t);
  });
  const std::uint8_t msg[] = {1, 2, 3, 4};
  link.a_to_b().transmit(msg, sizeof msg);
  world.run_for(sim::milliseconds(1));
  ASSERT_EQ(rx.size(), 4u);
  EXPECT_EQ(at[0], 2000);  // 8 bits at 4 MHz
  EXPECT_EQ(at[3], 8000);
}

TEST(SpiPil, SpiBeatsRs232AtTheSameBitClock) {
  core::ServoConfig cfg;
  cfg.duration_s = 0.3;

  core::ServoSystem rs232(cfg);
  const auto r = rs232.run_pil({.baud = 115200});

  core::ServoSystem spi(cfg);
  core::ServoSystem::PilRunOptions opts;
  opts.baud = 115200;
  opts.link = pil::PilSession::LinkKind::kSpi;
  const auto s = spi.run_pil(opts);

  // 8 vs 10 bits per byte: 20% less wire time, same controller.
  EXPECT_LT(s.report.comm_time_per_step_us, r.report.comm_time_per_step_us);
  EXPECT_NEAR(s.report.comm_time_per_step_us /
                  r.report.comm_time_per_step_us,
              0.8, 0.02);
}

TEST(SpiPil, FastSpiClosesTheLoopWithMargin) {
  core::ServoConfig cfg;
  cfg.duration_s = 0.4;
  core::ServoSystem servo(cfg);
  core::ServoSystem::PilRunOptions opts;
  opts.baud = 4'000'000;
  opts.link = pil::PilSession::LinkKind::kSpi;
  const auto pil = servo.run_pil(opts);
  EXPECT_EQ(pil.report.deadline_misses, 0u);
  EXPECT_LT(pil.report.comm_overhead_ratio, 0.1);
  EXPECT_TRUE(pil.metrics.settled);
}

// -------------------------------------------------------------- Watchdog

class WatchdogFixture : public ::testing::Test {
 protected:
  sim::World world;
  mcu::Mcu mcu{world, mcu::find_derivative("DSC56F8367")};
};

TEST_F(WatchdogFixture, BitesWhenNotRefreshed) {
  periph::WatchdogPeripheral wdog(mcu, {sim::milliseconds(5)});
  std::vector<sim::SimTime> bites;
  wdog.set_bite_handler([&](sim::SimTime t) { bites.push_back(t); });
  wdog.enable();
  world.run_for(sim::milliseconds(21));
  ASSERT_EQ(bites.size(), 4u);  // 5, 10, 15, 20 ms
  EXPECT_EQ(bites[0], sim::milliseconds(5));
  EXPECT_EQ(bites[3], sim::milliseconds(20));
}

TEST_F(WatchdogFixture, RefreshKeepsItQuiet) {
  periph::WatchdogPeripheral wdog(mcu, {sim::milliseconds(5)});
  wdog.enable();
  // Refresh every 2 ms: never expires.
  std::function<void()> service = [&] {
    wdog.refresh();
    world.queue().schedule_in(sim::milliseconds(2), service);
  };
  world.queue().schedule_in(sim::milliseconds(2), service);
  world.run_for(sim::milliseconds(50));
  EXPECT_EQ(wdog.bites(), 0u);
  EXPECT_GT(wdog.refreshes(), 20u);
}

TEST_F(WatchdogFixture, DisabledWatchdogNeverBites) {
  periph::WatchdogPeripheral wdog(mcu, {sim::milliseconds(5)});
  world.run_for(sim::milliseconds(50));
  EXPECT_EQ(wdog.bites(), 0u);
}

TEST(WatchdogBeanTest, ValidateWarnsOnTightTimeout) {
  beans::WatchdogBean bean("WDog1");
  util::DiagnosticList diags;
  bean.set_property("timeout_s", 0.0005, diags);
  bean.validate(mcu::find_derivative("DSC56F8367"), diags);
  EXPECT_TRUE(diags.has_warnings());
  EXPECT_FALSE(diags.has_errors());
}

TEST(WatchdogBeanTest, AutosarVariantIsWdgModule) {
  beans::WatchdogBean bean("WDog1");
  EXPECT_EQ(beans::autosar::mcal_module_of(bean), "Wdg");
  const auto src = beans::autosar::driver_source(bean);
  EXPECT_EQ(src.header_name, "Wdg.h");
  EXPECT_NE(src.header.find("Wdg_SetTriggerCondition"), std::string::npos);
}

TEST(WatchdogRuntime, HealthyLoopServicesTheCop) {
  core::ServoConfig cfg;
  cfg.duration_s = 0.3;
  core::ServoSystem servo(cfg);
  auto& wdog = servo.project().add<beans::WatchdogBean>("WDog1");
  const auto hil = servo.run_hil();
  EXPECT_TRUE(hil.metrics.settled);
  EXPECT_EQ(wdog.peripheral()->bites(), 0u);
  EXPECT_GT(wdog.peripheral()->refreshes(), 250u);
}

TEST(WatchdogRuntime, OverrunningStepGetsCaught) {
  core::ServoConfig cfg;
  cfg.duration_s = 0.3;
  core::ServoSystem servo(cfg);
  auto& wdog = servo.project().add<beans::WatchdogBean>("WDog1");
  util::DiagnosticList d;
  wdog.set_property("timeout_s", 0.002, d);
  core::ServoSystem::HilOptions opts;
  // ~3.3 ms of busy-wait per 1 ms period: the step overruns chronically
  // and cannot service the 2 ms watchdog window.
  opts.extra_latency_cycles = 200000;
  const auto hil = servo.run_hil(opts);
  EXPECT_GT(wdog.peripheral()->bites(), 10u);
  EXPECT_GT(hil.overruns, 0u);
}

}  // namespace
}  // namespace iecd
