
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/c_emitter.cpp" "src/codegen/CMakeFiles/iecd_codegen.dir/c_emitter.cpp.o" "gcc" "src/codegen/CMakeFiles/iecd_codegen.dir/c_emitter.cpp.o.d"
  "/root/repo/src/codegen/generated_app.cpp" "src/codegen/CMakeFiles/iecd_codegen.dir/generated_app.cpp.o" "gcc" "src/codegen/CMakeFiles/iecd_codegen.dir/generated_app.cpp.o.d"
  "/root/repo/src/codegen/generator.cpp" "src/codegen/CMakeFiles/iecd_codegen.dir/generator.cpp.o" "gcc" "src/codegen/CMakeFiles/iecd_codegen.dir/generator.cpp.o.d"
  "/root/repo/src/codegen/hooks.cpp" "src/codegen/CMakeFiles/iecd_codegen.dir/hooks.cpp.o" "gcc" "src/codegen/CMakeFiles/iecd_codegen.dir/hooks.cpp.o.d"
  "/root/repo/src/codegen/signal_buffer.cpp" "src/codegen/CMakeFiles/iecd_codegen.dir/signal_buffer.cpp.o" "gcc" "src/codegen/CMakeFiles/iecd_codegen.dir/signal_buffer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/iecd_model.dir/DependInfo.cmake"
  "/root/repo/build/src/beans/CMakeFiles/iecd_beans.dir/DependInfo.cmake"
  "/root/repo/build/src/fixpt/CMakeFiles/iecd_fixpt.dir/DependInfo.cmake"
  "/root/repo/build/src/periph/CMakeFiles/iecd_periph.dir/DependInfo.cmake"
  "/root/repo/build/src/mcu/CMakeFiles/iecd_mcu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/iecd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iecd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
