/// \file world.hpp
/// A co-simulation world: one shared event queue plus the set of components
/// living in it (MCU boards, plants, serial links, instrument probes).  The
/// world corresponds to the whole Fig. 6.2 test bench — host PC, simulator
/// PC and development board share simulated time.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace iecd::sim {

/// Anything that needs a reset at world start (peripherals, kernels).
class Component {
 public:
  virtual ~Component() = default;
  /// Component name for diagnostics and reports.
  virtual const std::string& name() const = 0;
  /// Called once before the event loop starts.
  virtual void reset() {}
};

class World {
 public:
  EventQueue& queue() { return queue_; }
  const EventQueue& queue() const { return queue_; }
  SimTime now() const { return queue_.now(); }

  /// Registers a component; the world does NOT take ownership (components
  /// are usually owned by higher-level sessions that outlive the run).
  void attach(Component& component);

  /// Resets all attached components.  Call before the first run.
  void reset_components();

  /// Advances simulated time to \p until, executing due events.  When
  /// tracing is active the window is recorded as one "run_until" span on
  /// the world track (value = events executed).
  std::size_t run_until(SimTime until);

  /// Advances by \p duration from the current time.
  std::size_t run_for(SimTime duration) {
    return run_until(queue_.now() + duration);
  }

  const std::vector<Component*>& components() const { return components_; }

 private:
  EventQueue queue_;
  std::vector<Component*> components_;
};

}  // namespace iecd::sim
