#include "cosim/master.hpp"

#include <algorithm>

namespace iecd::cosim {

sim::SimTime Master::min_horizon() const {
  sim::SimTime t = sim::kNever;
  for (const SharedCanBus* bus : couplings_) t = std::min(t, bus->horizon());
  for (const Component* c : components_) t = std::min(t, c->horizon());
  return t;
}

MasterStats Master::run_until(sim::SimTime end) {
  MasterStats stats;
  sim::SimTime now = 0;
  for (;;) {
    const sim::SimTime target = min_horizon();
    if (target == sim::kNever || target > end) break;
    stats.max_step = std::max(stats.max_step, target - now);
    now = target;
    // Couplings first, and unconditionally: a node transmit during this
    // boundary must land on a bus whose clock already reads `target`, even
    // when the bus itself had nothing scheduled.
    for (SharedCanBus* bus : couplings_) {
      bus->advance_to(target);
      ++stats.component_steps;
    }
    for (Component* c : components_) {
      if (c->horizon() <= target) {
        c->advance_to(target);
        ++stats.component_steps;
      }
    }
    // Flush cross-boundary deliveries (each becomes a destination event at
    // exactly `target`, i.e. a horizon for the next iteration).
    for (SharedCanBus* bus : couplings_) bus->exchange();
    ++stats.negotiations;
  }
  // Drain: bring every local clock to exactly `end` (no events remain at or
  // before it, so this only moves clocks forward).
  for (SharedCanBus* bus : couplings_) bus->advance_to(end);
  for (Component* c : components_) c->advance_to(end);
  for (SharedCanBus* bus : couplings_) bus->exchange();
  for (const SharedCanBus* bus : couplings_)
    stats.events_executed += bus->events_executed();
  for (const Component* c : components_)
    stats.events_executed += c->events_executed();
  stats.end_time = end;
  return stats;
}

}  // namespace iecd::cosim
