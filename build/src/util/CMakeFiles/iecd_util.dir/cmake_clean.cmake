file(REMOVE_RECURSE
  "CMakeFiles/iecd_util.dir/crc16.cpp.o"
  "CMakeFiles/iecd_util.dir/crc16.cpp.o.d"
  "CMakeFiles/iecd_util.dir/csv.cpp.o"
  "CMakeFiles/iecd_util.dir/csv.cpp.o.d"
  "CMakeFiles/iecd_util.dir/diagnostics.cpp.o"
  "CMakeFiles/iecd_util.dir/diagnostics.cpp.o.d"
  "CMakeFiles/iecd_util.dir/statistics.cpp.o"
  "CMakeFiles/iecd_util.dir/statistics.cpp.o.d"
  "CMakeFiles/iecd_util.dir/strings.cpp.o"
  "CMakeFiles/iecd_util.dir/strings.cpp.o.d"
  "CMakeFiles/iecd_util.dir/thread_pool.cpp.o"
  "CMakeFiles/iecd_util.dir/thread_pool.cpp.o.d"
  "libiecd_util.a"
  "libiecd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iecd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
