/// \file master.hpp
/// The co-simulation master: composes independently stepped components
/// (component.hpp) and shared-bus couplings (bus.hpp) and advances them
/// with a step-negotiation loop, FMI-master style:
///
///   1. every component (couplings included) advertises its next event
///      horizon;
///   2. the master picks the minimum t*;
///   3. couplings advance to t* first (so node transmits during this
///      boundary land on a bus clock that already reads t*), then every
///      component whose horizon is due advances to exactly t*;
///   4. couplings exchange: buffered bus deliveries are re-scheduled into
///      their destination components at the exact delivery time.
///
/// Determinism & exactness contract: components execute events only at
/// negotiated boundaries (advance_to(t*) never runs an event later than
/// t*, and anything scheduled beyond t* becomes a future horizon), so the
/// composed system replays the same global event ordering on every run —
/// independent of component registration order for any components that do
/// not interact at identical timestamps, and in a fixed, documented order
/// (couplings first, then components in registration order) when they do.
/// The master is single-threaded per run; campaign/sweep parallelism
/// fans out whole masters, one per run, exactly like every other scenario.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cosim/bus.hpp"
#include "cosim/component.hpp"

namespace iecd::cosim {

struct MasterStats {
  std::uint64_t negotiations = 0;     ///< boundary iterations executed
  std::uint64_t component_steps = 0;  ///< advance_to calls that were due
  std::uint64_t events_executed = 0;  ///< summed over all components
  sim::SimTime end_time = 0;          ///< final negotiated time
  /// Largest single negotiated step (diagnostic for the horizon quality).
  sim::SimTime max_step = 0;
};

class Master {
 public:
  /// Registers a coupling (advanced first each boundary, exchanged last).
  /// Non-owning, like sim::World::attach — topology builders own parts.
  void add_coupling(SharedCanBus& bus) { couplings_.push_back(&bus); }

  /// Registers an ordinary component.  Registration order is the (only)
  /// tie-break for same-boundary execution; keep it fixed per topology.
  void add(Component& component) { components_.push_back(&component); }

  const std::vector<Component*>& components() const { return components_; }
  const std::vector<SharedCanBus*>& couplings() const { return couplings_; }

  /// Runs the negotiation loop until every horizon lies beyond \p end,
  /// then advances everything to exactly \p end.
  MasterStats run_until(sim::SimTime end);

 private:
  sim::SimTime min_horizon() const;

  std::vector<SharedCanBus*> couplings_;
  std::vector<Component*> components_;
};

}  // namespace iecd::cosim
