file(REMOVE_RECURSE
  "CMakeFiles/iecd_pil.dir/frame.cpp.o"
  "CMakeFiles/iecd_pil.dir/frame.cpp.o.d"
  "CMakeFiles/iecd_pil.dir/host_endpoint.cpp.o"
  "CMakeFiles/iecd_pil.dir/host_endpoint.cpp.o.d"
  "CMakeFiles/iecd_pil.dir/pil_session.cpp.o"
  "CMakeFiles/iecd_pil.dir/pil_session.cpp.o.d"
  "CMakeFiles/iecd_pil.dir/target_agent.cpp.o"
  "CMakeFiles/iecd_pil.dir/target_agent.cpp.o.d"
  "libiecd_pil.a"
  "libiecd_pil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iecd_pil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
