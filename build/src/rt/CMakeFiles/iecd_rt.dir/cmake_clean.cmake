file(REMOVE_RECURSE
  "CMakeFiles/iecd_rt.dir/profiler.cpp.o"
  "CMakeFiles/iecd_rt.dir/profiler.cpp.o.d"
  "CMakeFiles/iecd_rt.dir/runtime.cpp.o"
  "CMakeFiles/iecd_rt.dir/runtime.cpp.o.d"
  "CMakeFiles/iecd_rt.dir/schedulability.cpp.o"
  "CMakeFiles/iecd_rt.dir/schedulability.cpp.o.d"
  "libiecd_rt.a"
  "libiecd_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iecd_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
