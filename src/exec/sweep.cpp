#include "exec/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/thread_pool.hpp"

namespace iecd::exec {

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {}

SweepRunner::Result SweepRunner::run(std::size_t runs,
                                     const Scenario& scenario) const {
  Result result;
  result.runs = runs;
  std::size_t threads = options_.threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, std::max<std::size_t>(1, runs));
  result.threads_used = threads;
  if (runs == 0) return result;

  const auto start = std::chrono::steady_clock::now();
  // Registries are preallocated so worker threads touch disjoint elements;
  // no locking, no allocation races, no dependence on completion order.
  result.per_run.resize(runs);
  if (threads == 1) {
    for (std::size_t i = 0; i < runs; ++i) scenario(i, result.per_run[i]);
  } else {
    util::ThreadPool pool(threads);
    pool.parallel_for(
        runs, [&](std::size_t i) { scenario(i, result.per_run[i]); });
  }
  // Deterministic fold: index order, independent of thread interleaving.
  for (const auto& registry : result.per_run) {
    result.merged.merge(registry);
  }
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return result;
}

SweepRunner::Result SweepRunner::run(std::size_t runs,
                                     const BatchScenario& scenario) const {
  Result result;
  result.runs = runs;
  const std::size_t batch = std::max<std::size_t>(1, options_.batch);
  const std::size_t groups = runs == 0 ? 0 : (runs + batch - 1) / batch;
  std::size_t threads = options_.threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, std::max<std::size_t>(1, groups));
  result.threads_used = threads;
  if (runs == 0) return result;

  const auto start = std::chrono::steady_clock::now();
  result.per_run.resize(runs);
  // Group g covers run indices [g*batch, min(runs, (g+1)*batch)): the
  // scenario sees a subspan of the preallocated per-run registries, so the
  // batched execution shares the scalar path's isolation and the merge
  // below stays the untouched index-order fold.
  auto run_group = [&](std::size_t g) {
    const std::size_t first = g * batch;
    const std::size_t count = std::min(runs - first, batch);
    scenario(first,
             std::span<trace::MetricsRegistry>(result.per_run)
                 .subspan(first, count));
  };
  if (threads == 1) {
    for (std::size_t g = 0; g < groups; ++g) run_group(g);
  } else {
    util::ThreadPool pool(threads);
    pool.parallel_for(groups, run_group);
  }
  for (const auto& registry : result.per_run) {
    result.merged.merge(registry);
  }
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return result;
}

SweepRunner::Result SweepRunner::run(
    std::size_t runs, const BatchHealthScenario& scenario) const {
  Result result;
  result.runs = runs;
  const std::size_t batch = std::max<std::size_t>(1, options_.batch);
  const std::size_t groups = runs == 0 ? 0 : (runs + batch - 1) / batch;
  std::size_t threads = options_.threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, std::max<std::size_t>(1, groups));
  result.threads_used = threads;
  if (runs == 0) return result;

  const auto start = std::chrono::steady_clock::now();
  result.per_run.resize(runs);
  result.per_run_health.resize(runs);
  auto run_group = [&](std::size_t g) {
    const std::size_t first = g * batch;
    const std::size_t count = std::min(runs - first, batch);
    scenario(first,
             std::span<trace::MetricsRegistry>(result.per_run)
                 .subspan(first, count),
             std::span<obs::HealthReport>(result.per_run_health)
                 .subspan(first, count));
  };
  if (threads == 1) {
    for (std::size_t g = 0; g < groups; ++g) run_group(g);
  } else {
    util::ThreadPool pool(threads);
    pool.parallel_for(groups, run_group);
  }
  result.health.runs = 0;
  for (std::size_t i = 0; i < runs; ++i) {
    result.merged.merge(result.per_run[i]);
    result.health.merge(result.per_run_health[i]);
  }
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return result;
}

SweepRunner::Result SweepRunner::run(std::size_t runs,
                                     const HealthScenario& scenario) const {
  Result result;
  result.runs = runs;
  std::size_t threads = options_.threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, std::max<std::size_t>(1, runs));
  result.threads_used = threads;
  if (runs == 0) return result;

  const auto start = std::chrono::steady_clock::now();
  result.per_run.resize(runs);
  result.per_run_health.resize(runs);
  if (threads == 1) {
    for (std::size_t i = 0; i < runs; ++i) {
      scenario(i, result.per_run[i], result.per_run_health[i]);
    }
  } else {
    util::ThreadPool pool(threads);
    pool.parallel_for(runs, [&](std::size_t i) {
      scenario(i, result.per_run[i], result.per_run_health[i]);
    });
  }
  // Index-order fold for both the metrics and the health reports: the
  // merged percentiles come from bin-wise histogram adds, so they are
  // identical for any thread count.
  result.health.runs = 0;
  for (std::size_t i = 0; i < runs; ++i) {
    result.merged.merge(result.per_run[i]);
    result.health.merge(result.per_run_health[i]);
  }
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return result;
}

}  // namespace iecd::exec
