file(REMOVE_RECURSE
  "CMakeFiles/port_to_another_mcu.dir/port_to_another_mcu.cpp.o"
  "CMakeFiles/port_to_another_mcu.dir/port_to_another_mcu.cpp.o.d"
  "port_to_another_mcu"
  "port_to_another_mcu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/port_to_another_mcu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
