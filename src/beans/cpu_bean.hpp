/// \file cpu_bean.hpp
/// The CPU bean: selects the MCU derivative the whole project targets.
/// Retargeting an application = changing this bean's "derivative" property
/// and re-running validation — the paper's headline portability mechanism.
#pragma once

#include "beans/bean.hpp"

namespace iecd::beans {

class CpuBean : public Bean {
 public:
  explicit CpuBean(std::string name = "CPU",
                   const std::string& derivative = mcu::kDefaultDerivative);

  /// Currently selected derivative spec.
  const mcu::DerivativeSpec& derivative() const;

  std::vector<MethodSpec> methods() const override;
  std::vector<EventSpec> events() const override;
  ResourceDemand demand() const override;
  void validate(const mcu::DerivativeSpec& cpu,
                util::DiagnosticList& diagnostics) override;
  void bind(BindContext& ctx) override;
  DriverSource driver_source() const override;
};

}  // namespace iecd::beans
