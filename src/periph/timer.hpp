/// \file timer.hpp
/// General-purpose timer channel generating the periodic interrupt that
/// drives the generated model code (the paper: "periodic parts of the model
/// code are executed non-preemptively in a timer interrupt").  Period =
/// prescaler * modulo / core clock.  An optional deterministic jitter hook
/// lets experiments (E6) perturb activation times the way a loaded bus or
/// a low-resolution clock would.
#pragma once

#include <cstdint>
#include <functional>

#include "periph/peripheral.hpp"

namespace iecd::periph {

struct TimerConfig {
  std::uint32_t prescaler = 1;
  std::uint32_t modulo = 60000;
  mcu::IrqVector overflow_vector = -1;
};

class TimerPeripheral : public Peripheral {
 public:
  TimerPeripheral(mcu::Mcu& mcu, TimerConfig config,
                  std::string name = "timer");

  const TimerConfig& config() const { return config_; }

  /// Nominal activation period.
  sim::SimTime period() const;

  void start();
  void stop();
  bool running() const { return running_; }

  /// Deterministic jitter injection: called before each activation with the
  /// tick index; the returned offset (ns, may be negative but must keep the
  /// activation after the previous one) shifts that activation.
  void set_jitter_hook(std::function<sim::SimTime(std::uint64_t)> hook);

  std::uint64_t ticks() const { return ticks_; }

  void reset() override;

 private:
  void schedule_next();
  void arm_recurring();

  TimerConfig config_;
  bool running_ = false;
  std::uint64_t ticks_ = 0;
  sim::SimTime epoch_ = 0;
  std::function<sim::SimTime(std::uint64_t)> jitter_;
  sim::EventId event_ = 0;
  bool scheduled_ = false;
};

}  // namespace iecd::periph
