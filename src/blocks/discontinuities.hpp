/// \file discontinuities.hpp
/// Nonlinear static/dynamic blocks: saturation, quantizer, relay, rate
/// limiter, dead zone.
#pragma once

#include "model/block.hpp"

namespace iecd::blocks {

using model::Block;
using model::EmitContext;
using model::SimContext;

class SaturationBlock : public Block {
 public:
  SaturationBlock(std::string name, double lower, double upper);
  const char* type_name() const override { return "Saturation"; }
  void output(const SimContext& ctx) override;
  std::string emit_c(const EmitContext& ctx) const override;

 private:
  double lower_, upper_;
};

class QuantizerBlock : public Block {
 public:
  QuantizerBlock(std::string name, double interval);
  const char* type_name() const override { return "Quantizer"; }
  void output(const SimContext& ctx) override;

 private:
  double interval_;
};

/// Hysteresis relay: switches on above \p on_threshold, off below
/// \p off_threshold.
class RelayBlock : public Block {
 public:
  RelayBlock(std::string name, double on_threshold, double off_threshold,
             double on_value = 1.0, double off_value = 0.0);
  const char* type_name() const override { return "Relay"; }
  void initialize(const SimContext& ctx) override;
  void output(const SimContext& ctx) override;
  std::uint32_t state_bytes() const override { return 1; }

 private:
  double on_threshold_, off_threshold_, on_value_, off_value_;
  bool on_ = false;
};

class RateLimiterBlock : public Block {
 public:
  RateLimiterBlock(std::string name, double rising_per_s,
                   double falling_per_s);
  const char* type_name() const override { return "RateLimiter"; }
  void initialize(const SimContext& ctx) override;
  void output(const SimContext& ctx) override;
  void update(const SimContext& ctx) override;
  std::uint32_t state_bytes() const override { return 4; }

 private:
  double rising_, falling_;
  double prev_ = 0.0;
  double held_ = 0.0;
};

class DeadZoneBlock : public Block {
 public:
  DeadZoneBlock(std::string name, double start, double end);
  const char* type_name() const override { return "DeadZone"; }
  void output(const SimContext& ctx) override;

 private:
  double start_, end_;
};

}  // namespace iecd::blocks
