/// \file quad_dec_bean.hpp
/// Quadrature decoder bean — the IRC encoder feedback path of the servo
/// case study.  Not every derivative has a decoder module; validation
/// catches a port to a part without one *before* any code is generated.
#pragma once

#include <memory>

#include "beans/bean.hpp"
#include "periph/quadrature_decoder.hpp"

namespace iecd::beans {

class QuadDecBean : public Bean {
 public:
  explicit QuadDecBean(std::string name = "QD1");

  std::vector<MethodSpec> methods() const override;
  std::vector<EventSpec> events() const override;
  ResourceDemand demand() const override;
  void validate(const mcu::DerivativeSpec& cpu,
                util::DiagnosticList& diagnostics) override;
  void bind(BindContext& ctx) override;
  DriverSource driver_source() const override;

  // --- Runtime methods ---
  std::int16_t GetPosition() const;
  std::int64_t GetExtendedPosition() const;
  void ResetPosition();

  /// Encoder counts per mechanical revolution (lines * 4).
  int counts_per_rev() const {
    return static_cast<int>(properties().get_int("encoder_lines")) * 4;
  }

  periph::QuadDecPeripheral* peripheral() { return qdec_.get(); }

 private:
  std::unique_ptr<periph::QuadDecPeripheral> qdec_;
};

}  // namespace iecd::beans
