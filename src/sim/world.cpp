#include "sim/world.hpp"

#include <algorithm>
#include <stdexcept>

#include "trace/trace.hpp"

namespace iecd::sim {

std::size_t World::run_until(SimTime until) {
  trace::TraceRecorder* tr = trace::recorder();
  if (!tr) return queue_.run_until(until);
  const SimTime begin = queue_.now();
  const std::size_t executed = queue_.run_until(until);
  tr->span_complete("sim", "run_until", "world", begin, queue_.now(),
                    static_cast<double>(executed));
  return executed;
}

void World::attach(Component& component) {
  if (std::find(components_.begin(), components_.end(), &component) !=
      components_.end()) {
    throw std::logic_error("World: component attached twice: " +
                           component.name());
  }
  components_.push_back(&component);
}

void World::reset_components() {
  for (Component* c : components_) c->reset();
}

}  // namespace iecd::sim
