/// \file interrupt_controller.hpp
/// Vectored interrupt controller with fixed priorities.  Matches the
/// execution model the paper's target generates: periodic model code runs
/// non-preemptively inside a timer interrupt, asynchronous function-call
/// subsystems run inside peripheral interrupt service routines, and nothing
/// preempts a running ISR (interrupts stay pending until the CPU retires
/// the current one).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace iecd::mcu {

using IrqVector = int;

/// Handler contract: the body runs logically at ISR start (samples inputs,
/// computes) and returns its cost in core cycles; the optional commit runs
/// at ISR end (applies outputs), modelling the sample-to-actuation delay.
struct IsrHandler {
  std::function<std::uint64_t()> body;
  std::function<void()> commit;
  std::uint32_t stack_bytes = 64;
  std::string name;
};

class InterruptController {
 public:
  /// Registers vector \p vec with \p priority (lower value = served first).
  /// Vectors must be registered before they can be raised.
  void register_vector(IrqVector vec, int priority, IsrHandler handler);

  bool is_registered(IrqVector vec) const;
  void set_enabled(IrqVector vec, bool enabled);
  bool enabled(IrqVector vec) const;

  /// Marks the vector pending at \p now.  Returns false if masked/unknown
  /// (the event is lost, as on real silicon without a latch).
  bool raise(IrqVector vec, sim::SimTime now);

  /// True if any enabled vector is pending.
  bool any_pending() const;

  /// Pops the highest-priority pending enabled vector; returns -1 if none.
  IrqVector acknowledge();

  /// Access to the handler of a vector (valid after registration).
  const IsrHandler& handler(IrqVector vec) const;

  /// Raise timestamp of the last acknowledge()d request (for response-time
  /// profiling).
  sim::SimTime last_raise_time() const { return last_raise_time_; }

  /// Pending requests lost because the vector was raised while already
  /// pending (overruns: the ISR could not keep up).
  std::uint64_t overruns() const { return overruns_; }

  void reset();

 private:
  struct Line {
    IrqVector vec = -1;
    int priority = 0;
    bool enabled = true;
    bool pending = false;
    sim::SimTime raise_time = 0;
    IsrHandler handler;
  };

  Line* find(IrqVector vec);
  const Line* find(IrqVector vec) const;

  std::vector<Line> lines_;
  sim::SimTime last_raise_time_ = 0;
  std::uint64_t overruns_ = 0;
};

}  // namespace iecd::mcu
