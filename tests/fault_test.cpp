#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "beans/serial_bean.hpp"
#include "blocks/math_blocks.hpp"
#include "codegen/generator.hpp"
#include "core/case_study.hpp"
#include "core/model_sync.hpp"
#include "fault/campaign.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "fault/rng.hpp"
#include "fault/sites.hpp"
#include "mcu/derivative.hpp"
#include "mcu/mcu.hpp"
#include "obs/monitor.hpp"
#include "periph/adc.hpp"
#include "pil/pil_session.hpp"
#include "rt/runtime.hpp"
#include "sim/can_bus.hpp"
#include "sim/serial_link.hpp"
#include "sim/world.hpp"

namespace iecd::fault {
namespace {

// ---------------------------------------------------------------- RNG core

TEST(FaultRng, SplitMixAndXoshiroAreDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
  Xoshiro256ss x(7), y(7);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(x.next(), y.next());
  const double u = Xoshiro256ss(7).uniform01();
  EXPECT_GE(u, 0.0);
  EXPECT_LT(u, 1.0);
}

TEST(FaultRng, SiteSeedDependsOnCampaignSeedAndName) {
  EXPECT_EQ(site_seed(1, "serial.rs232"), site_seed(1, "serial.rs232"));
  EXPECT_NE(site_seed(1, "serial.rs232"), site_seed(2, "serial.rs232"));
  EXPECT_NE(site_seed(1, "serial.rs232"), site_seed(1, "can.can"));
}

TEST(FaultInjector, SiteStreamIndependentOfCreationOrder) {
  FaultInjector fwd(99, FaultPlan{});
  FaultInjector rev(99, FaultPlan{});
  auto& fwd_serial = fwd.site("serial.rs232");
  auto& fwd_can = fwd.site("can.can");
  auto& rev_can = rev.site("can.can");      // opposite creation order
  auto& rev_serial = rev.site("serial.rs232");
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(fwd_serial.next_u64(), rev_serial.next_u64());
    EXPECT_EQ(fwd_can.next_u64(), rev_can.next_u64());
  }
}

TEST(FaultInjector, ZeroRateSiteIsStreamSilent) {
  // A site that only ever sees rate-0 opportunities draws nothing: its
  // stream is exactly where a fresh site's stream starts.
  FaultInjector quiet(5, FaultPlan{});
  FaultInjector fresh(5, FaultPlan{});
  auto& q = quiet.site("mcu.irq");
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(q.fire(0.0));
  EXPECT_EQ(q.opportunities(), 0u);
  EXPECT_EQ(q.injected(), 0u);
  auto& f = fresh.site("mcu.irq");
  for (int i = 0; i < 16; ++i) EXPECT_EQ(q.next_u64(), f.next_u64());
}

TEST(FaultInjector, SameSeedSameSiteReplaysIdenticalFaultSequence) {
  // The (campaign seed, site) pair fully determines the fault sequence —
  // the property that lets one fault be replayed in isolation.
  const std::uint64_t seed = CampaignRunner::run_seed(31, 3);
  std::vector<int> first, second;
  for (std::vector<int>* out : {&first, &second}) {
    FaultInjector injector(seed, FaultPlan{});
    auto& site = injector.site("serial.rs232.a_to_b");
    for (int i = 0; i < 4096; ++i) {
      if (site.fire(0.01)) out->push_back(i);
    }
  }
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(FaultPlan, EmptyAndScaled) {
  EXPECT_TRUE(FaultPlan{}.empty());
  EXPECT_FALSE(FaultPlan::defaults().empty());
  EXPECT_TRUE(FaultPlan::defaults().scaled(0.0).empty());
  const FaultPlan doubled = FaultPlan::defaults().scaled(2.0);
  EXPECT_DOUBLE_EQ(doubled.serial_corrupt_rate,
                   2.0 * FaultPlan::defaults().serial_corrupt_rate);
  EXPECT_EQ(doubled.irq_spike_cycles, FaultPlan::defaults().irq_spike_cycles);
}

TEST(FaultCampaignSeeding, RunSeedsAreDistinctAndStable) {
  EXPECT_EQ(CampaignRunner::run_seed(1, 0), CampaignRunner::run_seed(1, 0));
  EXPECT_NE(CampaignRunner::run_seed(1, 0), CampaignRunner::run_seed(1, 1));
  EXPECT_NE(CampaignRunner::run_seed(1, 0), CampaignRunner::run_seed(2, 0));
}

// ------------------------------------------------------------- link sites

TEST(FaultSites, SerialDropRateOneLosesEveryByte) {
  sim::World world;
  sim::SerialLink link(world, sim::SerialConfig::rs232(115200), "rs232");
  std::size_t received = 0;
  link.a_to_b().set_receiver(
      [&](std::uint8_t, sim::SimTime) { ++received; });
  FaultPlan plan;
  plan.serial_drop_rate = 1.0;
  FaultInjector injector(1, plan);
  wire_serial_channel(injector, link.a_to_b());
  for (int i = 0; i < 50; ++i) {
    link.a_to_b().transmit(static_cast<std::uint8_t>(i));
  }
  world.run_for(sim::milliseconds(100));
  EXPECT_EQ(received, 0u);
  EXPECT_EQ(link.a_to_b().bytes_dropped(), 50u);
  const auto* site = injector.find_site("serial.rs232.a2b");
  ASSERT_NE(site, nullptr);
  EXPECT_EQ(site->injected(), 50u);
  EXPECT_EQ(site->opportunities(), 50u);
}

TEST(FaultSites, SerialCorruptionFlipsExactlyOneBit) {
  sim::World world;
  sim::SerialLink link(world, sim::SerialConfig::rs232(115200), "rs232");
  std::vector<std::uint8_t> received;
  link.a_to_b().set_receiver(
      [&](std::uint8_t b, sim::SimTime) { received.push_back(b); });
  FaultPlan plan;
  plan.serial_corrupt_rate = 1.0;
  FaultInjector injector(1, plan);
  wire_serial_channel(injector, link.a_to_b());
  for (int i = 0; i < 32; ++i) link.a_to_b().transmit(0x55);
  world.run_for(sim::milliseconds(100));
  ASSERT_EQ(received.size(), 32u);
  for (std::uint8_t b : received) {
    const std::uint8_t diff = b ^ 0x55;
    EXPECT_NE(diff, 0);                      // the byte really changed
    EXPECT_EQ(diff & (diff - 1), 0) << int(diff);  // by a single bit
  }
  EXPECT_EQ(link.a_to_b().bytes_corrupted(), 32u);
}

TEST(FaultSites, CanDropRateOneLosesEveryFrame) {
  sim::World world;
  sim::CanBus bus(world, 500000, "can");
  std::size_t received = 0;
  bus.attach_node("rx", [&](const sim::CanFrame&, sim::SimTime) {
    ++received;
  });
  const auto tx = bus.attach_node("tx", nullptr);
  FaultPlan plan;
  plan.can_drop_rate = 1.0;
  FaultInjector injector(1, plan);
  wire_can_bus(injector, bus);
  for (std::uint32_t i = 0; i < 20; ++i) {
    bus.transmit(tx, {0x100 + i, {1, 2, 3}});
  }
  world.run_for(sim::milliseconds(100));
  EXPECT_EQ(received, 0u);
  EXPECT_EQ(bus.stats().frames_dropped, 20u);
  EXPECT_EQ(bus.stats().frames_delivered, 0u);
}

TEST(FaultSites, CanDuplicationDeliversExtraCopies) {
  sim::World world;
  sim::CanBus bus(world, 500000, "can");
  std::size_t received = 0;
  bus.attach_node("rx", [&](const sim::CanFrame&, sim::SimTime) {
    ++received;
  });
  const auto tx = bus.attach_node("tx", nullptr);
  FaultPlan plan;
  plan.can_dup_rate = 0.4;
  FaultInjector injector(3, plan);
  wire_can_bus(injector, bus);
  for (std::uint32_t i = 0; i < 40; ++i) {
    bus.transmit(tx, {0x100 + i, {1, 2}});
  }
  world.run_for(sim::milliseconds(500));
  EXPECT_GT(bus.stats().frames_duplicated, 0u);
  // Every original and every duplicated copy reaches the receiver.
  EXPECT_EQ(received, 40u + bus.stats().frames_duplicated);
}

// ----------------------------------------------------------- sensor sites

TEST(FaultSites, AdcStuckAtRepeatsLastConversion) {
  sim::World world;
  mcu::Mcu mcu(world, mcu::find_derivative("DSC56F8367"));
  periph::AdcPeripheral adc(mcu, periph::AdcConfig{}, "adc");
  double volts = 0.5;
  adc.set_analog_source(0, [&](sim::SimTime) { return volts; });
  FaultPlan plan;
  plan.adc_stuck_rate = 1.0;
  FaultInjector injector(1, plan);
  wire_adc(injector, adc);
  const std::uint32_t first = adc.sample_now(0);  // latches, nothing to hold
  volts = 2.5;  // the source moves, the stuck converter must not
  const std::uint32_t second = adc.sample_now(0);
  EXPECT_EQ(second, first);
  EXPECT_NE(adc.volts_to_code(2.5), first);
}

TEST(FaultSites, AdcNoiseStaysWithinConfiguredLsb) {
  sim::World world;
  mcu::Mcu mcu(world, mcu::find_derivative("DSC56F8367"));
  periph::AdcPeripheral adc(mcu, periph::AdcConfig{}, "adc");
  adc.set_analog_source(0, [](sim::SimTime) { return 1.65; });
  FaultPlan plan;
  plan.adc_noise_rate = 1.0;
  plan.adc_noise_lsb = 2;
  FaultInjector injector(1, plan);
  wire_adc(injector, adc);
  const std::uint32_t clean = adc.volts_to_code(1.65);
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t code = adc.sample_now(0);
    const std::int64_t diff =
        static_cast<std::int64_t>(code) - static_cast<std::int64_t>(clean);
    EXPECT_GE(diff, -2);
    EXPECT_LE(diff, 2);
    EXPECT_NE(diff, 0);  // rate 1.0: every conversion is perturbed
  }
}

TEST(FaultSites, TorquePulseScheduleIsPureAndReplayable) {
  FaultPlan plan;
  plan.torque_pulse_rate_hz = 20.0;
  plan.torque_pulse_nm = 0.01;
  plan.torque_pulse_s = 0.005;
  FaultInjector a(11, plan);
  FaultInjector b(11, plan);
  plant::LoadTorque la = make_load_torque(a, 1.0);
  plant::LoadTorque lb = make_load_torque(b, 1.0);
  ASSERT_TRUE(la);
  ASSERT_TRUE(lb);
  const auto* site = a.find_site("plant.torque");
  ASSERT_NE(site, nullptr);
  EXPECT_GT(site->injected(), 0u);
  bool saw_pulse = false;
  for (int i = 0; i < 2000; ++i) {
    const double t = i * 5e-4;
    const double torque = la(t, 0.0);
    EXPECT_DOUBLE_EQ(torque, lb(t, 0.0));      // same seed -> same schedule
    EXPECT_DOUBLE_EQ(torque, la(t, 0.0));      // pure in t (re-evaluation)
    if (torque != 0.0) {
      saw_pulse = true;
      EXPECT_DOUBLE_EQ(std::abs(torque), 0.01);
    }
  }
  EXPECT_TRUE(saw_pulse);
}

TEST(FaultSites, EmptyPlanWiresNoSites) {
  sim::World world;
  sim::SerialLink link(world, sim::SerialConfig::rs232(115200), "rs232");
  sim::CanBus bus(world, 500000, "can");
  mcu::Mcu mcu(world, mcu::find_derivative("DSC56F8367"));
  periph::AdcPeripheral adc(mcu, periph::AdcConfig{}, "adc");
  FaultInjector injector(1, FaultPlan{});
  wire_serial_channel(injector, link.a_to_b());
  wire_can_bus(injector, bus);
  wire_cpu(injector, mcu.cpu());
  wire_adc(injector, adc);
  EXPECT_TRUE(injector.sites().empty());
  EXPECT_FALSE(make_load_torque(injector, 1.0));
  trace::MetricsRegistry metrics;
  injector.export_metrics(metrics);
  EXPECT_EQ(metrics.report(), trace::MetricsRegistry().report());
}

// ------------------------------------------------------------ PIL recovery

/// Full PIL rig around a trivial controller (out = 0.5 * in through the
/// QuadDec/PWM PE blocks), mirroring the pil_test rig, on a fast link so
/// the round trip fits well inside the exchange interval and recovery
/// timeouts are meaningful.
struct RecoveryRig {
  sim::World world;
  mcu::Mcu mcu{world, mcu::find_derivative("DSC56F8367")};
  model::Model top{"top"};
  model::Subsystem* sub;
  beans::BeanProject project{"p"};
  std::unique_ptr<core::ModelSync> sync;
  codegen::SignalBuffer buffer;
  codegen::GeneratedApplication app;
  std::unique_ptr<rt::Runtime> runtime;
  beans::SerialBean* serial = nullptr;

  RecoveryRig() {
    sub = &top.add<model::Subsystem>("ctrl", 1, 1);
    sub->set_sample_time(model::SampleTime::discrete(0.001));
    sync = std::make_unique<core::ModelSync>(sub->inner(), project);
    auto& in = sub->inner().add<model::Inport>("in");
    auto& out = sub->inner().add<model::Outport>("out");
    sync->add_timer_int("TI1");
    auto& qd = sync->add_quad_dec("QD1");
    auto& pwm = sync->add_pwm("PWM1");
    serial = &project.add<beans::SerialBean>("AS1");
    auto& gain = sub->inner().add<blocks::GainBlock>("g", 0.5 / 32768.0);
    sub->inner().connect(in, 0, qd, 0);
    sub->inner().connect(qd, 0, gain, 0);
    sub->inner().connect(gain, 0, pwm, 0);
    sub->inner().connect(pwm, 0, out, 0);
    sub->bind_ports({&in}, {&out});
    project.validate();
    codegen::GeneratorOptions opts;
    opts.pil = true;
    opts.pil_buffer = &buffer;
    codegen::Generator gen;
    app = gen.generate(*sub, project, opts);
    project.validate();
    project.bind(mcu);
    runtime = std::make_unique<rt::Runtime>(mcu, project, app);
  }
};

TEST(PilRecoveryTest, RetransmitRecoversFromDroppedResponse) {
  RecoveryRig rig;
  pil::PilSession::Options opts;
  opts.duration_s = 0.05;
  opts.baud = 1000000;
  opts.recovery.enabled = true;
  opts.recovery.max_retransmits = 5;
  pil::PilSession session(rig.world, *rig.runtime, *rig.serial, rig.buffer,
                          opts);
  // Kill every board->host byte inside an initial window (the host takes
  // response bursts at burst completion, so the window spans the first two
  // exchange rounds): the responses are lost, the host times out and
  // retransmits the SAME seq, the board answers from its duplicate cache,
  // and once the window passes an exchange completes on a retransmitted
  // copy -> recovered exchange, nothing abandoned.
  session.link().b_to_a().set_fault_hook(
      [&](std::uint8_t) {
        sim::SerialChannel::ByteFault fault;
        if (rig.world.now() < sim::microseconds(2500)) {
          fault.action = sim::SerialChannel::ByteFaultAction::kDrop;
        }
        return fault;
      });
  session.set_plant([] { return std::vector<double>{1.0}; },
                    [](const std::vector<double>&) {}, [](double) {});
  const pil::PilReport report = session.run();
  EXPECT_GE(session.host().retransmits(), 1u);
  EXPECT_GE(session.host().recovered_exchanges(), 1u);
  EXPECT_EQ(session.host().exchanges_abandoned(), 0u);
  // The board saw at least one retransmitted seq and did NOT re-step the
  // controller for it.
  EXPECT_GE(session.agent().duplicate_frames(), 1u);
  EXPECT_GT(session.host().recovery_us().count(), 0u);
  // The run settles back to normal operation after the fault window.
  EXPECT_GT(report.exchanges, 40u);
  // Metrics mirror the recovery counters.
  const auto* retransmits = report.metrics.find_counter("pil.retransmits");
  ASSERT_NE(retransmits, nullptr);
  EXPECT_EQ(retransmits->value, session.host().retransmits());
  const auto* duplicates = report.metrics.find_counter("pil.duplicate_frames");
  ASSERT_NE(duplicates, nullptr);
  EXPECT_EQ(duplicates->value, session.agent().duplicate_frames());
}

TEST(PilRecoveryTest, PersistentLossAbandonsAndHoldsLastOutput) {
  RecoveryRig rig;
  pil::PilSession::Options opts;
  opts.duration_s = 0.02;
  opts.baud = 1000000;
  opts.recovery.enabled = true;
  opts.recovery.timeout = sim::microseconds(125);
  opts.recovery.max_retransmits = 2;
  pil::PilSession session(rig.world, *rig.runtime, *rig.serial, rig.buffer,
                          opts);
  // The board's responses never arrive: every exchange must exhaust its
  // retransmit budget and be abandoned, holding the last (initial) output.
  session.link().b_to_a().set_fault_hook([](std::uint8_t) {
    return sim::SerialChannel::ByteFault{
        sim::SerialChannel::ByteFaultAction::kDrop, 0};
  });
  std::size_t applied = 0;
  session.set_plant([] { return std::vector<double>{1.0}; },
                    [&](const std::vector<double>&) { ++applied; },
                    [](double) {});
  const pil::PilReport report = session.run();
  EXPECT_GT(report.exchanges, 10u);
  EXPECT_GE(session.host().exchanges_abandoned(), 10u);
  EXPECT_EQ(session.host().recovered_exchanges(), 0u);
  EXPECT_EQ(applied, 0u);  // hold-last-output: nothing ever applied
  const auto* abandoned =
      report.metrics.find_counter("pil.exchanges_abandoned");
  ASSERT_NE(abandoned, nullptr);
  EXPECT_EQ(abandoned->value, session.host().exchanges_abandoned());
}

TEST(PilRecoveryTest, DisabledRecoveryKeepsLegacyCountersZero) {
  RecoveryRig rig;
  pil::PilSession::Options opts;
  opts.duration_s = 0.05;
  opts.baud = 1000000;
  pil::PilSession session(rig.world, *rig.runtime, *rig.serial, rig.buffer,
                          opts);
  session.set_plant([] { return std::vector<double>{1.0}; },
                    [](const std::vector<double>&) {}, [](double) {});
  (void)session.run();
  EXPECT_EQ(session.host().retransmits(), 0u);
  EXPECT_EQ(session.host().recovered_exchanges(), 0u);
  EXPECT_EQ(session.host().exchanges_abandoned(), 0u);
  EXPECT_EQ(session.agent().duplicate_frames(), 0u);
}

// ------------------------------------------------- zero-rate bit-identity

TEST(FaultDeterminismTest, EmptyPlanPilRunIsBitIdentical) {
  core::ServoConfig cfg;
  cfg.duration_s = 0.12;
  cfg.setpoint_time = 0.02;

  auto run = [&](bool attach_faults) {
    core::ServoSystem servo(cfg);
    obs::MonitorHub hub;
    FaultInjector injector(1, FaultPlan{});  // every rate zero
    core::ServoSystem::PilRunOptions opts;
    opts.monitors = &hub;
    if (attach_faults) opts.faults = &injector;
    auto result = servo.run_pil(opts);
    EXPECT_TRUE(injector.sites().empty());
    return std::tuple<std::vector<double>, double, std::string, std::string>(
        result.speed.values(), result.iae, result.report.metrics.report(),
        hub.report("pil").to_json());
  };
  const auto baseline = run(false);
  const auto wired = run(true);
  EXPECT_EQ(std::get<0>(baseline), std::get<0>(wired));  // trajectory
  EXPECT_EQ(std::get<1>(baseline), std::get<1>(wired));  // IAE, exact
  EXPECT_EQ(std::get<2>(baseline), std::get<2>(wired));  // metrics report
  EXPECT_EQ(std::get<3>(baseline), std::get<3>(wired));  // health JSON
}

TEST(FaultDeterminismTest, EmptyPlanHilRunIsBitIdentical) {
  core::ServoConfig cfg;
  cfg.duration_s = 0.15;
  cfg.setpoint_time = 0.02;

  auto run = [&](bool attach_faults) {
    core::ServoSystem servo(cfg);
    FaultInjector injector(1, FaultPlan{});
    core::ServoSystem::HilOptions opts;
    if (attach_faults) opts.faults = &injector;
    auto result = servo.run_hil(opts);
    EXPECT_TRUE(injector.sites().empty());
    return std::pair<std::vector<double>, double>(result.speed.values(),
                                                  result.iae);
  };
  const auto baseline = run(false);
  const auto wired = run(true);
  EXPECT_EQ(baseline.first, wired.first);
  EXPECT_EQ(baseline.second, wired.second);
}

// --------------------------------------------------------------- campaign

/// Shared campaign scenario: the case-study servo under PIL on a fast link
/// with recovery enabled, every fault layer wired.  Records the scenario
/// results the campaign report gates on.
CampaignScenario servo_pil_scenario(double duration_s) {
  return [duration_s](RunContext& ctx) {
    core::ServoConfig cfg;
    cfg.duration_s = duration_s;
    cfg.setpoint_time = 0.02;
    core::ServoSystem servo(cfg);
    obs::MonitorHub hub;
    core::ServoSystem::PilRunOptions opts;
    opts.baud = 1000000;
    opts.faults = &ctx.injector;
    opts.monitors = &hub;
    opts.recovery.enabled = true;
    const auto result = servo.run_pil(opts);
    ctx.metrics.merge(result.report.metrics);
    ctx.metrics.stats("campaign.iae").add(result.iae);
    ctx.health.merge(hub.report("pil"));
    const auto* abandoned =
        result.report.metrics.find_counter("pil.exchanges_abandoned");
    return abandoned == nullptr || abandoned->value == 0;
  };
}

TEST(FaultCampaignTest, ReportIsByteIdenticalAcrossThreadCounts) {
  CampaignOptions opts;
  opts.name = "thread-invariance";
  opts.seed = 7;
  opts.runs = 4;
  opts.plan = FaultPlan::defaults();
  opts.threads = 1;
  const CampaignReport serial_report =
      CampaignRunner(opts).run(servo_pil_scenario(0.08));
  opts.threads = 4;
  const CampaignReport parallel_report =
      CampaignRunner(opts).run(servo_pil_scenario(0.08));
  EXPECT_GT(serial_report.faults_injected, 0u);
  EXPECT_EQ(serial_report.to_json(), parallel_report.to_json());
  EXPECT_EQ(serial_report.merged.report(), parallel_report.merged.report());
}

TEST(FaultCampaignTest, DefaultRatesRecoverWithBoundedDegradation) {
  // Clean reference: same scenario, zero-rate plan.
  CampaignOptions clean;
  clean.name = "clean";
  clean.seed = 7;
  clean.runs = 2;
  const CampaignReport clean_report =
      CampaignRunner(clean).run(servo_pil_scenario(0.15));
  EXPECT_EQ(clean_report.unrecovered, 0u);
  EXPECT_EQ(clean_report.faults_injected, 0u);

  CampaignOptions faulty = clean;
  faulty.name = "defaults";
  faulty.plan = FaultPlan::defaults();
  const CampaignReport report =
      CampaignRunner(faulty).run(servo_pil_scenario(0.15));
  EXPECT_GT(report.faults_injected, 0u);
  EXPECT_GT(report.fault_opportunities, report.faults_injected);
  EXPECT_EQ(report.unrecovered, 0u) << report.summary();
  EXPECT_TRUE(report.unrecovered_runs.empty());

  // Recovery bounds the control-quality hit: IAE within 2x of clean.
  const auto* clean_iae = clean_report.merged.find_stats("campaign.iae");
  const auto* fault_iae = report.merged.find_stats("campaign.iae");
  ASSERT_NE(clean_iae, nullptr);
  ASSERT_NE(fault_iae, nullptr);
  EXPECT_GT(clean_iae->mean(), 0.0);
  EXPECT_LT(fault_iae->mean(), 2.0 * clean_iae->mean());

  // The JSON artifact names the fault sites and the scenario stats.
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"serial.pil_rs232.a2b\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"campaign.iae\""), std::string::npos);
  EXPECT_NE(json.find("\"unrecovered\":0"), std::string::npos);
}

TEST(FaultCampaignTest, SingleRunReplaysInsideAndOutsideCampaign) {
  // Replaying run #2 of a campaign in isolation (one injector with the
  // campaign's run seed) reproduces its exact per-site fault counts.
  CampaignOptions opts;
  opts.seed = 13;
  opts.runs = 3;
  opts.plan = FaultPlan::defaults().scaled(2.0);
  const CampaignReport report =
      CampaignRunner(opts).run(servo_pil_scenario(0.06));

  FaultInjector replay(CampaignRunner::run_seed(opts.seed, 2), opts.plan);
  trace::MetricsRegistry metrics;
  obs::HealthReport health;
  RunContext ctx{2, replay.seed(), replay, metrics, health};
  (void)servo_pil_scenario(0.06)(ctx);
  replay.export_metrics(metrics);
  for (const auto& [name, site] : replay.sites()) {
    const auto* in_campaign =
        report.per_run[2].find_counter("fault." + name + ".injected");
    ASSERT_NE(in_campaign, nullptr) << name;
    EXPECT_EQ(in_campaign->value, site.injected()) << name;
  }
}

}  // namespace
}  // namespace iecd::fault
