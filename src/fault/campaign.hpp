/// \file campaign.hpp
/// Deterministic fault campaigns: N independent runs of one scenario, each
/// with its own FaultInjector seeded from (campaign seed, run index), fanned
/// out over exec::SweepRunner and merged in index order — the campaign
/// report (per-site fault counts, IAE degradation, recovery-latency
/// percentiles, flight-recorder dumps of unrecovered runs) is byte-identical
/// for any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "exec/sweep.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "fault/rng.hpp"
#include "obs/health_report.hpp"
#include "trace/metrics.hpp"

namespace iecd::fault {

struct CampaignOptions {
  std::string name = "campaign";
  std::uint64_t seed = 1;
  std::size_t runs = 8;
  /// Worker threads for the fan-out (see exec::SweepOptions); the merged
  /// report and JSON are identical for every value.
  std::size_t threads = 1;
  /// Lane-batch width for the BatchCampaignScenario overload: each work
  /// item covers up to `batch` consecutive run indices, which the scenario
  /// advances in lockstep (src/batch/ engines).  Per-run seeding, metrics
  /// and the merge are unchanged, so the report stays byte-identical to
  /// the scalar campaign for every batch width and thread count.
  std::size_t batch = 1;
  FaultPlan plan;
};

/// Handed to the scenario for one campaign run.  The scenario wires
/// \p injector into the world it builds (sites.hpp helpers), runs it, and
/// records its results into \p metrics / \p health.  It must not touch
/// shared mutable state — runs execute on arbitrary pool threads.
struct RunContext {
  std::size_t index = 0;
  std::uint64_t run_seed = 0;
  FaultInjector& injector;
  trace::MetricsRegistry& metrics;
  obs::HealthReport& health;
};

/// One campaign run; returns true when the run RECOVERED (met its
/// scenario-defined acceptance: e.g. bounded tracking error, no abandoned
/// exchange).  A false return marks the run unrecovered in the report and
/// retains its health report's flight-recorder dumps.
using CampaignScenario = std::function<bool(RunContext&)>;

/// Batched scenario: one lane group of consecutive campaign runs, each
/// lane carrying its own seeded injector/registry/health triple exactly as
/// the scalar scenario would see it.  Sets recovered[k] for lane k
/// (recovered.size() == lanes.size(); entries are pre-set to true).
using BatchCampaignScenario =
    std::function<void(std::span<RunContext> lanes, std::span<bool> recovered)>;

/// Campaign bookkeeping of one finished run: exports the injector's
/// per-site counters and records the campaign.* markers
/// (runs/unrecovered/faults_injected/fault_opportunities) into \p metrics.
/// Every execution path — scalar, batched, streaming engine — funnels
/// through this one function so per-run registries are byte-identical
/// across all of them.
void finalize_run_bookkeeping(const FaultInjector& injector, bool recovered,
                              trace::MetricsRegistry& metrics);

struct CampaignReport {
  std::string name;
  std::uint64_t seed = 0;
  std::size_t runs = 0;

  trace::MetricsRegistry merged;  ///< index-order fold of all runs
  std::vector<trace::MetricsRegistry> per_run;
  obs::HealthReport health;       ///< same fold; "pil.recovery" percentiles
  std::vector<obs::HealthReport> per_run_health;

  std::uint64_t unrecovered = 0;
  std::vector<std::size_t> unrecovered_runs;  ///< run indices, ascending
  /// Health reports of the unrecovered runs only, keyed by run index —
  /// what to_json()'s unrecovered_dumps section reads.  The streaming
  /// campaign engine retains just these (O(unrecovered), not O(runs));
  /// the retained runner fills them from per_run_health.
  std::map<std::size_t, obs::HealthReport> unrecovered_health;
  std::uint64_t faults_injected = 0;
  std::uint64_t fault_opportunities = 0;

  /// Deterministic JSON artifact (CAMPAIGN_<name>.json in CI): campaign
  /// identity, per-site fault counters, scenario stats (campaign.* stats,
  /// e.g. IAE), recovery-latency percentiles, unrecovered run indices and
  /// the flight-recorder dumps their health reports retained.  Thread
  /// count and wall clock are deliberately absent — the document is
  /// byte-identical across 1..N worker threads.
  std::string to_json() const;
  bool write_json(const std::string& path) const;
  /// One-line human summary for bench tables / logs.
  std::string summary() const;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignOptions options)
      : options_(std::move(options)) {}

  /// Seed of run \p index: a SplitMix64 hop from the campaign seed, so
  /// replaying one run in isolation (one FaultInjector with this seed)
  /// reproduces its exact fault sequence.
  static std::uint64_t run_seed(std::uint64_t campaign_seed,
                                std::size_t index) {
    return SplitMix64(campaign_seed +
                      0x9E3779B97F4A7C15ULL *
                          static_cast<std::uint64_t>(index + 1))
        .next();
  }

  const CampaignOptions& options() const { return options_; }

  CampaignReport run(const CampaignScenario& scenario) const;

  /// Batched variant: fans lane groups of CampaignOptions::batch runs out
  /// over the sweep pool.  When each lane reproduces the scalar scenario
  /// bit-for-bit (the src/batch/ determinism contract), the returned
  /// report — and its JSON artifact — is byte-identical to run(scalar).
  CampaignReport run(const BatchCampaignScenario& scenario) const;

 private:
  CampaignOptions options_;
};

}  // namespace iecd::fault
