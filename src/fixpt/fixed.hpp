/// \file fixed.hpp
/// Compile-time fixed-point type, mirroring the arithmetic the generated C
/// code performs with native integers on the 16-bit target.  WordBits picks
/// the storage type; all operations saturate, matching the default the
/// code generator emits for control signals.
#pragma once

#include <cstdint>
#include <type_traits>

#include "fixpt/format.hpp"
#include "fixpt/value.hpp"

namespace iecd::fixpt {

namespace detail {
template <int WordBits>
struct StorageFor {
  using type = std::conditional_t<
      (WordBits <= 8), std::int8_t,
      std::conditional_t<(WordBits <= 16), std::int16_t, std::int32_t>>;
};
}  // namespace detail

template <int WordBits, int FracBits>
class Fixed {
  static_assert(WordBits >= 2 && WordBits <= 32);

 public:
  using Storage = typename detail::StorageFor<WordBits>::type;

  static constexpr FixedFormat format() {
    return FixedFormat{WordBits, FracBits, true};
  }

  constexpr Fixed() = default;

  static Fixed from_double(double real) {
    const FixedValue v = FixedValue::from_double(real, format());
    return from_raw(static_cast<Storage>(v.raw()));
  }

  static constexpr Fixed from_raw(Storage raw) {
    Fixed f;
    f.raw_ = raw;
    return f;
  }

  Storage raw() const { return raw_; }

  double to_double() const {
    return FixedValue(raw_, format()).to_double();
  }

  FixedValue to_value() const { return FixedValue(raw_, format()); }

  Fixed operator+(Fixed other) const {
    return from_value(to_value().add(other.to_value(), format()));
  }
  Fixed operator-(Fixed other) const {
    return from_value(to_value().sub(other.to_value(), format()));
  }
  Fixed operator*(Fixed other) const {
    return from_value(to_value().mul(other.to_value(), format()));
  }
  Fixed operator/(Fixed other) const {
    return from_value(to_value().div(other.to_value(), format()));
  }
  Fixed operator-() const { return from_value(to_value().negate()); }

  bool operator==(Fixed other) const { return raw_ == other.raw_; }
  bool operator<(Fixed other) const { return raw_ < other.raw_; }
  bool operator<=(Fixed other) const { return raw_ <= other.raw_; }
  bool operator>(Fixed other) const { return raw_ > other.raw_; }
  bool operator>=(Fixed other) const { return raw_ >= other.raw_; }

 private:
  static Fixed from_value(const FixedValue& v) {
    return from_raw(static_cast<Storage>(v.raw()));
  }

  Storage raw_ = 0;
};

/// The formats the servo case study uses (16-bit DSC without FPU).
using Q15 = Fixed<16, 15>;   ///< [-1, 1) unit signals
using Q12_3 = Fixed<16, 3>;  ///< wide-range speeds
using Q31 = Fixed<32, 31>;   ///< accumulators

}  // namespace iecd::fixpt
