/// \file autosar.hpp
/// The second block-set variant from the paper's conclusions: "In the
/// first variant the blocks represent the PE beans while in the second
/// variant the blocks represent AUTOSAR peripherals.  The blocks of both
/// variants are the same from the functional point of view, but they
/// differ in HW settings and the API of generated code."
///
/// This module maps each bean onto its AUTOSAR MCAL module and emits
/// drivers with the standardized API (Adc_ReadGroup, Pwm_SetDutyCycle,
/// Gpt notifications, Dio channels); peripherals without an MCAL module
/// (quadrature decoder, SCI) become complex device drivers (Cdd_*), as
/// AUTOSAR prescribes.
#pragma once

#include "beans/bean.hpp"

namespace iecd::beans {

/// Which flavour of hardware-access API the generated code uses.
enum class DriverApi {
  kProcessorExpert,  ///< bean methods (AD1_Measure, PWM1_SetRatio16, ...)
  kAutosar,          ///< MCAL modules (Adc_ReadGroup, Pwm_SetDutyCycle, ...)
};

const char* to_string(DriverApi api);

namespace autosar {

/// The MCAL module name a bean maps to ("Adc", "Pwm", "Gpt", "Dio",
/// "Mcu", or "Cdd_<Type>" for peripherals AUTOSAR has no module for).
std::string mcal_module_of(const Bean& bean);

/// Emits the AUTOSAR-flavoured driver for one bean (only enabled methods,
/// like the PE emission).
DriverSource driver_source(const Bean& bean);

/// Std_Types.h — the AUTOSAR counterpart of PE_Types.h.
DriverSource std_types_header();

/// C statement(s) accessing the bean's hardware through the MCAL API (the
/// AUTOSAR counterpart of TargetIo::emit_target_c).  \p var is the C
/// variable read into / written from; \p is_input selects direction.
std::string emit_access(const Bean& bean, const std::string& var,
                        bool is_input);

}  // namespace autosar
}  // namespace iecd::beans
