/// \file injector.hpp
/// FaultInjector: one per run.  Owns the fault plan and the per-site
/// random streams; the wiring helpers (sites.hpp) ask it for sites and
/// install hooks that consult them.  Sites are keyed by name, each with an
/// independent xoshiro256** stream seeded from (run seed, site name) — so
/// a single site's fault sequence is reproducible in isolation and the
/// whole run is independent of site creation order, event interleaving and
/// campaign thread count.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "fault/plan.hpp"
#include "fault/rng.hpp"

namespace iecd::trace {
class MetricsRegistry;
}

namespace iecd::fault {

class FaultInjector {
 public:
  /// One injection site: its stream plus opportunity/injection counters.
  /// References returned by FaultInjector::site() stay valid for the
  /// injector's lifetime (map-backed), so hooks may capture them.
  class Site {
   public:
    Site(std::string name, std::uint64_t seed)
        : name_(std::move(name)), rng_(seed) {}

    const std::string& name() const { return name_; }

    /// One Bernoulli opportunity at probability \p rate.  rate <= 0 draws
    /// NOTHING (and counts nothing): a zero-rate site is stream-silent, so
    /// enabling one fault class never shifts another's sequence.  A fired
    /// opportunity counts as injected.
    bool fire(double rate) {
      if (rate <= 0.0) return false;
      ++opportunities_;
      if (rng_.uniform01() >= rate) return false;
      ++injected_;
      return true;
    }

    /// Extra draws for fault parameters (magnitude, position, sign) —
    /// consumed only after fire() returned true, so parameter draws never
    /// disturb the opportunity sequence of a quiet site.
    std::uint64_t next_u64() { return rng_.next(); }
    double uniform(double lo, double hi) { return rng_.uniform(lo, hi); }
    /// Single-bit XOR mask (bit position from the stream) — the canonical
    /// wire corruption, guaranteed to actually change the byte.
    std::uint8_t bit_mask() {
      return static_cast<std::uint8_t>(1u << (next_u64() & 7u));
    }
    /// Counts an injection decided outside fire() (e.g. a pre-generated
    /// disturbance pulse).
    void note_injected(std::uint64_t n = 1) { injected_ += n; }

    std::uint64_t opportunities() const { return opportunities_; }
    std::uint64_t injected() const { return injected_; }

   private:
    std::string name_;
    Xoshiro256ss rng_;
    std::uint64_t opportunities_ = 0;
    std::uint64_t injected_ = 0;
  };

  FaultInjector(std::uint64_t seed, FaultPlan plan)
      : seed_(seed), plan_(plan) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  std::uint64_t seed() const { return seed_; }
  const FaultPlan& plan() const { return plan_; }

  /// Get-or-create; the reference stays valid for the injector's lifetime.
  Site& site(const std::string& name) {
    auto it = sites_.find(name);
    if (it == sites_.end()) {
      it = sites_.emplace(name, Site{name, site_seed(seed_, name)}).first;
    }
    return it->second;
  }

  const Site* find_site(const std::string& name) const {
    auto it = sites_.find(name);
    return it == sites_.end() ? nullptr : &it->second;
  }
  const std::map<std::string, Site>& sites() const { return sites_; }

  std::uint64_t total_injected() const {
    std::uint64_t n = 0;
    for (const auto& [name, site] : sites_) n += site.injected();
    return n;
  }
  std::uint64_t total_opportunities() const {
    std::uint64_t n = 0;
    for (const auto& [name, site] : sites_) n += site.opportunities();
    return n;
  }

  /// Counters "fault.<site>.injected" / "fault.<site>.opportunities" into
  /// \p metrics.  No sites (empty plan) exports nothing — the registry
  /// stays identical to a run with no injector attached.
  void export_metrics(trace::MetricsRegistry& metrics) const;

 private:
  std::uint64_t seed_;
  FaultPlan plan_;
  std::map<std::string, Site> sites_;
};

}  // namespace iecd::fault
