
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/can_bus.cpp" "src/sim/CMakeFiles/iecd_sim.dir/can_bus.cpp.o" "gcc" "src/sim/CMakeFiles/iecd_sim.dir/can_bus.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/iecd_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/iecd_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/serial_link.cpp" "src/sim/CMakeFiles/iecd_sim.dir/serial_link.cpp.o" "gcc" "src/sim/CMakeFiles/iecd_sim.dir/serial_link.cpp.o.d"
  "/root/repo/src/sim/world.cpp" "src/sim/CMakeFiles/iecd_sim.dir/world.cpp.o" "gcc" "src/sim/CMakeFiles/iecd_sim.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/iecd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
