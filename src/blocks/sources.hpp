/// \file sources.hpp
/// Source blocks: constants and test signals.
#pragma once

#include "model/block.hpp"

namespace iecd::blocks {

using model::Block;
using model::EmitContext;
using model::SimContext;

class ConstantBlock : public Block {
 public:
  ConstantBlock(std::string name, double value);
  const char* type_name() const override { return "Constant"; }
  void output(const SimContext& ctx) override;
  void set_value(double v) { value_ = v; }
  double value() const { return value_; }
  mcu::OpCounts step_ops(bool fixed_point) const override;
  std::string emit_c(const EmitContext& ctx) const override;

 private:
  double value_;
};

class StepBlock : public Block {
 public:
  StepBlock(std::string name, double step_time, double before, double after);
  const char* type_name() const override { return "Step"; }
  void output(const SimContext& ctx) override;
  std::string emit_c(const EmitContext& ctx) const override;

 private:
  double step_time_, before_, after_;
};

class RampBlock : public Block {
 public:
  RampBlock(std::string name, double slope, double start_time = 0.0,
            double initial = 0.0);
  const char* type_name() const override { return "Ramp"; }
  void output(const SimContext& ctx) override;

 private:
  double slope_, start_time_, initial_;
};

class SineBlock : public Block {
 public:
  SineBlock(std::string name, double amplitude, double frequency_hz,
            double phase_rad = 0.0, double bias = 0.0);
  const char* type_name() const override { return "Sine"; }
  void output(const SimContext& ctx) override;
  mcu::OpCounts step_ops(bool fixed_point) const override;

 private:
  double amplitude_, frequency_hz_, phase_, bias_;
};

class PulseBlock : public Block {
 public:
  PulseBlock(std::string name, double period, double duty_ratio,
             double amplitude = 1.0);
  const char* type_name() const override { return "Pulse"; }
  void output(const SimContext& ctx) override;

 private:
  double period_, duty_, amplitude_;
};

}  // namespace iecd::blocks
