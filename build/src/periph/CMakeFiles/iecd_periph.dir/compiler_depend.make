# Empty compiler generated dependencies file for iecd_periph.
# This may be replaced when dependencies are built.
