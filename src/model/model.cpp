#include "model/model.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <unordered_set>

#include "util/strings.hpp"

namespace iecd::model {

Model::Model(std::string name) : name_(std::move(name)) {}

void Model::ensure_unique(const std::string& block_name) const {
  if (const_cast<Model*>(this)->find(block_name)) {
    throw std::invalid_argument("Model " + name_ + ": duplicate block " +
                                block_name);
  }
}

void Model::connect(Block& src, int src_port, Block& dst, int dst_port) {
  if (src_port < 0 || src_port >= src.output_count()) {
    throw std::out_of_range(src.name() + ": no output port " +
                            std::to_string(src_port));
  }
  if (dst_port < 0 || dst_port >= dst.input_count()) {
    throw std::out_of_range(dst.name() + ": no input port " +
                            std::to_string(dst_port));
  }
  dst.inputs_[static_cast<std::size_t>(dst_port)] = {&src, src_port};
  invalidate();
}

Block* Model::find(const std::string& block_name) {
  for (const auto& b : blocks_) {
    if (b->name() == block_name) return b.get();
  }
  return nullptr;
}

const Block* Model::find(const std::string& block_name) const {
  return const_cast<Model*>(this)->find(block_name);
}

bool Model::remove(const std::string& block_name) {
  const auto it =
      std::find_if(blocks_.begin(), blocks_.end(),
                   [&](const auto& b) { return b->name() == block_name; });
  if (it == blocks_.end()) return false;
  // Disconnect any inputs fed by the removed block.
  for (const auto& b : blocks_) {
    for (auto& conn : b->inputs_) {
      if (conn.src == it->get()) conn = {};
    }
  }
  blocks_.erase(it);
  invalidate();
  return true;
}

bool Model::rename(const std::string& old_name, const std::string& new_name) {
  Block* b = find(old_name);
  if (!b) return false;
  ensure_unique(new_name);
  b->rename(new_name);
  return true;
}

void Model::compute_order() const {
  // Kahn's algorithm over direct-feedthrough edges: an edge src -> dst is an
  // ordering constraint only if dst's output depends on its current inputs.
  std::map<const Block*, int> in_degree;
  std::map<const Block*, std::vector<Block*>> adjacency;
  for (const auto& b : blocks_) in_degree[b.get()] = 0;
  for (const auto& b : blocks_) {
    if (!b->has_direct_feedthrough()) continue;
    for (const auto& conn : b->inputs_) {
      if (!conn.src) continue;
      adjacency[conn.src].push_back(b.get());
      ++in_degree[b.get()];
    }
  }
  order_.clear();
  order_.reserve(blocks_.size());
  // Stable seed order = insertion order, keeping runs deterministic.
  std::vector<Block*> ready;
  for (const auto& b : blocks_) {
    if (in_degree[b.get()] == 0) ready.push_back(b.get());
  }
  std::size_t cursor = 0;
  while (cursor < ready.size()) {
    Block* b = ready[cursor++];
    order_.push_back(b);
    for (Block* next : adjacency[b]) {
      if (--in_degree[next] == 0) ready.push_back(next);
    }
  }
  if (order_.size() != blocks_.size()) {
    std::vector<std::string> loop;
    for (const auto& b : blocks_) {
      if (in_degree[b.get()] > 0) loop.push_back(b->name());
    }
    throw std::logic_error("Model " + name_ + ": algebraic loop involving " +
                           util::join(loop, " -> "));
  }
  order_valid_ = true;
  compile();
}

void Model::compile() const {
  // Pass 1: gather every block's latched outputs into one contiguous arena
  // (slot ids are implicit: block-insertion order, then port order).
  std::size_t total = 0;
  for (const auto& b : blocks_) total += b->outputs_.size();
  arena_.clear();
  arena_.reserve(total);
  for (const auto& b : blocks_) {
    for (std::size_t p = 0; p < b->outputs_.size(); ++p) {
      arena_.push_back(b->slots_[p]);
    }
  }
  // Pass 2: repoint block storage at its arena range (reserve above
  // guarantees no reallocation happened while filling).
  std::size_t base = 0;
  for (const auto& b : blocks_) {
    b->slots_ = arena_.data() + base;
    base += b->outputs_.size();
  }
  // Pass 3: resolve each input connection to a direct slot pointer.
  // Cross-model sources (a block owned by another Model, e.g. across a
  // subsystem boundary) keep the nullptr -> walking fallback, because their
  // storage can move when that model recompiles.
  std::unordered_set<const Block*> members;
  members.reserve(blocks_.size());
  for (const auto& b : blocks_) members.insert(b.get());
  for (const auto& b : blocks_) {
    b->in_cache_.assign(b->inputs_.size(), nullptr);
    for (std::size_t i = 0; i < b->inputs_.size(); ++i) {
      const Block::Connection& c = b->inputs_[i];
      if (!c.src) {
        b->in_cache_[i] = &Block::zero_value();
      } else if (members.count(c.src) != 0) {
        b->in_cache_[i] = c.src->slots_ + c.src_port;
      }
    }
  }
  compiled_ = true;
}

void Model::decompile() {
  if (!compiled_) return;
  for (const auto& b : blocks_) {
    // Latched values survive the move back to per-block storage.  A block
    // added after the last compile already points at its own vector; the
    // copy below is then a no-op self-assignment.
    for (std::size_t p = 0; p < b->outputs_.size(); ++p) {
      b->outputs_[p] = b->slots_[p];
    }
    b->slots_ = b->outputs_.data();
    b->in_cache_.clear();
  }
  arena_.clear();
  compiled_ = false;
}

void Model::invalidate() {
  decompile();
  order_valid_ = false;
  ++order_epoch_;
}

const std::vector<Block*>& Model::sorted() const {
  if (!order_valid_) compute_order();
  return order_;
}

util::DiagnosticList Model::check() const {
  util::DiagnosticList diagnostics;
  for (const auto& b : blocks_) {
    for (int i = 0; i < b->input_count(); ++i) {
      if (!b->input_connected(i)) {
        diagnostics.warning(
            name_ + "." + b->name(),
            util::format("input port %d unconnected (reads 0)", i));
      }
    }
    const SampleTime st = b->sample_time();
    if (st.kind == SampleTime::Kind::kDiscrete && !(st.period > 0)) {
      diagnostics.error(name_ + "." + b->name(),
                        "discrete sample time must have period > 0");
    }
  }
  try {
    sorted();
  } catch (const std::logic_error& e) {
    diagnostics.error(name_, e.what());
  }
  return diagnostics;
}

}  // namespace iecd::model
