/// \file math_blocks.hpp
/// Arithmetic blocks: gain, sum, product, abs, min/max.
#pragma once

#include <string>

#include "model/block.hpp"

namespace iecd::blocks {

using model::Block;
using model::EmitContext;
using model::SimContext;

class GainBlock : public Block {
 public:
  GainBlock(std::string name, double gain);
  const char* type_name() const override { return "Gain"; }
  void output(const SimContext& ctx) override;
  double gain() const { return gain_; }
  void set_gain(double g) { gain_ = g; }
  mcu::OpCounts step_ops(bool fixed_point) const override;
  std::string emit_c(const EmitContext& ctx) const override;

 private:
  double gain_;
};

/// N-ary add/subtract; \p signs is one '+'/'-' per input, e.g. "+-".
class SumBlock : public Block {
 public:
  SumBlock(std::string name, std::string signs);
  const char* type_name() const override { return "Sum"; }
  void output(const SimContext& ctx) override;
  mcu::OpCounts step_ops(bool fixed_point) const override;
  std::string emit_c(const EmitContext& ctx) const override;

 private:
  std::string signs_;
};

class ProductBlock : public Block {
 public:
  ProductBlock(std::string name, int inputs = 2);
  const char* type_name() const override { return "Product"; }
  void output(const SimContext& ctx) override;
  mcu::OpCounts step_ops(bool fixed_point) const override;
  std::string emit_c(const EmitContext& ctx) const override;
};

class AbsBlock : public Block {
 public:
  explicit AbsBlock(std::string name);
  const char* type_name() const override { return "Abs"; }
  void output(const SimContext& ctx) override;
  std::string emit_c(const EmitContext& ctx) const override;
};

class MinMaxBlock : public Block {
 public:
  MinMaxBlock(std::string name, bool is_max, int inputs = 2);
  const char* type_name() const override { return is_max_ ? "Max" : "Min"; }
  void output(const SimContext& ctx) override;

 private:
  bool is_max_;
};

}  // namespace iecd::blocks
