/// \file lookup.hpp
/// 1-D lookup table with linear interpolation and edge clipping — the
/// generated equivalent of calibration maps in automotive control code.
#pragma once

#include <vector>

#include "model/block.hpp"

namespace iecd::blocks {

using model::Block;
using model::SimContext;

class Lookup1DBlock : public Block {
 public:
  /// \p xs must be strictly increasing; ys same length.
  Lookup1DBlock(std::string name, std::vector<double> xs,
                std::vector<double> ys);
  const char* type_name() const override { return "Lookup1D"; }
  void output(const SimContext& ctx) override;
  mcu::OpCounts step_ops(bool fixed_point) const override;
  std::uint32_t state_bytes() const override { return 0; }

  double lookup(double x) const;

 private:
  std::vector<double> xs_, ys_;
};

}  // namespace iecd::blocks
