file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_bean_inspector.dir/bench_e1_bean_inspector.cpp.o"
  "CMakeFiles/bench_e1_bean_inspector.dir/bench_e1_bean_inspector.cpp.o.d"
  "bench_e1_bean_inspector"
  "bench_e1_bean_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_bean_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
