file(REMOVE_RECURSE
  "libiecd_sim.a"
)
