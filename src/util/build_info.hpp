/// \file build_info.hpp
/// Build provenance: the git revision, compiler and flags a binary was
/// produced from, captured at compile time.  Every evidence artifact and
/// health report embeds this so a figure in a CI upload can always be
/// traced back to the exact tree and toolchain that produced it.
#pragma once

#include <string>

namespace iecd::util {

struct BuildInfo {
  std::string git_sha;     ///< short revision hash; "unknown" outside git
  std::string compiler;    ///< compiler id + version string
  std::string flags;       ///< CMAKE_CXX_FLAGS + build-type flags
  std::string build_type;  ///< CMAKE_BUILD_TYPE
};

/// The process-wide build info, assembled once from compile-time macros
/// (the util CMakeLists injects IECD_GIT_SHA / IECD_CXX_FLAGS /
/// IECD_BUILD_TYPE into this translation unit).
const BuildInfo& build_info();

/// Deterministic one-line JSON object:
/// {"git_sha":"...","compiler":"...","flags":"...","build_type":"..."}
std::string build_info_json();

}  // namespace iecd::util
