/// \file topology.hpp
/// Declarative topology for the co-simulation master: buses, nodes and
/// their attachments as plain data.  A builder (farm.hpp) turns a
/// Topology into live components registered on a Master — construction
/// order follows the spec order exactly, which fixes bus node indices
/// (CAN arbitration tie-break) and the master's same-boundary execution
/// order, so a topology value IS the determinism contract of the runs it
/// produces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cosim/nodes.hpp"

namespace iecd::cosim {

struct BusSpec {
  std::string name;
  std::uint32_t bitrate_bps = 500000;
};

enum class NodeKind {
  kServo,       ///< full MCU fidelity (ServoNode)
  kSupervisor,  ///< lightweight model node (SupervisorNode)
  kTraffic,     ///< background chatter (TrafficGenNode)
};

struct NodeSpec {
  std::string name;
  NodeKind kind = NodeKind::kServo;
  std::string bus;  ///< attachment: name of the bus this node sits on
  /// Per-kind controller configuration; only the member matching `kind`
  /// is consulted.
  ServoNodeConfig servo;
  SupervisorNode::Config supervisor;
  TrafficGenNode::Config traffic;
};

struct Topology {
  std::string name = "topology";
  std::vector<BusSpec> buses;
  std::vector<NodeSpec> nodes;

  std::size_t count(NodeKind kind) const {
    std::size_t n = 0;
    for (const NodeSpec& node : nodes) {
      if (node.kind == kind) ++n;
    }
    return n;
  }
};

}  // namespace iecd::cosim
