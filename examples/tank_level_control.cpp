// Second domain scenario: water-tank level control.  The level sensor
// feeds an ADC bean (real 12-bit quantization in the loop), a PWM bean
// drives the proportional inlet valve, and an over-level alarm runs as an
// event-driven function-call subsystem on the ADC's end-of-conversion
// event.  The example compares a relay (bang-bang) controller against a
// PI controller on the same plant, then generates code for the PI variant.
#include <cstdio>

#include "beans/bean_project.hpp"
#include "blocks/custom.hpp"
#include "blocks/discontinuities.hpp"
#include "blocks/discrete.hpp"
#include "blocks/math_blocks.hpp"
#include "blocks/sinks.hpp"
#include "blocks/sources.hpp"
#include "core/model_sync.hpp"
#include "core/pe_blocks.hpp"
#include "core/peert.hpp"
#include "model/engine.hpp"
#include "model/metrics.hpp"
#include "plant/simple_plants.hpp"

using namespace iecd;

namespace {

constexpr double kSetpointMeters = 1.0;
constexpr double kPeriod = 0.1;          // 10 Hz control
constexpr double kMetersPerVolt = 0.5;   // sensor: 2 V per meter
constexpr double kSimTime = 2000.0;

struct TankApp {
  model::Model top{"tank_top"};
  model::Subsystem* controller = nullptr;
  beans::BeanProject project{"tank"};
  std::unique_ptr<core::ModelSync> sync;
  blocks::ScopeBlock* level_scope = nullptr;
  model::FunctionCallSubsystem* alarm = nullptr;

  explicit TankApp(bool use_relay) {
    controller = &top.add<model::Subsystem>("controller", 1, 1);
    controller->set_sample_time(model::SampleTime::discrete(kPeriod));
    sync = std::make_unique<core::ModelSync>(controller->inner(), project);

    model::Model& c = controller->inner();
    auto& level_in = c.add<model::Inport>("level_in");
    auto& valve_out = c.add<model::Outport>("valve_out");

    sync->add_timer_int("TI1");
    auto& adc = sync->add_adc("AD1");
    auto& pwm = sync->add_pwm("PWM1");
    project.set_property("TI1", "period_s", kPeriod);
    project.set_property("PWM1", "frequency_hz", 1000.0);

    // Sensor path: level [m] -> volts -> ADC -> back to meters.
    auto& to_volts = c.add<blocks::GainBlock>("to_volts",
                                              1.0 / kMetersPerVolt);
    // ADC code (left-justified 16-bit) -> volts -> meters.
    auto& code_to_m = c.add<blocks::GainBlock>(
        "code_to_m", 3.3 / 65535.0 * kMetersPerVolt);
    auto& err = c.add<blocks::SumBlock>("err", "+-");
    auto& sp = c.add<blocks::ConstantBlock>("sp", kSetpointMeters);

    model::Block* law = nullptr;
    if (use_relay) {
      law = &c.add<blocks::RelayBlock>("relay", 0.02, -0.02, 1.0, 0.0);
    } else {
      blocks::DiscretePidBlock::Gains gains;
      gains.kp = 4.0;
      gains.ki = 0.05;
      law = &c.add<blocks::DiscretePidBlock>("pi", gains, 0.0, 1.0);
    }

    // Over-level alarm: event subsystem on the conversion-complete event
    // latches when the measured level exceeds the safe bound.
    alarm = &c.add<model::FunctionCallSubsystem>("alarm", 1, 1);
    {
      model::Model& a = alarm->inner();
      auto& in = a.add<model::Inport>("level");
      auto& over = a.add<blocks::FunctionBlock>(
          "over", 1, [](const std::vector<double>& u, double) {
            return u[0] > 1.8 ? 1.0 : 0.0;
          });
      auto& latch = a.add<blocks::MinMaxBlock>("latch", true, 2);
      auto& mem = a.add<blocks::UnitDelayBlock>("mem", 0.0);
      auto& out = a.add<model::Outport>("alarm_out");
      a.connect(in, 0, over, 0);
      a.connect(over, 0, latch, 0);
      a.connect(mem, 0, latch, 1);
      a.connect(latch, 0, mem, 0);
      a.connect(latch, 0, out, 0);
      alarm->bind_ports({&in}, {&out});
    }
    adc.bind_event("OnEnd", *alarm);

    c.connect(level_in, 0, to_volts, 0);
    c.connect(to_volts, 0, adc, 0);
    c.connect(adc, 0, code_to_m, 0);
    c.connect(code_to_m, 0, *alarm, 0);
    c.connect(sp, 0, err, 0);
    c.connect(code_to_m, 0, err, 1);
    c.connect(err, 0, *law, 0);
    c.connect(*law, 0, pwm, 0);
    c.connect(pwm, 0, valve_out, 0);
    controller->bind_ports({&level_in}, {&valve_out});

    // Plant: the tank in the same single model.
    auto& tank = top.add<plant::WaterTankBlock>(
        "tank", plant::WaterTankBlock::Params{.outlet_area = 4.0e-4});
    level_scope = &top.add<blocks::ScopeBlock>("level");
    level_scope->set_sample_time(model::SampleTime::discrete(kPeriod));
    top.connect(tank, 0, *controller, 0);
    top.connect(*controller, 0, tank, 0);
    top.connect(tank, 0, *level_scope, 0);
  }

  model::StepMetrics run() {
    model::Engine engine(top, {.stop_time = kSimTime, .base_period = kPeriod,
                               .minor_steps = 8});
    engine.run();
    return model::analyze_step(level_scope->log(), kSetpointMeters);
  }
};

}  // namespace

int main() {
  std::printf("Tank level control: relay vs PI on the identical plant\n\n");

  TankApp relay_app(/*use_relay=*/true);
  auto diags = relay_app.project.validate();
  if (diags.has_errors()) {
    std::printf("validation failed:\n%s", diags.to_string().c_str());
    return 1;
  }
  const auto relay_metrics = relay_app.run();

  TankApp pi_app(/*use_relay=*/false);
  pi_app.project.validate();
  const auto pi_metrics = pi_app.run();

  std::printf("%-8s %-12s %-12s %-12s %-10s\n", "law", "rise [s]",
              "overshoot", "ss-err [m]", "settled");
  std::printf("%-8s %-12.1f %-12.2f %-12.4f %-10s\n", "relay",
              relay_metrics.rise_time, relay_metrics.overshoot_percent,
              relay_metrics.steady_state_error,
              relay_metrics.settled ? "yes" : "no (limit cycle)");
  std::printf("%-8s %-12.1f %-12.2f %-12.4f %-10s\n", "PI",
              pi_metrics.rise_time, pi_metrics.overshoot_percent,
              pi_metrics.steady_state_error,
              pi_metrics.settled ? "yes" : "no");
  std::printf("\nalarm activations (ADC OnEnd event task): %llu\n",
              static_cast<unsigned long long>(pi_app.alarm->activations()));

  // Generate production code for the PI variant.
  core::PeertTarget target;
  auto build = target.build(*pi_app.controller, pi_app.project, "tank");
  if (!build.ok()) {
    std::printf("codegen failed:\n%s", build.diagnostics.to_string().c_str());
    return 1;
  }
  std::printf("\n%s", build.app.report().c_str());
  return 0;
}
