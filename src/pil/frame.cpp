#include "pil/frame.hpp"

#include <cstring>

#include "util/crc16.hpp"

namespace iecd::pil {

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(frame.payload.size() + 6);
  out.push_back(kSyncByte);
  out.push_back(static_cast<std::uint8_t>(frame.type));
  out.push_back(frame.seq);
  out.push_back(static_cast<std::uint8_t>(frame.payload.size()));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  // CRC over type..payload.
  const std::uint16_t crc = util::crc16_ccitt(
      std::span<const std::uint8_t>(out.data() + 1, out.size() - 1));
  out.push_back(static_cast<std::uint8_t>(crc >> 8));
  out.push_back(static_cast<std::uint8_t>(crc & 0xFF));
  return out;
}

std::vector<std::uint8_t> encode_signals(const std::vector<double>& values) {
  std::vector<std::uint8_t> out;
  out.reserve(values.size() * 4);
  for (double v : values) {
    const float f = static_cast<float>(v);
    std::uint8_t bytes[4];
    std::memcpy(bytes, &f, 4);
    out.insert(out.end(), bytes, bytes + 4);
  }
  return out;
}

std::vector<double> decode_signals(const std::vector<std::uint8_t>& payload) {
  std::vector<double> out;
  out.reserve(payload.size() / 4);
  for (std::size_t i = 0; i + 4 <= payload.size(); i += 4) {
    float f;
    std::memcpy(&f, payload.data() + i, 4);
    out.push_back(static_cast<double>(f));
  }
  return out;
}

void FrameDecoder::set_callback(std::function<void(const Frame&)> on_frame) {
  on_frame_ = std::move(on_frame);
}

void FrameDecoder::reset() {
  state_ = State::kSync;
  current_ = Frame{};
  expected_len_ = 0;
}

bool FrameDecoder::feed(std::uint8_t byte) {
  switch (state_) {
    case State::kSync:
      if (byte == kSyncByte) state_ = State::kType;
      return false;
    case State::kType:
      current_.type = static_cast<FrameType>(byte);
      state_ = State::kSeq;
      return false;
    case State::kSeq:
      current_.seq = byte;
      state_ = State::kLen;
      return false;
    case State::kLen:
      expected_len_ = byte;
      current_.payload.clear();
      state_ = expected_len_ ? State::kPayload : State::kCrcHi;
      return false;
    case State::kPayload:
      current_.payload.push_back(byte);
      if (current_.payload.size() == expected_len_) state_ = State::kCrcHi;
      return false;
    case State::kCrcHi:
      rx_crc_ = static_cast<std::uint16_t>(byte << 8);
      state_ = State::kCrcLo;
      return false;
    case State::kCrcLo: {
      rx_crc_ = static_cast<std::uint16_t>(rx_crc_ | byte);
      std::uint16_t crc = 0xFFFF;
      crc = util::crc16_ccitt_update(crc,
                                     static_cast<std::uint8_t>(current_.type));
      crc = util::crc16_ccitt_update(crc, current_.seq);
      crc = util::crc16_ccitt_update(
          crc, static_cast<std::uint8_t>(current_.payload.size()));
      for (std::uint8_t b : current_.payload) {
        crc = util::crc16_ccitt_update(crc, b);
      }
      const bool ok = crc == rx_crc_;
      if (ok) {
        ++frames_ok_;
        if (on_frame_) on_frame_(current_);
      } else {
        ++crc_errors_;
      }
      reset();
      return true;
    }
  }
  return false;
}

}  // namespace iecd::pil
