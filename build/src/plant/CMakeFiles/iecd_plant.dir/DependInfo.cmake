
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plant/dc_motor.cpp" "src/plant/CMakeFiles/iecd_plant.dir/dc_motor.cpp.o" "gcc" "src/plant/CMakeFiles/iecd_plant.dir/dc_motor.cpp.o.d"
  "/root/repo/src/plant/encoder.cpp" "src/plant/CMakeFiles/iecd_plant.dir/encoder.cpp.o" "gcc" "src/plant/CMakeFiles/iecd_plant.dir/encoder.cpp.o.d"
  "/root/repo/src/plant/simple_plants.cpp" "src/plant/CMakeFiles/iecd_plant.dir/simple_plants.cpp.o" "gcc" "src/plant/CMakeFiles/iecd_plant.dir/simple_plants.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/iecd_model.dir/DependInfo.cmake"
  "/root/repo/build/src/periph/CMakeFiles/iecd_periph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/iecd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fixpt/CMakeFiles/iecd_fixpt.dir/DependInfo.cmake"
  "/root/repo/build/src/mcu/CMakeFiles/iecd_mcu.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iecd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
