#include "cosim/bus.hpp"

namespace iecd::cosim {

SharedCanBus::SharedCanBus(std::string name, std::uint32_t bitrate_bps)
    : name_(std::move(name)), can_(world_, bitrate_bps, name_) {}

sim::CanBus::NodeId SharedCanBus::attach_port(const std::string& port_name,
                                              sim::World& target_world,
                                              DeliverFn deliver) {
  const std::size_t index = ports_.size();
  ports_.push_back(Port{&target_world, std::move(deliver)});
  return can_.attach_node(port_name,
                          [this, index](const sim::CanFrame& frame,
                                        sim::SimTime when) {
                            buffered_.push_back(Buffered{index, frame, when});
                          });
}

sim::CanBus::NodeId SharedCanBus::attach_model_port(
    const std::string& port_name, DeliverFn deliver) {
  const std::size_t index = ports_.size();
  ports_.push_back(Port{nullptr, std::move(deliver)});
  return can_.attach_node(port_name,
                          [this, index](const sim::CanFrame& frame,
                                        sim::SimTime when) {
                            buffered_.push_back(Buffered{index, frame, when});
                          });
}

void SharedCanBus::attach_controller(periph::CanController& controller) {
  const sim::CanBus::NodeId node =
      attach_port(controller.name(), controller.mcu().world(),
                  [&controller](const sim::CanFrame& frame,
                                sim::SimTime when) {
                    controller.deliver(frame, when);
                  });
  controller.connect_external(can_, node);
}

void SharedCanBus::exchange() {
  // Buffered entries are in bus delivery order (one delivery event fans
  // out to all ports in attach order): re-scheduling preserves that order
  // per destination world, and FIFO ties at equal timestamps keep the
  // destination's execution order deterministic.
  for (const Buffered& b : buffered_) {
    Port& port = ports_[b.port];
    if (port.world != nullptr) {
      // Deliveries fire only at negotiated boundaries, so every
      // destination world's clock is <= b.when here.
      port.world->queue().schedule_at(
          b.when, [fn = &port.deliver, frame = b.frame, when = b.when] {
            (*fn)(frame, when);
          });
    } else {
      port.deliver(b.frame, b.when);
    }
  }
  buffered_.clear();
}

}  // namespace iecd::cosim
