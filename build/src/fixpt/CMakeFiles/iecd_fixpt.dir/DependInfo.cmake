
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fixpt/autoscale.cpp" "src/fixpt/CMakeFiles/iecd_fixpt.dir/autoscale.cpp.o" "gcc" "src/fixpt/CMakeFiles/iecd_fixpt.dir/autoscale.cpp.o.d"
  "/root/repo/src/fixpt/format.cpp" "src/fixpt/CMakeFiles/iecd_fixpt.dir/format.cpp.o" "gcc" "src/fixpt/CMakeFiles/iecd_fixpt.dir/format.cpp.o.d"
  "/root/repo/src/fixpt/value.cpp" "src/fixpt/CMakeFiles/iecd_fixpt.dir/value.cpp.o" "gcc" "src/fixpt/CMakeFiles/iecd_fixpt.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/iecd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
