/// \file encoder.hpp
/// Incremental rotary encoder (IRC): converts the motor shaft angle into
/// quadrature counts and index pulses feeding the quadrature-decoder
/// peripheral — the case study's feedback path (100 lines -> 400 counts per
/// revolution, one index pulse per revolution).  Coupling is polled: the
/// encoder samples the shaft at a fixed fine interval and pushes the count
/// delta; at the poll rates used (>= 10 kHz) this is indistinguishable from
/// per-edge coupling for control purposes while keeping the event queue
/// small.
#pragma once

#include <cmath>
#include <functional>

#include "periph/quadrature_decoder.hpp"
#include "plant/dc_motor.hpp"
#include "sim/world.hpp"

namespace iecd::plant {

struct EncoderParams {
  int lines = 100;  ///< optical lines; counts per rev = 4 * lines
  sim::SimTime poll_interval = sim::microseconds(50);
};

class IncrementalEncoder : public sim::Component {
 public:
  IncrementalEncoder(sim::World& world, DcMotorSim& motor,
                     periph::QuadDecPeripheral& qdec, EncoderParams params,
                     std::string name = "encoder");

  const std::string& name() const override { return name_; }
  void reset() override;

  /// Starts the polling loop (idempotent).
  void start();

  int counts_per_rev() const { return params_.lines * 4; }
  std::int64_t total_counts() const { return last_counts_; }

  /// Fault-injection hook (see src/fault/): maps the true count delta of a
  /// poll to the delta actually pushed into the decoder — EMI edges, missed
  /// transitions.  Consulted once per poll; the encoder keeps tracking the
  /// true shaft count, so an injected glitch is a persistent decoder offset
  /// (exactly what a real miscount does until the next index/homing).  Null
  /// (the default) or an identity hook leaves the count stream untouched.
  using CountFaultHook = std::function<std::int32_t(std::int32_t true_delta)>;
  void set_count_fault_hook(CountFaultHook hook) {
    fault_hook_ = std::move(hook);
  }

 private:
  void poll();

  sim::World& world_;
  DcMotorSim& motor_;
  periph::QuadDecPeripheral& qdec_;
  EncoderParams params_;
  std::string name_;
  bool running_ = false;
  CountFaultHook fault_hook_;
  sim::EventId poll_event_ = 0;
  std::int64_t last_counts_ = 0;
  std::int64_t last_index_rev_ = 0;
};

}  // namespace iecd::plant
