# Empty compiler generated dependencies file for bench_e9_engine.
# This may be replaced when dependencies are built.
