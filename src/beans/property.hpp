/// \file property.hpp
/// Typed, validated bean properties — the data model behind the Bean
/// Inspector (paper Fig. 4.1).  Every settable aspect of a bean is a
/// property with a declared type, range or choice list; writes are checked
/// immediately and rejected with a diagnostic instead of silently
/// configuring the hardware wrong ("the selected parameters are verified by
/// PE").  Derived (read-only) properties carry values the expert system
/// computed, e.g. the achieved timer period.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "util/diagnostics.hpp"

namespace iecd::beans {

using PropertyValue = std::variant<bool, std::int64_t, double, std::string>;

enum class PropertyType { kBool, kInt, kReal, kEnum, kString };

const char* to_string(PropertyType type);
std::string value_to_string(const PropertyValue& value);

struct PropertySpec {
  std::string name;
  PropertyType type = PropertyType::kString;
  std::string description;
  PropertyValue default_value;
  bool read_only = false;  ///< derived by the expert system, not user-set

  // Range constraints (ints / reals).
  std::optional<std::int64_t> int_min;
  std::optional<std::int64_t> int_max;
  std::optional<double> real_min;
  std::optional<double> real_max;

  // Choice list (enums).
  std::vector<std::string> choices;

  static PropertySpec boolean(std::string name, bool dflt, std::string desc);
  static PropertySpec integer(std::string name, std::int64_t dflt,
                              std::int64_t min, std::int64_t max,
                              std::string desc);
  static PropertySpec real(std::string name, double dflt, double min,
                           double max, std::string desc);
  static PropertySpec enumeration(std::string name, std::string dflt,
                                  std::vector<std::string> choices,
                                  std::string desc);
  static PropertySpec text(std::string name, std::string dflt,
                           std::string desc);

  PropertySpec& derived() {
    read_only = true;
    return *this;
  }
};

/// An ordered collection of properties with immediate validation.
class PropertySet {
 public:
  /// Declares a property; the value starts at the spec default.
  void declare(PropertySpec spec);

  bool has(const std::string& name) const;
  const PropertySpec& spec(const std::string& name) const;
  const std::vector<PropertySpec>& specs() const { return specs_; }

  /// Validated user write.  Appends diagnostics (type mismatch, range,
  /// unknown name, read-only) under component "\p owner.\p name" and
  /// returns true only if the value was accepted.
  bool set(const std::string& owner, const std::string& name,
           const PropertyValue& value, util::DiagnosticList& diagnostics);

  /// Unchecked write used by the expert system for derived properties.
  void set_derived(const std::string& name, const PropertyValue& value);

  const PropertyValue& get(const std::string& name) const;
  bool get_bool(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_real(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;

  /// Bean-Inspector-style listing: one "name = value  (description)" line
  /// per property, derived ones marked.
  std::string render() const;

 private:
  std::size_t index_of(const std::string& name) const;

  std::vector<PropertySpec> specs_;
  std::vector<PropertyValue> values_;
};

}  // namespace iecd::beans
