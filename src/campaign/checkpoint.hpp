/// \file checkpoint.hpp
/// Run-granular campaign checkpoints: the folded-prefix state a streaming
/// campaign needs to resume exactly where it stopped.  A checkpoint is a
/// regular evidence artifact (format.hpp container, schema
/// kSchemaCampaignCheckpoint) holding
///
///   * the campaign identity (name, config hash, total runs),
///   * the completed-run watermark — every run below it is folded into the
///     merged state and, when per-run artifacts are on, sealed on disk,
///   * the merged MetricsRegistry as ordinary metric records (the
///     reader's exact raw-state round trip: counter values, RunningStats
///     {count, mean, m2, sum, min, max}, series samples and histogram bins
///     all travel as little-endian integers / IEEE-754 bit patterns),
///   * an opaque state blob carrying what the metric records cannot: the
///     merged obs::HealthReport (full TimingMonitor / WatermarkMonitor /
///     LatencyHistogram raw state, including the jitter seam) plus the
///     unrecovered-run indices and their retained health reports.
///
/// Because every field round-trips bit-exactly, a campaign resumed from a
/// checkpoint produces a merged report — and an evidence manifest — that
/// is byte-identical to the uninterrupted run's (the kill/resume suite
/// locks this).  Checkpoint size is O(sites + histograms + unrecovered),
/// never O(runs).
///
/// The config hash covers everything that determines per-run RESULTS
/// (name, seed, run count, lane-batch width, every FaultPlan field as its
/// exact bit pattern) and deliberately excludes pure scheduling knobs
/// (threads, window, chunk, stealing) — a campaign checkpointed on 8
/// threads resumes bit-identically on 2.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "evidence/format.hpp"
#include "fault/campaign.hpp"
#include "obs/health_report.hpp"
#include "trace/metrics.hpp"

namespace iecd::campaign {

/// Everything a resumed campaign starts from.
struct CheckpointState {
  std::string name;
  std::uint64_t config_hash = 0;
  std::uint64_t total_runs = 0;
  /// Runs [0, watermark) are folded into the state below (and their
  /// artifacts sealed on disk when per-run evidence is enabled).  Always
  /// lane-group aligned — the engine seals only at group boundaries, so a
  /// resume reproduces the uninterrupted run's exact group structure.
  std::uint64_t watermark = 0;

  trace::MetricsRegistry merged;  ///< index-order fold of runs [0, watermark)
  obs::HealthReport health;       ///< same fold (runs counts folded runs)
  std::vector<std::size_t> unrecovered_runs;  ///< ascending, all < watermark
  std::map<std::size_t, obs::HealthReport> unrecovered_health;
};

enum class CheckpointStatus {
  kOk = 0,
  kMissing,   ///< no checkpoint file at the path
  kCorrupt,   ///< artifact fails verification or the state blob is malformed
};

/// FNV-1a 64 over the result-determining campaign configuration: name,
/// seed, runs, batch and every FaultPlan field (doubles hashed as their
/// IEEE-754 bit pattern).  Scheduling knobs are excluded on purpose (see
/// file comment).
std::uint64_t campaign_config_hash(const fault::CampaignOptions& options);

/// Seals \p state into an evidence artifact and writes it atomically
/// (tmp + rename), so a crash mid-write can never leave a torn checkpoint
/// behind — the previous one stays intact until the new bytes are on disk.
bool save_checkpoint(const std::string& path, const CheckpointState& state);

/// Loads and verifies a checkpoint.  On kOk \p out carries the exact state
/// save_checkpoint serialized; on anything else \p out is unspecified and
/// the caller starts fresh (a lost checkpoint only costs recomputation —
/// never correctness).
CheckpointStatus load_checkpoint(const std::string& path,
                                 CheckpointState& out);

/// HealthReport raw-state codec (exposed for the round-trip tests): every
/// monitor serialized field-exactly, doubles as bit patterns.
void encode_health_report(std::vector<std::uint8_t>& out,
                          const obs::HealthReport& report);
bool decode_health_report(evidence::PayloadCursor& cur,
                          obs::HealthReport& out);

}  // namespace iecd::campaign
