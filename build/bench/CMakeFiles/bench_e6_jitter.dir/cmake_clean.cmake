file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_jitter.dir/bench_e6_jitter.cpp.o"
  "CMakeFiles/bench_e6_jitter.dir/bench_e6_jitter.cpp.o.d"
  "bench_e6_jitter"
  "bench_e6_jitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
