/// \file mcu.hpp
/// The simulated microcontroller: clock + interrupt controller + CPU +
/// memory map, instantiated from a DerivativeSpec and living inside a
/// co-simulation World.  Peripherals attach themselves to an Mcu.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mcu/clock.hpp"
#include "mcu/cpu.hpp"
#include "mcu/derivative.hpp"
#include "mcu/interrupt_controller.hpp"
#include "mcu/memory.hpp"
#include "sim/world.hpp"

namespace iecd::mcu {

class Mcu : public sim::Component {
 public:
  Mcu(sim::World& world, const DerivativeSpec& spec,
      std::string name = "mcu");

  const std::string& name() const override { return name_; }
  void reset() override;

  const DerivativeSpec& spec() const { return spec_; }
  const Clock& clock() const { return clock_; }
  Cpu& cpu() { return cpu_; }
  const Cpu& cpu() const { return cpu_; }
  InterruptController& intc() { return intc_; }
  MemoryMap& memory() { return memory_; }
  const MemoryMap& memory() const { return memory_; }

  sim::World& world() { return world_; }
  sim::EventQueue& queue() { return world_.queue(); }
  sim::SimTime now() const { return world_.now(); }

  /// Raises an interrupt and wakes the CPU — the path every peripheral
  /// uses to signal an event.
  void raise_irq(IrqVector vec);

  /// Registers a peripheral reset hook (peripherals own their state; the
  /// MCU just forwards reset()).
  void add_reset_hook(std::function<void()> hook);

 private:
  sim::World& world_;
  std::string name_;
  DerivativeSpec spec_;
  Clock clock_;
  InterruptController intc_;
  Cpu cpu_;
  MemoryMap memory_;
  std::vector<std::function<void()>> reset_hooks_;
};

}  // namespace iecd::mcu
