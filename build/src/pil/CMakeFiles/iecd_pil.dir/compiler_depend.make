# Empty compiler generated dependencies file for iecd_pil.
# This may be replaced when dependencies are built.
