#include "mcu/cpu.hpp"

#include <algorithm>

#include "trace/trace.hpp"

namespace iecd::mcu {

Cpu::Cpu(sim::EventQueue& queue, const Clock& clock, const CostModel& costs,
         InterruptController& intc)
    : queue_(queue), clock_(clock), costs_(costs), intc_(intc) {}

void Cpu::set_background(std::function<std::uint64_t()> chunk) {
  background_ = std::move(chunk);
}

void Cpu::set_dispatch_observer(
    std::function<void(const DispatchRecord&)> obs) {
  observer_ = std::move(obs);
}

void Cpu::set_dispatch_fault(
    std::function<std::uint64_t(const DispatchRecord&)> fault) {
  dispatch_fault_ = std::move(fault);
}

void Cpu::set_main_stack_bytes(std::uint32_t bytes) {
  main_stack_ = bytes;
  max_stack_ = std::max(max_stack_, bytes);
}

void Cpu::kick() {
  if (busy_) return;  // completion handler will re-check pending vectors
  dispatch_next();
}

void Cpu::dispatch_next() {
  const IrqVector vec = intc_.acknowledge();
  if (vec < 0) {
    run_background();
    return;
  }
  const IsrHandler& handler = intc_.handler(vec);
  busy_ = true;

  DispatchRecord rec;
  rec.vec = vec;
  rec.name = handler.name;
  rec.raise_time = intc_.last_raise_time();
  rec.start_time = queue_.now();

  max_stack_ = std::max(max_stack_, main_stack_ + handler.stack_bytes);

  // The body runs logically at dispatch time (inputs sampled now); outputs
  // commit when the ISR retires, entry + body + exit cycles later.
  rec.body_cycles = handler.body();
  std::uint64_t total_cycles =
      costs_.isr_entry + rec.body_cycles + costs_.isr_exit;
  if (dispatch_fault_) total_cycles += dispatch_fault_(rec);
  const sim::SimTime duration = clock_.cycles_to_time(total_cycles);
  busy_time_ += duration;

  queue_.schedule_in(duration, [this, rec]() mutable {
    const IsrHandler& h = intc_.handler(rec.vec);
    if (h.commit) h.commit();
    rec.end_time = queue_.now();
    busy_ = false;
    ++dispatches_;
    if (auto* tr = trace::recorder()) {
      // The dispatch slice (service start -> retire) carries the body
      // cycles; the response-time counter is raise -> service start.
      tr->span_complete("mcu", rec.name, "cpu", rec.start_time, rec.end_time,
                        static_cast<double>(rec.body_cycles));
      tr->counter("mcu", "response_us", "cpu", rec.start_time,
                  sim::to_microseconds(rec.start_time - rec.raise_time));
    }
    if (observer_) observer_(rec);
    dispatch_next();
  });
}

void Cpu::run_background() {
  if (!background_) return;
  const std::uint64_t cycles = background_();
  if (cycles == 0) return;  // idle until next kick
  busy_ = true;
  const sim::SimTime duration = clock_.cycles_to_time(cycles);
  busy_time_ += duration;
  const sim::SimTime started = queue_.now();
  queue_.schedule_in(duration, [this, started, cycles] {
    busy_ = false;
    if (auto* tr = trace::recorder()) {
      tr->span_complete("mcu", "background", "cpu", started, queue_.now(),
                        static_cast<double>(cycles));
    }
    dispatch_next();
  });
}

void Cpu::reset() {
  busy_ = false;
  busy_time_ = 0;
  dispatches_ = 0;
  max_stack_ = main_stack_;
}

}  // namespace iecd::mcu
