// E10 (extension) — networked control over CAN.  The paper's Section 1:
// "The digital control theory normally assumes equidistant sampling
// intervals and a negligible or constant control delay ... this can seldom
// be achieved in practice in a networked embedded system.  Timing
// variations in sampling periods and latencies degrade the control
// performance."  The distributed servo makes that measurable: control
// cost vs bus bit rate, and vs higher-priority background traffic.
//
// Both sweeps (plus the reference run) fan out through exec::SweepRunner;
// results are read back per-run in index order, so the tables match a
// sequential execution byte for byte.  The rig itself executes on the
// co-simulation master (src/cosim/) since the distributed rebase; the
// regression suite locks its metrics to the monolithic goldens.
//
// Workload overrides (bench_util.hpp): --threads=N sets the sweep fan-out
// width, --runs=N repeats every point N times (throughput measurement —
// the runs/s column scales accordingly; metrics are identical per repeat).
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "core/distributed.hpp"
#include "exec/sweep.hpp"

using namespace iecd;

namespace {

constexpr std::uint32_t kBitrates[] = {1000000, 500000, 250000, 125000,
                                       100000};
constexpr double kTrafficRates[] = {0.0, 500.0, 1000.0, 2000.0, 3000.0};
constexpr std::size_t kBitrateCount = std::size(kBitrates);
constexpr std::size_t kTrafficCount = std::size(kTrafficRates);
// Scenario index layout: 0 = reference, then bit rates, then traffic rates.
constexpr std::size_t kPointCount = 1 + kBitrateCount + kTrafficCount;

// Three MCU nodes share the bus (sensor, controller, actuator) — the
// summary key the E15 cosim bench scales past.
constexpr double kNodeCount = 3.0;

std::size_t point_repeats() {
  return bench::overrides().runs > 0 ? bench::overrides().runs : 1;
}

core::DistributedConfig base_config() {
  core::DistributedConfig cfg;
  cfg.duration_s = bench::smoke() ? 0.3 : 2.0;
  return cfg;
}

void run_point(std::size_t index, trace::MetricsRegistry& m) {
  auto cfg = base_config();
  if (index >= 1 && index <= kBitrateCount) {
    cfg.can_bitrate = kBitrates[index - 1];
  } else if (index > kBitrateCount) {
    cfg.background_frames_per_s = kTrafficRates[index - 1 - kBitrateCount];
  }
  const std::size_t reps = point_repeats();
  bench::Stopwatch watch;
  core::DistributedResult r = core::run_distributed_servo(cfg);
  for (std::size_t rep = 1; rep < reps; ++rep) {
    r = core::run_distributed_servo(cfg);  // deterministic: identical runs
  }
  m.gauge("wall_ms") = watch.elapsed_ms();
  m.gauge("runs_per_s") = m.gauge("wall_ms") > 0.0
                              ? 1000.0 * static_cast<double>(reps) /
                                    m.gauge("wall_ms")
                              : 0.0;
  m.gauge("iae") = r.iae;
  m.gauge("lat_mean") = r.loop_latency_us_mean;
  m.gauge("lat_max") = r.loop_latency_us_max;
  m.gauge("lat_p99") = r.loop_latency_us_p99;
  m.gauge("busy") = r.bus_utilisation;
  m.gauge("overshoot") = r.metrics.overshoot_percent;
  m.gauge("settled") = r.metrics.settled ? 1.0 : 0.0;
  m.gauge("overruns") = static_cast<double>(r.controller_rx_overruns);
  m.gauge("loops") = static_cast<double>(r.loop_samples);
  m.gauge("misses") = static_cast<double>(r.loop_deadline_misses);
  if (r.frames_delivered > 0) {
    m.gauge("events_per_frame") = static_cast<double>(r.events_executed) /
                                  static_cast<double>(r.frames_delivered);
  }
}

void print_table() {
  std::printf("E10: distributed servo over CAN (sensor/controller/actuator "
              "nodes)\n\n");

  exec::SweepOptions opts;
  if (bench::overrides().threads > 0) {
    opts.threads = bench::overrides().threads;
  }
  exec::SweepRunner runner(opts);
  bench::Stopwatch sw;
  const auto res = runner.run(kPointCount, run_point);
  const double wall_ms = sw.elapsed_ms();

  const auto g = [&res](std::size_t i, const char* name) {
    const double* v = res.per_run[i].find_gauge(name);
    return v ? *v : 0.0;
  };

  std::printf("reference (500 kbit/s, idle bus): IAE %.3f, latency %.0f us "
              "mean / %.0f us p99, %.0f/%.0f deadline misses, %.1f "
              "events/frame, %.1f runs/s\n\n",
              g(0, "iae"), g(0, "lat_mean"), g(0, "lat_p99"),
              g(0, "misses"), g(0, "loops"), g(0, "events_per_frame"),
              g(0, "runs_per_s"));
  bench::summarize("nodes", kNodeCount);
  bench::summarize("ref.iae", g(0, "iae"));
  bench::summarize("ref.latency_us", g(0, "lat_mean"));
  bench::summarize("ref.latency_us_p99", g(0, "lat_p99"));
  bench::summarize("ref.deadline_misses", g(0, "misses"));
  bench::summarize("ref.loops", g(0, "loops"));
  bench::summarize("ref.events_per_frame", g(0, "events_per_frame"));
  bench::summarize("ref.runs_per_s", g(0, "runs_per_s"));

  std::printf("(a) bus bit-rate sweep\n\n");
  std::printf("%-10s | %-10s %-14s %-12s %-8s %-10s %-9s %-9s\n", "bitrate",
              "IAE", "latency[us]", "bus busy[%]", "misses", "over[%]",
              "settled", "runs/s");
  bench::print_rule(92);
  for (std::size_t b = 0; b < kBitrateCount; ++b) {
    const std::size_t i = 1 + b;
    std::printf("%-10u | %-10.3f %6.0f/%-6.0f %-12.1f %-8.0f %-10.2f "
                "%-9s %-9.1f\n",
                kBitrates[b], g(i, "iae"), g(i, "lat_mean"), g(i, "lat_max"),
                g(i, "busy") * 100.0, g(i, "misses"), g(i, "overshoot"),
                g(i, "settled") != 0.0 ? "yes" : "NO", g(i, "runs_per_s"));
    const std::string key = "can." + std::to_string(kBitrates[b]);
    bench::summarize(key + ".iae", g(i, "iae"));
    bench::summarize(key + ".latency_us", g(i, "lat_mean"));
    bench::summarize(key + ".latency_us_p99", g(i, "lat_p99"));
    bench::summarize(key + ".deadline_misses", g(i, "misses"));
  }

  std::printf("\n(b) background traffic sweep (higher-priority frames, "
              "500 kbit/s)\n\n");
  std::printf("%-12s | %-10s %-14s %-12s %-8s %-10s %-9s %-9s\n", "frames/s",
              "IAE", "latency[us]", "bus busy[%]", "misses", "overruns",
              "settled", "runs/s");
  bench::print_rule(94);
  for (std::size_t t = 0; t < kTrafficCount; ++t) {
    const std::size_t i = 1 + kBitrateCount + t;
    std::printf("%-12.0f | %-10.3f %6.0f/%-6.0f %-12.1f %-8.0f %-10.0f "
                "%-9s %-9.1f\n",
                kTrafficRates[t], g(i, "iae"), g(i, "lat_mean"),
                g(i, "lat_max"), g(i, "busy") * 100.0, g(i, "misses"),
                g(i, "overruns"), g(i, "settled") != 0.0 ? "yes" : "NO",
                g(i, "runs_per_s"));
    const std::string key =
        "traffic." + std::to_string(static_cast<int>(kTrafficRates[t]));
    bench::summarize(key + ".iae", g(i, "iae"));
    bench::summarize(key + ".latency_us", g(i, "lat_mean"));
    bench::summarize(key + ".latency_us_p99", g(i, "lat_p99"));
    bench::summarize(key + ".deadline_misses", g(i, "misses"));
    bench::summarize(key + ".overruns", g(i, "overruns"));
  }

  std::printf("\nsweep wall time: %.1f ms across %zu points (%zu threads)\n",
              wall_ms, res.runs, res.threads_used);
  bench::summarize("sweep.wall_ms", wall_ms);

  std::printf("\nexpected shape: latency (and with it the control cost) "
              "grows as the bus slows\nor fills; at saturation the loop "
              "degrades the way Section 1 describes.\n\n");
}

void BM_DistributedRun(benchmark::State& state) {
  for (auto _ : state) {
    core::DistributedConfig cfg;
    cfg.duration_s = 0.4;
    auto r = core::run_distributed_servo(cfg);
    benchmark::DoNotOptimize(r.iae);
  }
}
BENCHMARK(BM_DistributedRun)->Unit(benchmark::kMillisecond);

}  // namespace

IECD_BENCH_MAIN(print_table)
