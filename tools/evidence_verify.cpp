// evidence_verify — validates IECD evidence artifacts and re-exports
// their content through the existing trace/metrics paths.
//
//   evidence_verify run_0000.evd [more.evd ...]
//       verify each artifact: header, schema compatibility, record
//       stream, chained record hash, SHA-256 digest, footer.
//   evidence_verify --manifest evidence_out/MANIFEST.jsonl
//       verify every artifact the manifest lists against its pinned
//       digest.
//   evidence_verify --export-chrome out.json artifact.evd
//   evidence_verify --export-csv out.csv artifact.evd
//   evidence_verify --export-metrics out.csv artifact.evd
//       verify, then re-export the artifact's trace (Chrome trace-event
//       JSON / trace CSV) or its rebuilt MetricsRegistry (metrics CSV).
//   --json   print one JSON verification report per artifact
//   --quiet  suppress PASS lines (failures always print)
//
// Exit code: 0 when everything passed, 1 on any verification failure,
// 2 on usage errors.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "evidence/sink.hpp"
#include "evidence/verify.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: evidence_verify [--quiet] [--json] artifact.evd ...\n"
      "       evidence_verify --manifest MANIFEST.jsonl\n"
      "       evidence_verify --export-chrome OUT artifact.evd\n"
      "       evidence_verify --export-csv OUT artifact.evd\n"
      "       evidence_verify --export-metrics OUT artifact.evd\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iecd::evidence;

  bool quiet = false;
  bool json = false;
  std::string manifest;
  std::string export_kind;
  std::string export_out;
  std::vector<std::string> artifacts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](std::string& out) {
      if (i + 1 >= argc) return false;
      out = argv[++i];
      return true;
    };
    if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--manifest") {
      if (!next(manifest)) return usage();
    } else if (arg == "--export-chrome" || arg == "--export-csv" ||
               arg == "--export-metrics") {
      export_kind = arg;
      if (!next(export_out)) return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage();
    } else {
      artifacts.push_back(arg);
    }
  }

  // ------------------------------------------------------------ manifest
  if (!manifest.empty()) {
    if (!artifacts.empty() || !export_kind.empty()) return usage();
    const ManifestVerifyResult result = verify_manifest(manifest);
    if (!result.error.empty()) {
      std::fprintf(stderr, "FAIL %s: %s\n", manifest.c_str(),
                   result.error.c_str());
      return 1;
    }
    for (const auto& entry : result.entries) {
      if (entry.verified) {
        if (!quiet) {
          std::printf("PASS %s (%s)\n", entry.path.c_str(),
                      entry.sha256_hex.substr(0, 12).c_str());
        }
      } else {
        std::printf("FAIL %s: %s\n", entry.path.c_str(),
                    entry.error.c_str());
      }
    }
    std::printf("manifest %s: %zu/%zu artifacts verified\n",
                manifest.c_str(), result.passed, result.entries.size());
    return result.ok ? 0 : 1;
  }

  if (artifacts.empty()) return usage();

  // ------------------------------------------------------------- exports
  if (!export_kind.empty()) {
    if (artifacts.size() != 1) return usage();
    std::string error;
    bool ok = false;
    if (export_kind == "--export-chrome") {
      ok = reexport_chrome_trace(artifacts[0], export_out, &error);
    } else if (export_kind == "--export-csv") {
      ok = reexport_trace_csv(artifacts[0], export_out, &error);
    } else {
      ok = reexport_metrics_csv(artifacts[0], export_out, &error);
    }
    if (!ok) {
      std::fprintf(stderr, "FAIL %s: %s\n", artifacts[0].c_str(),
                   error.c_str());
      return 1;
    }
    if (!quiet) {
      std::printf("exported %s -> %s\n", artifacts[0].c_str(),
                  export_out.c_str());
    }
    return 0;
  }

  // --------------------------------------------------------- plain verify
  int failures = 0;
  for (const auto& path : artifacts) {
    const VerifyResult result = verify_artifact_file(path);
    if (json) {
      std::printf("%s\n", result.to_json().c_str());
    } else if (!result.ok || !quiet) {
      std::printf("%s\n", result.summary().c_str());
    }
    if (!result.ok) ++failures;
  }
  return failures == 0 ? 0 : 1;
}
