/// \file memory.hpp
/// Program/data memory accounting for the simulated MCU.  The PIL phase of
/// the paper reports "memory and stack requirements"; the code generator
/// charges flash (code + const tables) and RAM (signal arena + states +
/// stack) against the derivative's capacity and the expert system flags
/// overflows.
#pragma once

#include <cstdint>
#include <string>

#include "util/diagnostics.hpp"

namespace iecd::mcu {

struct MemoryCapacity {
  std::uint32_t flash_bytes = 0;
  std::uint32_t ram_bytes = 0;
};

class MemoryMap {
 public:
  explicit MemoryMap(MemoryCapacity capacity) : capacity_(capacity) {}

  void charge_flash(std::uint32_t bytes, const std::string& what);
  void charge_ram(std::uint32_t bytes, const std::string& what);

  std::uint32_t flash_used() const { return flash_used_; }
  std::uint32_t ram_used() const { return ram_used_; }
  const MemoryCapacity& capacity() const { return capacity_; }

  double flash_utilisation() const;
  double ram_utilisation() const;

  /// Emits errors for over-capacity sections.
  void validate(util::DiagnosticList& diagnostics) const;

  /// Human-readable footprint summary.
  std::string report() const;

  void reset();

 private:
  MemoryCapacity capacity_;
  std::uint32_t flash_used_ = 0;
  std::uint32_t ram_used_ = 0;
  std::string breakdown_;
};

}  // namespace iecd::mcu
