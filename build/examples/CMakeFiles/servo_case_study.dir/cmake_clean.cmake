file(REMOVE_RECURSE
  "CMakeFiles/servo_case_study.dir/servo_case_study.cpp.o"
  "CMakeFiles/servo_case_study.dir/servo_case_study.cpp.o.d"
  "servo_case_study"
  "servo_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/servo_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
