#include "core/distributed.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numbers>
#include <optional>

#include "cosim/master.hpp"
#include "cosim/nodes.hpp"
#include "util/statistics.hpp"

namespace iecd::core {

namespace {

/// Packs/unpacks the 16-bit payload fields of the demo frames.
void put_u16(sim::CanPayload& data, std::uint16_t v) {
  data.push_back(static_cast<std::uint8_t>(v & 0xFF));
  data.push_back(static_cast<std::uint8_t>(v >> 8));
}

std::uint16_t get_u16(const sim::CanPayload& data, std::size_t offset) {
  return static_cast<std::uint16_t>(data[offset] |
                                    (data[offset + 1] << 8));
}

}  // namespace

// The rig runs on the co-simulation master (src/cosim/) as a 2-component
// topology plus background chatter:
//
//   plant_rig  : sensor MCU + actuator MCU + motor + encoder + probe (the
//                tightly coupled physical side stays in ONE world, so the
//                PWM->motor and shaft->QDEC couplings never cross a
//                boundary)
//   controller : the controller MCU alone
//   chatter    : lightweight traffic generator (model fidelity)
//
// The only cross-component interaction is CAN frames over the shared-bus
// coupling; the step-negotiation loop advances each component exactly to
// the global next-event time, so every ISR, frame delivery and probe fires
// at the same absolute instant as in the former monolithic single-world
// implementation — the distributed regression test locks the metrics to
// the monolithic goldens bit-for-bit.
DistributedResult run_distributed_servo(const DistributedConfig& config) {
  cosim::SharedCanBus bus("can0", config.can_bitrate);
  cosim::WorldComponent rig("plant_rig");
  cosim::WorldComponent ctrl_component("controller");
  sim::World& rig_world = rig.world();
  sim::World& ctrl_world = ctrl_component.world();

  const auto& derivative = mcu::find_derivative(mcu::kDefaultDerivative);
  mcu::Mcu sensor_mcu(rig_world, derivative, "sensor_node");
  mcu::Mcu ctrl_mcu(ctrl_world, derivative, "controller_node");
  mcu::Mcu act_mcu(rig_world, derivative, "actuator_node");

  // --- Sensor node: QDEC + periodic broadcast -------------------------
  beans::BeanProject sensor_project("sensor");
  auto& qd = sensor_project.add<beans::QuadDecBean>("QD1");
  auto& timer = sensor_project.add<beans::TimerIntBean>("TI1");
  auto& sensor_can = sensor_project.add<beans::CanBean>("CAN1");
  {
    util::DiagnosticList d;
    qd.set_property("encoder_lines",
                    static_cast<std::int64_t>(config.encoder_lines), d);
    timer.set_property("period_s", config.period_s, d);
  }
  auto diags = sensor_project.validate();
  if (diags.has_errors()) {
    throw std::runtime_error("distributed sensor node: " + diags.to_string());
  }
  sensor_project.bind(sensor_mcu);
  bus.attach_controller(*sensor_can.peripheral());  // bus node 0

  // Latency instrumentation (simulation-side, not application code).
  std::map<std::uint8_t, sim::SimTime> sample_sent_at;
  util::SampleSeries loop_latency_us;

  std::uint8_t sensor_seq = 0;
  std::int16_t sensor_pos = 0;
  mcu::IsrHandler sensor_tick;
  sensor_tick.name = "sensor_tick";
  sensor_tick.body = [&]() -> std::uint64_t {
    sensor_pos = qd.GetPosition();
    return 120;  // read + pack
  };
  sensor_tick.commit = [&] {
    sim::CanFrame frame;
    frame.id = DistributedConfig::kSensorFrameId;
    put_u16(frame.data, static_cast<std::uint16_t>(sensor_pos));
    frame.data.push_back(sensor_seq);
    sample_sent_at[sensor_seq] = rig_world.now();
    ++sensor_seq;
    sensor_can.SendFrame(frame);
  };
  timer.set_event_handler("OnInterrupt", std::move(sensor_tick));

  // --- Controller node: speed estimation + PI over CAN ---------------
  beans::BeanProject ctrl_project("controller");
  auto& ctrl_can = ctrl_project.add<beans::CanBean>("CAN1");
  {
    util::DiagnosticList d;
    ctrl_can.set_property(
        "acceptance_id",
        static_cast<std::int64_t>(DistributedConfig::kSensorFrameId), d);
    ctrl_can.set_property("acceptance_mask", std::int64_t{0x7FF}, d);
  }
  ctrl_project.validate();
  ctrl_project.bind(ctrl_mcu);
  bus.attach_controller(*ctrl_can.peripheral());  // bus node 1

  const double counts_per_rev = config.encoder_lines * 4.0;
  const double speed_gain =
      2.0 * std::numbers::pi / (counts_per_rev * config.period_s);
  double prev_counts = 0.0;
  bool have_prev = false;
  double filt[4] = {0, 0, 0, 0};
  int filt_idx = 0;
  double integral = 0.0;
  double duty_cmd = 0.0;
  std::uint8_t ctrl_seq = 0;

  mcu::IsrHandler ctrl_rx;
  ctrl_rx.name = "ctrl_rx";
  ctrl_rx.body = [&]() -> std::uint64_t {
    const auto frame = ctrl_can.ReadFrame();
    if (!frame || frame->data.size() < 3) return 60;
    const auto pos =
        static_cast<std::int16_t>(get_u16(frame->data, 0));
    ctrl_seq = frame->data[2];
    const double counts = static_cast<double>(pos);
    double speed = 0.0;
    if (have_prev) {
      speed = std::remainder(counts - prev_counts, 65536.0) * speed_gain;
    }
    prev_counts = counts;
    have_prev = true;
    filt[filt_idx & 3] = speed;
    ++filt_idx;
    const double smoothed = (filt[0] + filt[1] + filt[2] + filt[3]) / 4.0;

    const double t = sim::to_seconds(ctrl_world.now());
    const double sp = t >= config.setpoint_time ? config.setpoint : 0.0;
    const double error = sp - smoothed;
    const double unsat = config.kp * error + integral;
    duty_cmd = std::clamp(unsat, 0.0, 1.0);
    // Back-calculation anti-windup, as in the single-node PI.
    integral += config.ki * config.period_s *
                (error + (duty_cmd - unsat) / std::max(config.kp, 1e-9));
    return 900;  // speed estimate + PI in software floating point
  };
  ctrl_rx.commit = [&] {
    sim::CanFrame frame;
    frame.id = DistributedConfig::kActuatorFrameId;
    put_u16(frame.data,
            static_cast<std::uint16_t>(std::lround(duty_cmd * 65535.0)));
    frame.data.push_back(ctrl_seq);
    ctrl_can.SendFrame(frame);
  };
  ctrl_can.set_event_handler("OnReceive", std::move(ctrl_rx));

  // --- Actuator node: PWM drive --------------------------------------
  beans::BeanProject act_project("actuator");
  auto& pwm = act_project.add<beans::PwmBean>("PWM1");
  auto& act_can = act_project.add<beans::CanBean>("CAN1");
  {
    util::DiagnosticList d;
    act_can.set_property(
        "acceptance_id",
        static_cast<std::int64_t>(DistributedConfig::kActuatorFrameId), d);
    act_can.set_property("acceptance_mask", std::int64_t{0x7FF}, d);
  }
  act_project.validate();
  act_project.bind(act_mcu);
  bus.attach_controller(*act_can.peripheral());  // bus node 2
  pwm.Enable();

  std::uint16_t duty_raw = 0;
  std::uint8_t act_seq = 0;
  bool have_frame = false;
  mcu::IsrHandler act_rx;
  act_rx.name = "act_rx";
  act_rx.body = [&]() -> std::uint64_t {
    const auto frame = act_can.ReadFrame();
    have_frame = frame.has_value() && frame->data.size() >= 3;
    if (have_frame) {
      duty_raw = get_u16(frame->data, 0);
      act_seq = frame->data[2];
    }
    return 90;
  };
  act_rx.commit = [&] {
    if (!have_frame) return;
    pwm.SetRatio16(duty_raw);
    const auto it = sample_sent_at.find(act_seq);
    if (it != sample_sent_at.end()) {
      loop_latency_us.add(sim::to_microseconds(rig_world.now() - it->second));
      sample_sent_at.erase(it);
    }
  };
  act_can.set_event_handler("OnReceive", std::move(act_rx));

  // --- Plant: motor on the actuator's PWM, encoder on the sensor ------
  plant::DcMotorSim motor(rig_world, config.motor);
  motor.drive_from_duty(&pwm.peripheral()->average_output());
  plant::IncrementalEncoder encoder(
      rig_world, motor, *qd.peripheral(),
      {config.encoder_lines, sim::microseconds(50)});
  encoder.start();

  // --- Background chatter (higher-priority frames) --------------------
  std::optional<cosim::TrafficGenNode> chatter;
  if (config.background_frames_per_s > 0) {
    cosim::TrafficGenNode::Config traffic;
    traffic.frame_id = DistributedConfig::kBackgroundFrameId;
    traffic.frames_per_s = config.background_frames_per_s;
    chatter.emplace("chatter", traffic, bus);  // bus node 3
  }

  // --- Probe + run ----------------------------------------------------
  DistributedResult result;
  const sim::SimTime period = sim::from_seconds(config.period_s);
  auto probe = std::make_shared<std::function<void()>>();
  *probe = [&rig_world, &motor, &result, period, probe] {
    result.speed.record(sim::to_seconds(rig_world.now()),
                        motor.speed_at(rig_world.now()));
    rig_world.queue().schedule_in(period, *probe);
  };
  rig_world.queue().schedule_in(period, *probe);

  timer.Enable();

  cosim::Master master;
  master.add_coupling(bus);
  master.add(rig);
  master.add(ctrl_component);
  if (chatter) master.add(*chatter);
  const cosim::MasterStats stats =
      master.run_until(sim::from_seconds(config.duration_s));

  result.metrics = model::analyze_step(result.speed, config.setpoint,
                                       config.setpoint_time);
  result.iae =
      model::integral_absolute_error(result.speed, config.setpoint);
  result.events_executed = stats.events_executed;
  result.frames_delivered = bus.can().stats().frames_delivered;
  result.sensor_frames = sensor_can.peripheral()->frames_sent();
  result.actuator_frames = ctrl_can.peripheral()->frames_sent();
  result.background_frames = chatter ? chatter->sent() : 0;
  result.controller_rx_overruns = ctrl_can.peripheral()->overruns();
  result.bus_utilisation =
      bus.can().stats().utilisation(sim::from_seconds(config.duration_s));
  result.loop_latency_us_mean = loop_latency_us.mean();
  result.loop_latency_us_max = loop_latency_us.max();
  result.loop_latency_us_p99 = loop_latency_us.percentile(99.0);
  result.loop_samples = loop_latency_us.count();
  const double deadline_us = config.period_s * 1e6;
  for (double us : loop_latency_us.samples()) {
    if (us > deadline_us) ++result.loop_deadline_misses;
  }
  return result;
}

}  // namespace iecd::core
