/// \file bench_util.hpp
/// Shared helpers for the experiment benches: every bench binary first
/// prints its experiment table (the series EXPERIMENTS.md records), then
/// runs its google-benchmark microbenchmarks.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

namespace iecd::bench {

/// Wall-clock stopwatch for per-phase timings in the tables.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Standard bench main body: print the table, then run microbenchmarks.
#define IECD_BENCH_MAIN(print_table_fn)                       \
  int main(int argc, char** argv) {                           \
    print_table_fn();                                         \
    benchmark::Initialize(&argc, argv);                       \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) { \
      return 1;                                               \
    }                                                         \
    benchmark::RunSpecifiedBenchmarks();                      \
    benchmark::Shutdown();                                    \
    return 0;                                                 \
  }

}  // namespace iecd::bench
