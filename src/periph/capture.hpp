/// \file capture.hpp
/// Input-capture timer channel: timestamps input edges against the free-
/// running counter and reports the interval between captures — the classic
/// way to measure a pulse train's period (tachometers, PWM inputs) and the
/// software fallback for speed feedback on derivatives without a
/// quadrature decoder.
#pragma once

#include <cstdint>

#include "periph/peripheral.hpp"

namespace iecd::periph {

enum class CaptureEdge { kRising, kFalling, kBoth };

struct CaptureConfig {
  CaptureEdge edge = CaptureEdge::kRising;
  mcu::IrqVector capture_vector = -1;  ///< <0: no capture interrupt
};

class CapturePeripheral : public Peripheral {
 public:
  CapturePeripheral(mcu::Mcu& mcu, CaptureConfig config,
                    std::string name = "icu");

  const CaptureConfig& config() const { return config_; }

  /// External signal drive (from a PWM edge callback, an encoder channel,
  /// or any stimulus device).
  void input_edge(bool level);

  /// Interval between the last two qualifying captures (0 until two
  /// captures happened).
  sim::SimTime last_interval() const { return last_interval_; }
  sim::SimTime last_capture_time() const { return last_capture_; }
  std::uint64_t captures() const { return captures_; }

  /// Measured frequency from the last interval [Hz]; 0 if unknown.
  double measured_frequency_hz() const;

  void reset() override;

 private:
  bool qualifies(bool level) const;

  CaptureConfig config_;
  bool last_level_ = false;
  sim::SimTime last_capture_ = -1;
  sim::SimTime last_interval_ = 0;
  std::uint64_t captures_ = 0;
};

}  // namespace iecd::periph
