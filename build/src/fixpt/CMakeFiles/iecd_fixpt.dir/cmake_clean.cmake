file(REMOVE_RECURSE
  "CMakeFiles/iecd_fixpt.dir/autoscale.cpp.o"
  "CMakeFiles/iecd_fixpt.dir/autoscale.cpp.o.d"
  "CMakeFiles/iecd_fixpt.dir/format.cpp.o"
  "CMakeFiles/iecd_fixpt.dir/format.cpp.o.d"
  "CMakeFiles/iecd_fixpt.dir/value.cpp.o"
  "CMakeFiles/iecd_fixpt.dir/value.cpp.o.d"
  "libiecd_fixpt.a"
  "libiecd_fixpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iecd_fixpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
