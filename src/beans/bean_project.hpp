/// \file bean_project.hpp
/// The Processor Expert project: the CPU bean plus every peripheral bean of
/// the application, with the project-level expert system.  Validation runs
/// on every property edit (the Bean Inspector's "immediate verification"),
/// checks each bean against the selected derivative, sums resource demands
/// against the derivative's capacity, and rejects conflicting explicit
/// channel/pin claims.  Change notifications feed the PES_COM-style model
/// synchronisation layer in src/core/.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "beans/autosar.hpp"
#include "beans/bean.hpp"
#include "beans/cpu_bean.hpp"
#include "util/diagnostics.hpp"

namespace iecd::beans {

enum class ProjectChange { kAdded, kRemoved, kRenamed, kPropertyChanged,
                           kCpuChanged };

class BeanProject {
 public:
  explicit BeanProject(std::string name = "project",
                       const std::string& derivative = mcu::kDefaultDerivative);

  const std::string& name() const { return name_; }

  CpuBean& cpu() { return *cpu_; }
  const CpuBean& cpu() const { return *cpu_; }

  /// Retargets the project to another derivative and re-validates.
  util::DiagnosticList select_derivative(const std::string& derivative);

  /// Adds a bean of type T with a unique instance name.
  template <typename T, typename... Args>
  T& add(std::string instance_name, Args&&... args) {
    ensure_unique(instance_name);
    auto bean = std::make_unique<T>(std::move(instance_name),
                                    std::forward<Args>(args)...);
    T& ref = *bean;
    beans_.push_back(std::move(bean));
    notify(ProjectChange::kAdded, ref.name(), ref.type_name());
    return ref;
  }

  Bean* find(const std::string& instance_name);
  const Bean* find(const std::string& instance_name) const;

  bool remove(const std::string& instance_name);
  bool rename(const std::string& old_name, const std::string& new_name);

  const std::vector<std::unique_ptr<Bean>>& beans() const { return beans_; }

  /// Validated property edit with immediate whole-project re-validation —
  /// the returned diagnostics include both the write check and the expert
  /// system pass (exactly what the Bean Inspector shows on each change).
  util::DiagnosticList set_property(const std::string& bean,
                                    const std::string& property,
                                    const PropertyValue& value);

  /// Full expert-system pass.
  util::DiagnosticList validate();

  /// Binds every bean to the target MCU.  Throws std::logic_error when the
  /// last validation had errors (or none was run).
  void bind(mcu::Mcu& mcu);
  bool bound() const { return bound_; }
  BindContext* bind_context() { return bind_ctx_.get(); }

  /// Generated driver sources: one driver per bean plus the shared types
  /// header.  The API flavour selects between the PE bean methods and the
  /// AUTOSAR MCAL modules (the paper's two block-set variants).
  std::vector<DriverSource> generate_drivers(
      DriverApi api = DriverApi::kProcessorExpert) const;

  /// Whole-project Bean Inspector dump.
  std::string inspector_render() const;

  // --- Change notification (PES_COM substrate) ---
  using Observer =
      std::function<void(ProjectChange, const std::string& bean_name,
                         const std::string& detail)>;
  int add_observer(Observer observer);
  void remove_observer(int id);

 private:
  void ensure_unique(const std::string& instance_name) const;
  void notify(ProjectChange change, const std::string& bean_name,
              const std::string& detail);
  void check_aggregate_resources(const mcu::DerivativeSpec& cpu,
                                 util::DiagnosticList& diagnostics) const;
  void check_explicit_conflicts(util::DiagnosticList& diagnostics) const;

  std::string name_;
  std::unique_ptr<CpuBean> cpu_;
  std::vector<std::unique_ptr<Bean>> beans_;
  std::vector<std::pair<int, Observer>> observers_;
  int next_observer_id_ = 1;
  bool validated_ok_ = false;
  bool bound_ = false;
  std::unique_ptr<BindContext> bind_ctx_;
};

/// The shared PE_Types.h emitted once per project.
DriverSource pe_types_header();

}  // namespace iecd::beans
