#include "rt/schedulability.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace iecd::rt {

std::string SchedulabilityReport::to_string() const {
  std::string out = util::format("utilisation %.2f%%, %s\n",
                                 utilisation * 100.0,
                                 schedulable ? "SCHEDULABLE" : "NOT schedulable");
  for (const auto& t : tasks) {
    out += util::format(
        "  %-24s prio %-3d C=%8.1f us  T=%8.1f us  R<=%8.1f us  %s\n",
        t.name.c_str(), t.priority, t.wcet_s * 1e6, t.period_s * 1e6,
        t.bounded ? t.response_bound_s * 1e6 : 0.0,
        !t.bounded           ? "UNBOUNDED"
        : t.period_s <= 0    ? "(no deadline)"
        : t.deadline_met     ? "ok"
                             : "DEADLINE MISS");
  }
  return out;
}

SchedulabilityReport analyze_schedulability(
    const codegen::GeneratedApplication& app, const mcu::DerivativeSpec& cpu,
    const std::map<std::string, double>& event_interarrival_s) {
  SchedulabilityReport report;
  const double isr_overhead_s =
      static_cast<double>(cpu.costs.isr_entry + cpu.costs.isr_exit) /
      cpu.clock_hz;

  // Build the task models.  Priorities mirror the runtime's installation:
  // the periodic step runs at the timer's priority (we treat it as 0, the
  // best), event tasks follow in declaration order.
  int next_priority = 0;
  for (std::size_t i = 0; i < app.tasks.size(); ++i) {
    const auto& spec = app.tasks[i];
    AnalyzedTask t;
    t.name = spec.name;
    t.priority = next_priority++;
    t.wcet_s = static_cast<double>(app.task_cycles(i, cpu.costs)) /
                   cpu.clock_hz +
               isr_overhead_s;
    if (spec.trigger == codegen::TaskSpec::Trigger::kPeriodic) {
      t.period_s = spec.period_s;
    } else {
      const auto it = event_interarrival_s.find(spec.name);
      t.period_s = it != event_interarrival_s.end() ? it->second : 0.0;
    }
    report.tasks.push_back(t);
  }

  // Utilisation over tasks with known rates.
  for (const auto& t : report.tasks) {
    if (t.period_s > 0) report.utilisation += t.wcet_s / t.period_s;
  }

  // Non-preemptive response-time recurrence per task.
  for (auto& t : report.tasks) {
    // Blocking: the longest lower-priority execution that may be running.
    double blocking = 0.0;
    for (const auto& other : report.tasks) {
      if (other.priority > t.priority) {
        blocking = std::max(blocking, other.wcet_s);
      }
    }
    if (report.utilisation >= 1.0 && t.period_s > 0) {
      t.bounded = false;
      continue;
    }
    double response = blocking + t.wcet_s;
    bool converged = false;
    for (int iter = 0; iter < 1000; ++iter) {
      double interference = 0.0;
      for (const auto& other : report.tasks) {
        if (&other == &t) continue;
        if (other.priority >= t.priority) continue;  // not higher priority
        if (other.period_s <= 0) continue;  // unknown rate: excluded
        interference += std::ceil((response - t.wcet_s + 1e-12) /
                                  other.period_s) *
                        other.wcet_s;
      }
      const double next = blocking + t.wcet_s + interference;
      if (std::abs(next - response) < 1e-12) {
        converged = true;
        response = next;
        break;
      }
      response = next;
      if (t.period_s > 0 && response > 1000.0 * t.period_s) break;
    }
    t.bounded = converged;
    t.response_bound_s = converged ? response : 0.0;
    t.deadline_met =
        converged && (t.period_s <= 0 || response <= t.period_s + 1e-12);
  }

  report.schedulable =
      std::all_of(report.tasks.begin(), report.tasks.end(),
                  [](const AnalyzedTask& t) {
                    return t.bounded && (t.period_s <= 0 || t.deadline_met);
                  });
  return report;
}

}  // namespace iecd::rt
