#include "evidence/reader.hpp"

#include <cstring>
#include <fstream>

#include "evidence/hash.hpp"
#include "util/statistics.hpp"

namespace iecd::evidence {

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kBadMagic: return "bad magic";
    case Status::kBadVersion: return "unsupported format version";
    case Status::kBadHeader: return "malformed header";
    case Status::kBadSchema: return "bad schema section";
    case Status::kTruncated: return "truncated";
    case Status::kCorruptRecord: return "corrupt record";
    case Status::kChainMismatch: return "record chain hash mismatch";
    case Status::kDigestMismatch: return "sha256 digest mismatch";
    case Status::kBadFooter: return "malformed footer";
  }
  return "unknown";
}

EvidenceReader::EvidenceReader(const SchemaRegistry& registry)
    : registry_(registry) {}

Status EvidenceReader::fail(Status s, const std::string& message) {
  error_ = message;
  return s;
}

Status EvidenceReader::parse_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return fail(Status::kTruncated, "cannot open " + path);
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  return parse(bytes.data(), bytes.size());
}

Status EvidenceReader::parse(const std::uint8_t* data, std::size_t size) {
  // ------------------------------------------------------------- header
  if (size < kHeaderSize) {
    return fail(Status::kBadHeader, "file shorter than header");
  }
  if (std::memcmp(data, kHeaderMagic, 8) != 0) {
    return fail(Status::kBadMagic, "header magic mismatch");
  }
  const std::uint16_t version = load_le<std::uint16_t>(data + 8);
  const std::uint16_t header_size = load_le<std::uint16_t>(data + 10);
  const std::uint32_t schema_count = load_le<std::uint32_t>(data + 12);
  if (version > kFormatVersion) {
    return fail(Status::kBadVersion,
                "format version " + std::to_string(version) +
                    " newer than supported " +
                    std::to_string(kFormatVersion));
  }
  if (header_size < kHeaderSize || header_size > size) {
    return fail(Status::kBadHeader, "bad header size");
  }
  std::size_t pos = header_size;

  // ------------------------------------------------------ schema section
  for (std::uint32_t i = 0; i < schema_count; ++i) {
    if (size - pos < 4) {
      return fail(Status::kBadSchema, "schema section truncated");
    }
    const std::uint32_t len = load_le<std::uint32_t>(data + pos);
    pos += 4;
    if (len > kMaxPayload || size - pos < len) {
      return fail(Status::kBadSchema, "schema cell length out of bounds");
    }
    Schema schema;
    if (!SchemaRegistry::decode(data + pos, len, schema)) {
      return fail(Status::kBadSchema, "malformed schema definition");
    }
    pos += len;
    // Known ids must be compatible with this reader; unknown ids only
    // mean their records will be skipped.
    if (const Schema* own = registry_.find(schema.id)) {
      std::string why;
      if (!SchemaRegistry::compatible(schema, *own, &why)) {
        return fail(Status::kBadSchema, why);
      }
    }
    schemas_.push_back(std::move(schema));
  }

  // ------------------------------------------------------- record stream
  std::uint64_t chain = kChainSeed;
  std::uint64_t records = 0;
  for (;;) {
    if (size - pos < 4) {
      return fail(Status::kTruncated, "file ends inside record stream");
    }
    const std::uint32_t len = load_le<std::uint32_t>(data + pos);
    if (len == kFooterSentinel) break;
    if (len > kMaxPayload) {
      return fail(Status::kCorruptRecord, "record length out of bounds");
    }
    if (size - pos < std::size_t{8} + len) {
      return fail(Status::kTruncated, "file ends inside a record cell");
    }
    const std::uint16_t schema_id = load_le<std::uint16_t>(data + pos + 4);
    const std::uint8_t* payload = data + pos + 8;
    const Schema* own = registry_.find(schema_id);
    if (own == nullptr) {
      ++unknown_records_;
    } else {
      if (len < own->min_payload_size() ||
          !decode_record(schema_id, payload, len)) {
        return fail(Status::kCorruptRecord,
                    "malformed '" + own->name + "' record payload");
      }
    }
    chain = chain_update(chain, data + pos, std::size_t{8} + len);
    ++records;
    pos += std::size_t{8} + len;
  }

  // ------------------------------------------------------------- footer
  const std::size_t footer_start = pos;
  if (size - pos < kFooterSize) {
    return fail(Status::kTruncated, "file ends inside footer");
  }
  pos += 4;  // sentinel
  if (std::memcmp(data + pos, kFooterMagic, 8) != 0) {
    return fail(Status::kBadFooter, "footer magic mismatch");
  }
  pos += 8;
  record_count_ = load_le<std::uint64_t>(data + pos);
  pos += 8;
  chain_hash_ = load_le<std::uint64_t>(data + pos);
  pos += 8;
  std::array<std::uint8_t, 32> stored_digest;
  std::memcpy(stored_digest.data(), data + pos, 32);
  pos += 32;
  if (load_le<std::uint32_t>(data + pos) != kEndMagic) {
    return fail(Status::kBadFooter, "end magic mismatch");
  }
  pos += 4;
  if (pos != size) {
    return fail(Status::kBadFooter, "trailing bytes after footer");
  }
  sha256_hex_ = hex(stored_digest);

  if (record_count_ != records) {
    return fail(Status::kBadFooter,
                "footer record count " + std::to_string(record_count_) +
                    " != stream count " + std::to_string(records));
  }
  if (chain_hash_ != chain) {
    return fail(Status::kChainMismatch,
                "chain hash " + hex64(chain) + " != footer " +
                    hex64(chain_hash_));
  }
  const auto digest = Sha256::of(data, footer_start);
  if (digest != stored_digest) {
    return fail(Status::kDigestMismatch,
                "body sha256 " + hex(digest) + " != footer " + sha256_hex_);
  }
  return Status::kOk;
}

bool EvidenceReader::decode_record(std::uint16_t schema_id,
                                   const std::uint8_t* payload,
                                   std::size_t size) {
  PayloadCursor cur(payload, size);
  switch (schema_id) {
    case kSchemaStringIntern: {
      std::uint32_t id = 0;
      std::string str;
      if (!cur.read(id) || !cur.read_str(str)) return false;
      strings_[id] = std::move(str);
      return true;
    }
    case kSchemaTraceEvent: {
      DecodedEvent ev;
      std::uint32_t category = 0, name = 0, track = 0;
      if (!cur.read(ev.type) || !cur.read(category) || !cur.read(name) ||
          !cur.read(track) || !cur.read(ev.time) || !cur.read(ev.duration) ||
          !cur.read(ev.seq) || !cur.read_f64(ev.value)) {
        return false;
      }
      const auto resolve = [this](std::uint32_t id) {
        const auto it = strings_.find(id);
        return it == strings_.end() ? std::string() : it->second;
      };
      ev.category = resolve(category);
      ev.name = resolve(name);
      ev.track = resolve(track);
      events_.push_back(std::move(ev));
      return true;
    }
    case kSchemaMetricCounter: {
      std::string name;
      std::uint64_t value = 0;
      if (!cur.read_str(name) || !cur.read(value)) return false;
      metrics_.counter(name).value += value;
      return true;
    }
    case kSchemaMetricGauge: {
      std::string name;
      double value = 0.0;
      if (!cur.read_str(name) || !cur.read_f64(value)) return false;
      metrics_.gauge(name) = value;
      return true;
    }
    case kSchemaMetricStats: {
      std::string name;
      std::uint64_t count = 0;
      double mean = 0, m2 = 0, sum = 0, min = 0, max = 0;
      if (!cur.read_str(name) || !cur.read(count) || !cur.read_f64(mean) ||
          !cur.read_f64(m2) || !cur.read_f64(sum) || !cur.read_f64(min) ||
          !cur.read_f64(max)) {
        return false;
      }
      metrics_.stats(name) = util::RunningStats::from_raw(
          static_cast<std::size_t>(count), mean, m2, sum, min, max);
      return true;
    }
    case kSchemaMetricSeries: {
      std::string name;
      std::uint32_t byte_len = 0;
      if (!cur.read_str(name) || !cur.read(byte_len)) return false;
      if (byte_len % 8 != 0) return false;
      const std::uint8_t* raw = nullptr;
      if (!cur.read_bytes(raw, byte_len)) return false;
      auto& series = metrics_.series(name);
      series.reserve(byte_len / 8);
      for (std::uint32_t i = 0; i < byte_len; i += 8) {
        series.add(load_f64(raw + i));
      }
      return true;
    }
    case kSchemaMetricHistogram: {
      std::string name;
      double lo = 0, hi = 0;
      std::uint32_t byte_len = 0;
      if (!cur.read_str(name) || !cur.read_f64(lo) || !cur.read_f64(hi) ||
          !cur.read(byte_len)) {
        return false;
      }
      if (byte_len % 8 != 0 || byte_len == 0) return false;
      const std::uint8_t* raw = nullptr;
      if (!cur.read_bytes(raw, byte_len)) return false;
      if (!(hi > lo)) return false;
      std::vector<std::uint64_t> counts(byte_len / 8);
      for (std::size_t i = 0; i < counts.size(); ++i) {
        counts[i] = load_le<std::uint64_t>(raw + 8 * i);
      }
      metrics_.histogram(name, lo, hi, counts.size()) =
          util::Histogram::from_raw(lo, hi, counts);
      return true;
    }
    case kSchemaBuildInfo: {
      util::BuildInfo info;
      if (!cur.read_str(info.git_sha) || !cur.read_str(info.compiler) ||
          !cur.read_str(info.flags) || !cur.read_str(info.build_type)) {
        return false;
      }
      build_infos_.push_back(std::move(info));
      return true;
    }
    case kSchemaRunMeta: {
      RunMeta meta;
      if (!cur.read_str(meta.name) || !cur.read(meta.index) ||
          !cur.read(meta.seed)) {
        return false;
      }
      run_metas_.push_back(std::move(meta));
      return true;
    }
    case kSchemaHealthSummary: {
      HealthSummary s;
      std::uint8_t healthy = 0;
      if (!cur.read_str(s.source) || !cur.read(s.runs) ||
          !cur.read(s.deadline_misses) || !cur.read(s.anomalies) ||
          !cur.read(healthy) || !cur.read_str(s.json)) {
        return false;
      }
      s.healthy = healthy != 0;
      health_summaries_.push_back(std::move(s));
      return true;
    }
    case kSchemaCampaignSummary: {
      CampaignSummary s;
      if (!cur.read_str(s.name) || !cur.read(s.seed) || !cur.read(s.runs) ||
          !cur.read(s.unrecovered) || !cur.read(s.faults_injected) ||
          !cur.read(s.fault_opportunities) || !cur.read_str(s.json)) {
        return false;
      }
      campaign_summaries_.push_back(std::move(s));
      return true;
    }
    case kSchemaCampaignCheckpoint: {
      CampaignCheckpointRecord c;
      std::uint32_t state_len = 0;
      if (!cur.read_str(c.name) || !cur.read(c.config_hash) ||
          !cur.read(c.total_runs) || !cur.read(c.watermark) ||
          !cur.read(state_len)) {
        return false;
      }
      const std::uint8_t* state = nullptr;
      if (!cur.read_bytes(state, state_len)) return false;
      c.state.assign(state, state + state_len);
      campaign_checkpoints_.push_back(std::move(c));
      return true;
    }
    default:
      // Registered in registry_ but not handled here — treat as skippable.
      ++unknown_records_;
      return true;
  }
}

trace::TraceRecorder EvidenceReader::rebuild_trace() const {
  std::size_t capacity = events_.size();
  if (capacity < 16) capacity = 16;
  trace::TraceRecorder recorder(capacity);
  // Re-intern in original id order so event name ids line up.
  for (const auto& [id, str] : strings_) {
    recorder.intern(str);
  }
  for (const auto& ev : events_) {
    const auto type = static_cast<trace::EventType>(ev.type);
    switch (type) {
      case trace::EventType::kSpanBegin:
        recorder.span_begin(ev.category, ev.name, ev.track, ev.time,
                            ev.value);
        break;
      case trace::EventType::kSpanEnd:
        recorder.span_end(ev.category, ev.name, ev.track, ev.time, ev.value);
        break;
      case trace::EventType::kSpanComplete:
        recorder.span_complete(ev.category, ev.name, ev.track,
                               ev.time, ev.time + ev.duration, ev.value);
        break;
      case trace::EventType::kCounter:
        recorder.counter(ev.category, ev.name, ev.track, ev.time, ev.value);
        break;
      case trace::EventType::kInstant:
      default:
        recorder.instant(ev.category, ev.name, ev.track, ev.time, ev.value);
        break;
    }
  }
  return recorder;
}

}  // namespace iecd::evidence
