#include "sim/world.hpp"

#include <algorithm>
#include <stdexcept>

namespace iecd::sim {

void World::attach(Component& component) {
  if (std::find(components_.begin(), components_.end(), &component) !=
      components_.end()) {
    throw std::logic_error("World: component attached twice: " +
                           component.name());
  }
  components_.push_back(&component);
}

void World::reset_components() {
  for (Component* c : components_) c->reset();
}

}  // namespace iecd::sim
