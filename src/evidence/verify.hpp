/// \file verify.hpp
/// Artifact and manifest verification — the library behind the
/// `evidence_verify` CLI and the CI evidence job.  An artifact passes
/// when its header/schema section/record stream/footer all parse, the
/// record chain hash and SHA-256 digest match, and every embedded schema
/// is compatible with the built-in registry.  A manifest passes when
/// every artifact line it lists exists, passes verification, and hashes
/// to the digest the manifest pinned.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "evidence/reader.hpp"

namespace iecd::evidence {

struct VerifyResult {
  bool ok = false;
  Status status = Status::kOk;
  std::string error;            ///< diagnostic when !ok
  std::string path;             ///< artifact path (or "<memory>")
  std::uint64_t bytes = 0;
  std::uint64_t records = 0;
  std::uint64_t unknown_records = 0;
  std::uint64_t events = 0;     ///< decoded trace events
  std::string chain_hash_hex;
  std::string sha256_hex;
  std::vector<std::string> schema_names;  ///< embedded schemas, id order

  /// One line: "PASS path (records=..., sha256=...)" or "FAIL path: why".
  std::string summary() const;
  /// Deterministic JSON object for tooling.
  std::string to_json() const;
};

/// Verifies an in-memory artifact.
VerifyResult verify_artifact(const std::uint8_t* data, std::size_t size,
                             const std::string& label = "<memory>");
VerifyResult verify_artifact(const std::vector<std::uint8_t>& bytes,
                             const std::string& label = "<memory>");
/// Reads and verifies an artifact file.
VerifyResult verify_artifact_file(const std::string& path);

struct ManifestEntry {
  std::string path;        ///< artifact path, relative to the manifest
  std::string sha256_hex;  ///< pinned digest ("" when the line has none)
  bool verified = false;
  std::string error;
};

struct ManifestVerifyResult {
  bool ok = false;
  std::string path;
  std::string error;
  std::vector<ManifestEntry> entries;
  std::size_t passed = 0;
};

/// Verifies every artifact a JSONL manifest lists: each line with a
/// "path" key names an artifact (resolved relative to the manifest's
/// directory); a "sha256" key on the same line pins its digest.
ManifestVerifyResult verify_manifest(const std::string& manifest_path);

}  // namespace iecd::evidence
