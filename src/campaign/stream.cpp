#include "campaign/stream.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <deque>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

namespace iecd::campaign {

namespace {

/// A contiguous span of group indices [lo, hi) sitting in a worker deque.
struct Range {
  std::size_t lo = 0;
  std::size_t hi = 0;
  std::size_t size() const { return hi - lo; }
};

/// One worker's deque of ranges, ascending by index.  The owner pops
/// single groups off the front; thieves take the back half.  The mutex is
/// uncontended except at steal time (the owner's pop is a few scalar ops).
struct WorkerQueue {
  std::mutex mu;
  std::deque<Range> ranges;

  /// Owner claim: lowest remaining group, or false when empty.
  bool pop_front(std::size_t& group) {
    std::lock_guard<std::mutex> lock(mu);
    if (ranges.empty()) return false;
    Range& front = ranges.front();
    group = front.lo++;
    if (front.lo == front.hi) ranges.pop_front();
    return true;
  }

  /// Thief: removes roughly half of the remaining groups from the BACK —
  /// whole back ranges while they make up at most half, then a split of
  /// the last range if needed.  Returns the stolen ranges (ascending);
  /// empty when the victim had nothing.
  std::vector<Range> steal_half() {
    std::lock_guard<std::mutex> lock(mu);
    std::size_t total = 0;
    for (const Range& r : ranges) total += r.size();
    if (total == 0) return {};
    const std::size_t want = (total + 1) / 2;  // at least 1
    std::vector<Range> stolen;
    std::size_t got = 0;
    while (got < want && !ranges.empty()) {
      Range& back = ranges.back();
      const std::size_t need = want - got;
      if (back.size() <= need) {
        stolen.push_back(back);
        ranges.pop_back();
        got += stolen.back().size();
      } else {
        stolen.push_back(Range{back.hi - need, back.hi});
        back.hi -= need;
        got += need;
      }
    }
    std::reverse(stolen.begin(), stolen.end());  // ascending
    return stolen;
  }

  void push_ranges(std::vector<Range>&& stolen) {
    std::lock_guard<std::mutex> lock(mu);
    for (Range& r : stolen) ranges.push_back(r);
  }
};

std::size_t resolve_threads(std::size_t requested, std::size_t groups) {
  std::size_t threads = requested;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  return std::min(threads, std::max<std::size_t>(1, groups));
}

}  // namespace

StreamRunner::StreamRunner(StreamOptions options) : options_(options) {}

StreamStats StreamRunner::run(std::size_t runs, const GroupFn& group,
                              const SinkFn& sink) const {
  return run(runs, 0, group, sink);
}

StreamStats StreamRunner::run(std::size_t runs, std::size_t start,
                              const GroupFn& group_fn,
                              const SinkFn& sink) const {
  StreamStats stats;
  stats.runs = runs;
  stats.start = start;
  const std::size_t batch = std::max<std::size_t>(1, options_.batch);
  assert((start % batch == 0 || start >= runs) &&
         "resume start must sit on a lane-group boundary");
  if (start > runs) start = runs;
  // Groups live in the ABSOLUTE index space: group g covers
  // [g * batch, min(runs, (g + 1) * batch)) — identical tiling whether the
  // campaign runs through or resumes at a checkpoint watermark.
  const std::size_t group_begin = start / batch;
  const std::size_t group_end = (runs + batch - 1) / batch;
  const std::size_t groups =
      group_end > group_begin ? group_end - group_begin : 0;
  stats.groups = groups;
  const std::size_t threads = resolve_threads(options_.threads, groups);
  stats.threads_used = threads;

  const std::size_t chunk = options_.chunk ? options_.chunk : 4;
  std::size_t window = options_.window;
  if (window == 0) {
    // Cyclic placement: every worker's initial front must be eligible —
    // worker w's first group starts at w * chunk * batch runs past the
    // watermark.  Contiguous placement cannot run under a bounded window
    // (every worker but the first would stall), so its auto window is
    // effectively unbounded: the old all-in-memory behaviour.
    window = options_.placement == Placement::kCyclic
                 ? std::max<std::size_t>(2 * threads * chunk * batch, 64)
                 : std::numeric_limits<std::size_t>::max() / 2;
  }
  stats.window = window;
  if (options_.progress != nullptr) {
    options_.progress->runs_total.store(runs, std::memory_order_relaxed);
  }
  if (groups == 0) return stats;

  const auto t0 = std::chrono::steady_clock::now();

  auto make_buffers = [&](std::size_t g) {
    auto result = std::make_unique<GroupResult>();
    result->first = g * batch;
    const std::size_t count = std::min(runs - result->first, batch);
    result->metrics.resize(count);
    result->health.resize(count);
    return result;
  };
  auto finish_group = [&](GroupResult& result) {
    sink(result);
    if (options_.progress != nullptr) {
      options_.progress->groups_completed.fetch_add(
          1, std::memory_order_relaxed);
      options_.progress->runs_completed.fetch_add(
          result.metrics.size(), std::memory_order_relaxed);
    }
  };

  if (threads == 1) {
    // Sequential reference execution: claim, execute and fold each group
    // in index order — the byte-identity baseline for every parallel
    // schedule, with no locks in the loop.
    for (std::size_t g = group_begin; g < group_end; ++g) {
      auto result = make_buffers(g);
      group_fn(result->first,
               std::span<trace::MetricsRegistry>(result->metrics),
               std::span<obs::HealthReport>(result->health));
      finish_group(*result);
    }
    stats.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    return stats;
  }

  ReorderFold fold(start, window, finish_group);

  // Deal chunks of groups to the worker deques.
  std::vector<WorkerQueue> workers(threads);
  const std::size_t chunks = (groups + chunk - 1) / chunk;
  if (options_.placement == Placement::kCyclic) {
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = group_begin + c * chunk;
      const std::size_t hi = std::min(group_end, lo + chunk);
      workers[c % threads].ranges.push_back(Range{lo, hi});
    }
  } else {
    // Contiguous static tiling: worker w owns one solid block of chunks.
    const std::size_t per = (chunks + threads - 1) / threads;
    for (std::size_t w = 0; w < threads; ++w) {
      const std::size_t c0 = std::min(chunks, w * per);
      const std::size_t c1 = std::min(chunks, c0 + per);
      if (c0 == c1) continue;
      const std::size_t lo = group_begin + c0 * chunk;
      const std::size_t hi = std::min(group_end, group_begin + c1 * chunk);
      workers[w].ranges.push_back(Range{lo, hi});
    }
  }

  std::atomic<std::size_t> unclaimed{groups};
  std::atomic<std::uint64_t> steals{0}, steal_attempts{0}, window_waits{0};
  const bool stealing = options_.stealing;
  obs::CampaignProgress* progress = options_.progress;

  auto worker_loop = [&](std::size_t id) {
    std::size_t g = 0;
    for (;;) {
      bool have = workers[id].pop_front(g);
      if (!have && stealing) {
        // Scan victims round-robin from our right-hand neighbour; the
        // steal moves the victim's back half into our empty deque, then
        // we claim its front (our new lowest).
        for (std::size_t k = 1; k < threads && !have; ++k) {
          const std::size_t victim = (id + k) % threads;
          steal_attempts.fetch_add(1, std::memory_order_relaxed);
          std::vector<Range> stolen = workers[victim].steal_half();
          if (stolen.empty()) continue;
          steals.fetch_add(1, std::memory_order_relaxed);
          workers[id].push_ranges(std::move(stolen));
          have = workers[id].pop_front(g);
        }
      }
      if (!have) {
        if (!stealing) break;
        if (unclaimed.load(std::memory_order_acquire) == 0) break;
        // Transient: every remaining group is mid-steal somewhere.
        std::this_thread::yield();
        continue;
      }
      unclaimed.fetch_sub(1, std::memory_order_acq_rel);

      const std::size_t first = g * batch;
      if (!fold.eligible(first)) {
        // Reorder-window throttle: wait for the fold to catch up.  Safe:
        // the watermark group's holder is never parked here (it claims
        // lowest-first), so the fold always advances.
        window_waits.fetch_add(1, std::memory_order_relaxed);
        if (progress != nullptr) {
          progress->window_waits.fetch_add(1, std::memory_order_relaxed);
        }
        fold.wait_eligible(first, [] { return false; });
      }

      auto result = make_buffers(g);
      group_fn(result->first,
               std::span<trace::MetricsRegistry>(result->metrics),
               std::span<obs::HealthReport>(result->health));
      fold.submit(std::move(result));
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) {
    pool.emplace_back(worker_loop, w);
  }
  for (std::thread& t : pool) t.join();

  stats.steals = steals.load(std::memory_order_relaxed);
  stats.steal_attempts = steal_attempts.load(std::memory_order_relaxed);
  stats.window_waits = window_waits.load(std::memory_order_relaxed);
  stats.peak_pending_groups = fold.peak_pending();
  if (progress != nullptr) {
    progress->steals.fetch_add(stats.steals, std::memory_order_relaxed);
    progress->steal_attempts.fetch_add(stats.steal_attempts,
                                       std::memory_order_relaxed);
  }
  stats.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  return stats;
}

}  // namespace iecd::campaign
