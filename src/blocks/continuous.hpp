/// \file continuous.hpp
/// Continuous-time blocks integrated by the engine's RK4 solver — the
/// plant-side vocabulary (the controlled object lives in continuous time).
#pragma once

#include <vector>

#include "model/block.hpp"

namespace iecd::blocks {

using model::Block;
using model::SimContext;

class IntegratorBlock : public Block {
 public:
  IntegratorBlock(std::string name, double initial = 0.0);
  const char* type_name() const override { return "Integrator"; }
  bool has_direct_feedthrough() const override { return false; }
  void initialize(const SimContext& ctx) override;
  void output(const SimContext& ctx) override;
  int continuous_state_count() const override { return 1; }
  void read_states(std::span<double> into) const override;
  void write_states(std::span<const double> from) override;
  void derivatives(const SimContext& ctx, std::span<double> dx) const override;

 private:
  double initial_;
  double state_ = 0.0;
};

/// SISO continuous state space: x' = A x + b u, y = c x + d u.
class StateSpaceBlock : public Block {
 public:
  StateSpaceBlock(std::string name, std::vector<std::vector<double>> a,
                  std::vector<double> b, std::vector<double> c, double d);
  const char* type_name() const override { return "StateSpace"; }
  bool has_direct_feedthrough() const override { return d_ != 0.0; }
  void initialize(const SimContext& ctx) override;
  void output(const SimContext& ctx) override;
  int continuous_state_count() const override {
    return static_cast<int>(a_.size());
  }
  void read_states(std::span<double> into) const override;
  void write_states(std::span<const double> from) override;
  void derivatives(const SimContext& ctx, std::span<double> dx) const override;

  void set_initial_states(std::vector<double> x0);

 private:
  std::vector<std::vector<double>> a_;
  std::vector<double> b_, c_;
  double d_;
  std::vector<double> x_, x0_;
};

/// SISO continuous transfer function num(s)/den(s), realized in
/// controllable canonical form.
class TransferFunctionBlock : public StateSpaceBlock {
 public:
  TransferFunctionBlock(std::string name, std::vector<double> num,
                        std::vector<double> den);
  const char* type_name() const override { return "TransferFcn"; }

 private:
  struct Realization {
    std::vector<std::vector<double>> a;
    std::vector<double> b, c;
    double d;
  };
  static Realization realize(std::vector<double> num, std::vector<double> den,
                             const std::string& name);
  explicit TransferFunctionBlock(std::string name, Realization r);
};

}  // namespace iecd::blocks
