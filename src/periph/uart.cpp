#include "periph/uart.hpp"

namespace iecd::periph {

UartPeripheral::UartPeripheral(mcu::Mcu& mcu, UartConfig config,
                               std::string name)
    : Peripheral(mcu, std::move(name)), config_(config) {}

void UartPeripheral::connect(sim::SerialChannel& tx, sim::SerialChannel& rx) {
  tx_ = &tx;
  rx.set_receiver([this](std::uint8_t byte, sim::SimTime when) {
    on_rx_byte(byte, when);
  });
}

bool UartPeripheral::send(std::uint8_t byte) {
  if (!tx_) return false;
  if (tx_in_flight_ >= config_.tx_fifo_depth) return false;
  ++tx_in_flight_;
  ++bytes_sent_;
  tx_->transmit(byte);
  // The channel serializes; model FIFO drain by scheduling the slot release
  // after this byte's wire time multiplied by queue position is implicit in
  // the channel.  We approximate the drain notification per byte:
  queue().schedule_in(tx_->config().byte_time() *
                          static_cast<sim::SimTime>(tx_in_flight_),
                      [this] {
                        if (tx_in_flight_ > 0) --tx_in_flight_;
                        if (tx_in_flight_ == 0 && config_.tx_vector >= 0) {
                          mcu().raise_irq(config_.tx_vector);
                        }
                      });
  return true;
}

std::size_t UartPeripheral::send(const std::uint8_t* data, std::size_t len) {
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < len; ++i) {
    if (!send(data[i])) break;
    ++accepted;
  }
  return accepted;
}

void UartPeripheral::on_rx_byte(std::uint8_t byte, sim::SimTime /*when*/) {
  if (rx_valid_) {
    ++overruns_;  // previous byte never read: hardware overrun flag
  }
  rx_data_ = byte;
  rx_valid_ = true;
  ++bytes_received_;
  if (config_.rx_vector >= 0) mcu().raise_irq(config_.rx_vector);
}

std::optional<std::uint8_t> UartPeripheral::read() {
  if (!rx_valid_) return std::nullopt;
  rx_valid_ = false;
  return rx_data_;
}

void UartPeripheral::reset() {
  rx_valid_ = false;
  overruns_ = 0;
  bytes_sent_ = 0;
  bytes_received_ = 0;
  tx_in_flight_ = 0;
}

}  // namespace iecd::periph
