/// \file generator.hpp
/// The code-generation target (RTW Embedded Coder + PEERT analog): turns
/// the controller subsystem of a single-model application into a
/// GeneratedApplication — periodic and event-driven tasks with cycle
/// costs, emitted C sources, bean auto-configuration through the hook
/// pipeline, and a memory estimate checked against the derivative.
#pragma once

#include <memory>
#include <vector>

#include "beans/bean_project.hpp"
#include "codegen/generated_app.hpp"
#include "codegen/hooks.hpp"
#include "codegen/signal_buffer.hpp"
#include "codegen/target_io.hpp"
#include "model/subsystem.hpp"
#include "util/diagnostics.hpp"

namespace iecd::codegen {

struct GeneratorOptions {
  std::string app_name = "model";
  bool fixed_point = false;
  bool pil = false;
  /// PIL variant: the buffer peripheral access is redirected to.  Required
  /// when pil is true; slot registration happens during generation.
  SignalBuffer* pil_buffer = nullptr;
  /// Hardware-access API of the emitted sources: PE bean methods or
  /// AUTOSAR MCAL modules.  Functionally identical (the paper's two
  /// block-set variants differ only in settings and generated API).
  beans::DriverApi api = beans::DriverApi::kProcessorExpert;
};

class Generator {
 public:
  /// Installs the built-in BeanAutoConfigHook.
  Generator();

  /// Appends a custom hook (runs after the built-ins, in order).
  void add_hook(std::unique_ptr<RtwHook> hook);

  /// Generates the application from the controller subsystem.  The
  /// controller must carry a discrete sample time (the control period).
  /// Side effects mirror the real tool: PE blocks are switched to target
  /// (or PIL) mode and beans get auto-configured.  Throws
  /// std::invalid_argument / std::logic_error on structural errors;
  /// expected configuration problems land in \p diagnostics.
  GeneratedApplication generate(model::Subsystem& controller,
                                beans::BeanProject& project,
                                const GeneratorOptions& options,
                                util::DiagnosticList* diagnostics = nullptr);

  /// Returns the PE blocks of \p controller to MIL mode (after a target
  /// build, to re-run MIL comparisons on the same model).
  static void restore_mil_mode(model::Subsystem& controller);

  /// All TargetIo blocks at the top level of the controller's interior.
  static std::vector<TargetIo*> find_io_blocks(model::Subsystem& controller);

 private:
  std::vector<std::unique_ptr<RtwHook>> hooks_;
};

}  // namespace iecd::codegen
