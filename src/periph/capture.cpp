#include "periph/capture.hpp"

namespace iecd::periph {

CapturePeripheral::CapturePeripheral(mcu::Mcu& mcu, CaptureConfig config,
                                     std::string name)
    : Peripheral(mcu, std::move(name)), config_(config) {}

bool CapturePeripheral::qualifies(bool level) const {
  switch (config_.edge) {
    case CaptureEdge::kRising:
      return !last_level_ && level;
    case CaptureEdge::kFalling:
      return last_level_ && !level;
    case CaptureEdge::kBoth:
      return last_level_ != level;
  }
  return false;
}

void CapturePeripheral::input_edge(bool level) {
  const bool hit = qualifies(level);
  last_level_ = level;
  if (!hit) return;
  const sim::SimTime t = now();
  if (last_capture_ >= 0) last_interval_ = t - last_capture_;
  last_capture_ = t;
  ++captures_;
  if (config_.capture_vector >= 0) mcu().raise_irq(config_.capture_vector);
}

double CapturePeripheral::measured_frequency_hz() const {
  if (last_interval_ <= 0) return 0.0;
  return 1e9 / static_cast<double>(last_interval_);
}

void CapturePeripheral::reset() {
  last_level_ = false;
  last_capture_ = -1;
  last_interval_ = 0;
  captures_ = 0;
}

}  // namespace iecd::periph
