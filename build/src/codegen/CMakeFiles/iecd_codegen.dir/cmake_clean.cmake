file(REMOVE_RECURSE
  "CMakeFiles/iecd_codegen.dir/c_emitter.cpp.o"
  "CMakeFiles/iecd_codegen.dir/c_emitter.cpp.o.d"
  "CMakeFiles/iecd_codegen.dir/generated_app.cpp.o"
  "CMakeFiles/iecd_codegen.dir/generated_app.cpp.o.d"
  "CMakeFiles/iecd_codegen.dir/generator.cpp.o"
  "CMakeFiles/iecd_codegen.dir/generator.cpp.o.d"
  "CMakeFiles/iecd_codegen.dir/hooks.cpp.o"
  "CMakeFiles/iecd_codegen.dir/hooks.cpp.o.d"
  "CMakeFiles/iecd_codegen.dir/signal_buffer.cpp.o"
  "CMakeFiles/iecd_codegen.dir/signal_buffer.cpp.o.d"
  "libiecd_codegen.a"
  "libiecd_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iecd_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
