#include <gtest/gtest.h>

#include <cmath>

#include "beans/adc_bean.hpp"
#include "beans/bean_project.hpp"
#include "beans/bit_io_bean.hpp"
#include "beans/cpu_bean.hpp"
#include "beans/free_cntr_bean.hpp"
#include "beans/property.hpp"
#include "beans/pwm_bean.hpp"
#include "beans/quad_dec_bean.hpp"
#include "beans/serial_bean.hpp"
#include "beans/solvers.hpp"
#include "beans/timer_int_bean.hpp"
#include "mcu/mcu.hpp"
#include "sim/world.hpp"

namespace iecd::beans {
namespace {

// ----------------------------------------------------------------- Property

TEST(PropertySet, DeclareAndDefaults) {
  PropertySet props;
  props.declare(PropertySpec::integer("channel", 3, 0, 15, "adc channel"));
  props.declare(PropertySpec::boolean("continuous", false, "free run"));
  EXPECT_TRUE(props.has("channel"));
  EXPECT_EQ(props.get_int("channel"), 3);
  EXPECT_FALSE(props.get_bool("continuous"));
  EXPECT_THROW(props.declare(PropertySpec::boolean("channel", true, "dup")),
               std::logic_error);
}

TEST(PropertySet, RangeValidationRejectsOutOfRange) {
  PropertySet props;
  props.declare(PropertySpec::integer("n", 0, 0, 10, ""));
  util::DiagnosticList diags;
  EXPECT_TRUE(props.set("bean", "n", std::int64_t{10}, diags));
  EXPECT_FALSE(props.set("bean", "n", std::int64_t{11}, diags));
  EXPECT_TRUE(diags.has_errors());
  EXPECT_EQ(props.get_int("n"), 10);  // rejected write did not land
}

TEST(PropertySet, TypeMismatchRejected) {
  PropertySet props;
  props.declare(PropertySpec::integer("n", 0, 0, 10, ""));
  util::DiagnosticList diags;
  EXPECT_FALSE(props.set("bean", "n", std::string("five"), diags));
  EXPECT_FALSE(props.set("bean", "n", true, diags));
  EXPECT_EQ(diags.size(), 2u);
}

TEST(PropertySet, EnumChoicesEnforced) {
  PropertySet props;
  props.declare(PropertySpec::enumeration("dir", "input", {"input", "output"},
                                          ""));
  util::DiagnosticList diags;
  EXPECT_TRUE(props.set("bean", "dir", std::string("output"), diags));
  EXPECT_FALSE(props.set("bean", "dir", std::string("sideways"), diags));
  EXPECT_EQ(props.get_string("dir"), "output");
}

TEST(PropertySet, ReadOnlyPropertiesRejectUserWrites) {
  PropertySet props;
  props.declare(PropertySpec::real("achieved", 0, 0, 10, "").derived());
  util::DiagnosticList diags;
  EXPECT_FALSE(props.set("bean", "achieved", 1.0, diags));
  props.set_derived("achieved", 2.5);
  EXPECT_DOUBLE_EQ(props.get_real("achieved"), 2.5);
}

TEST(PropertySet, IntPromotesToReal) {
  PropertySet props;
  props.declare(PropertySpec::real("f", 1.0, 0.0, 100.0, ""));
  util::DiagnosticList diags;
  EXPECT_TRUE(props.set("bean", "f", std::int64_t{42}, diags));
  EXPECT_DOUBLE_EQ(props.get_real("f"), 42.0);
}

TEST(PropertySet, RenderListsEverything) {
  PropertySet props;
  props.declare(PropertySpec::integer("pin", 7, 0, 63, "port pin"));
  props.declare(PropertySpec::real("ach", 0, 0, 1, "derived x").derived());
  const std::string text = props.render();
  EXPECT_NE(text.find("pin"), std::string::npos);
  EXPECT_NE(text.find("7"), std::string::npos);
  EXPECT_NE(text.find("[derived]"), std::string::npos);
}

// ------------------------------------------------------------------ Solvers

TEST(Solvers, TimerSolutionHitsExactPeriods) {
  const auto& cpu = mcu::find_derivative("DSC56F8367");  // 60 MHz
  const auto sol = solve_timer_period(cpu, 0.001, 0.001);
  ASSERT_TRUE(sol.has_value());
  EXPECT_DOUBLE_EQ(sol->achieved_period_s, 0.001);
  EXPECT_EQ(sol->relative_error, 0.0);
  // 60000 cycles: prescaler 1 works directly (16-bit modulo).
  EXPECT_EQ(sol->prescaler, 1u);
  EXPECT_EQ(sol->modulo, 60000u);
}

TEST(Solvers, TimerSolutionUsesPrescalerForLongPeriods) {
  const auto& cpu = mcu::find_derivative("DSC56F8367");
  // 100 ms = 6e6 cycles: needs prescaler >= 92 -> 128.
  const auto sol = solve_timer_period(cpu, 0.1, 0.001);
  ASSERT_TRUE(sol.has_value());
  EXPECT_GT(sol->prescaler, 64u);
  EXPECT_NEAR(sol->achieved_period_s, 0.1, 0.1 * 0.001);
}

TEST(Solvers, TimerSolutionFailsBeyondRange) {
  const auto& cpu = mcu::find_derivative("DSC56F8367");
  // Max period = 128 * 65535 / 60e6 ~= 0.14 s; 1 s must fail.
  EXPECT_FALSE(solve_timer_period(cpu, 1.0, 0.01).has_value());
  // Sub-tick periods fail too.
  EXPECT_FALSE(solve_timer_period(cpu, 1e-9, 0.01).has_value());
}

TEST(Solvers, TimerPrefersSmallestError) {
  const auto& cpu = mcu::find_derivative("HCS08GB60");  // 20 MHz
  const auto sol = solve_timer_period(cpu, 0.0123, 0.01);
  ASSERT_TRUE(sol.has_value());
  EXPECT_LE(sol->relative_error, 0.01);
}

TEST(Solvers, PwmMaximizesDutyResolution) {
  const auto& cpu = mcu::find_derivative("DSC56F8367");
  const auto sol = solve_pwm_frequency(cpu, 20000.0, 0.01);
  ASSERT_TRUE(sol.has_value());
  // 60e6/20e3 = 3000 counts at prescaler 1 -> ~11.5 bits.
  EXPECT_EQ(sol->prescaler, 1u);
  EXPECT_EQ(sol->modulo, 3000u);
  EXPECT_EQ(sol->duty_resolution_bits, 11);
  EXPECT_NEAR(sol->achieved_frequency_hz, 20000.0, 20.0);
}

TEST(Solvers, PwmImpossibleFrequenciesRejected) {
  const auto& cpu = mcu::find_derivative("HCS08GB60");  // 20 MHz
  EXPECT_FALSE(solve_pwm_frequency(cpu, 15e6, 0.01).has_value());
}

TEST(Solvers, AdcConversionTimeFromSpec) {
  const auto& dsc = mcu::find_derivative("DSC56F8367");
  // 8.5 cycles at 5 MHz = 1.7 us.
  EXPECT_NEAR(sim::to_microseconds(adc_conversion_time(dsc)), 1.7, 0.01);
}

TEST(Solvers, UartBaudMembership) {
  const auto& dsc = mcu::find_derivative("DSC56F8367");
  EXPECT_TRUE(uart_baud_supported(dsc, 115200));
  EXPECT_FALSE(uart_baud_supported(dsc, 123456));
  const auto& hcs08 = mcu::find_derivative("HCS08GB60");
  EXPECT_FALSE(uart_baud_supported(hcs08, 460800));
}

// ----------------------------------------------------------- Bean & project

TEST(Bean, RequiresCIdentifierNames) {
  EXPECT_THROW(AdcBean("AD 1"), std::invalid_argument);
  EXPECT_NO_THROW(AdcBean("AD1"));
}

TEST(Bean, MethodEnablementGatesDriverEmission) {
  TimerIntBean bean("TI1");
  EXPECT_FALSE(bean.method_enabled("Enable"));
  bean.enable_method("Enable");
  EXPECT_TRUE(bean.method_enabled("Enable"));
  EXPECT_THROW(bean.enable_method("Nonsense"), std::invalid_argument);
  const DriverSource src = bean.driver_source();
  EXPECT_NE(src.header.find("TI1_Enable"), std::string::npos);
  EXPECT_EQ(src.header.find("TI1_Disable"), std::string::npos);
}

TEST(Bean, InspectorRenderShowsTypeMethodsEvents) {
  AdcBean bean("AD1");
  const std::string text = bean.inspector_render();
  EXPECT_NE(text.find("Bean AD1 : ADC"), std::string::npos);
  EXPECT_NE(text.find("Measure"), std::string::npos);
  EXPECT_NE(text.find("OnEnd"), std::string::npos);
  EXPECT_NE(text.find("channel"), std::string::npos);
}

class ProjectFixture : public ::testing::Test {
 protected:
  BeanProject project{"servo"};
};

TEST_F(ProjectFixture, AddFindRemoveRename) {
  project.add<AdcBean>("AD1");
  project.add<PwmBean>("PWM1");
  EXPECT_NE(project.find("AD1"), nullptr);
  EXPECT_NE(project.find("CPU"), nullptr);
  EXPECT_EQ(project.find("missing"), nullptr);
  EXPECT_THROW(project.add<AdcBean>("AD1"), std::invalid_argument);
  EXPECT_TRUE(project.rename("AD1", "AD_speed"));
  EXPECT_EQ(project.find("AD1"), nullptr);
  EXPECT_NE(project.find("AD_speed"), nullptr);
  EXPECT_TRUE(project.remove("AD_speed"));
  EXPECT_FALSE(project.remove("AD_speed"));
}

TEST_F(ProjectFixture, ObserversSeeAllChanges) {
  std::vector<ProjectChange> changes;
  project.add_observer([&](ProjectChange c, const std::string&,
                           const std::string&) { changes.push_back(c); });
  project.add<AdcBean>("AD1");
  project.set_property("AD1", "channel", std::int64_t{2});
  project.rename("AD1", "AD2");
  project.remove("AD2");
  ASSERT_EQ(changes.size(), 4u);
  EXPECT_EQ(changes[0], ProjectChange::kAdded);
  EXPECT_EQ(changes[1], ProjectChange::kPropertyChanged);
  EXPECT_EQ(changes[2], ProjectChange::kRenamed);
  EXPECT_EQ(changes[3], ProjectChange::kRemoved);
}

TEST_F(ProjectFixture, PropertyEditTriggersImmediateValidation) {
  auto& timer = project.add<TimerIntBean>("TI1");
  // 1 ms is achievable: no errors, derived properties filled in.
  auto diags = project.set_property("TI1", "period_s", 0.001);
  EXPECT_FALSE(diags.has_errors());
  EXPECT_DOUBLE_EQ(timer.achieved_period_s(), 0.001);
  // 10 s is not achievable on the 16-bit timer: immediate error.
  diags = project.set_property("TI1", "period_s", 10.0);
  EXPECT_TRUE(diags.has_errors());
}

TEST_F(ProjectFixture, AggregateResourceOverflowDetected) {
  // DSC56F8367 has 2 SCI modules; a third must be flagged.
  project.add<SerialBean>("AS1");
  project.add<SerialBean>("AS2");
  auto diags = project.validate();
  EXPECT_FALSE(diags.has_errors());
  project.add<SerialBean>("AS3");
  diags = project.validate();
  EXPECT_TRUE(diags.has_errors());
  EXPECT_NE(diags.to_string().find("SCI"), std::string::npos);
}

TEST_F(ProjectFixture, ExplicitChannelConflictDetected) {
  project.add<AdcBean>("AD1");
  project.add<AdcBean>("AD2");
  auto diags = project.set_property("AD2", "channel", std::int64_t{0});
  EXPECT_TRUE(diags.has_errors());  // both on channel 0
  diags = project.set_property("AD2", "channel", std::int64_t{1});
  EXPECT_FALSE(diags.has_errors());
}

TEST_F(ProjectFixture, PinConflictDetected) {
  project.add<BitIoBean>("Key1");
  project.add<BitIoBean>("Key2");
  auto diags = project.validate();
  EXPECT_TRUE(diags.has_errors());  // both default to pin 0
  diags = project.set_property("Key2", "pin", std::int64_t{1});
  EXPECT_FALSE(diags.has_errors());
}

TEST_F(ProjectFixture, RetargetingRevalidatesEverything) {
  project.add<QuadDecBean>("QD1");
  auto diags = project.validate();
  EXPECT_FALSE(diags.has_errors());  // DSC has 2 decoders
  // HCS12X has none: the port must be rejected with a clear message.
  diags = project.select_derivative("HCS12X128");
  EXPECT_TRUE(diags.has_errors());
  EXPECT_NE(diags.to_string().find("quadrature"), std::string::npos);
  // Back to the DSC: fine again.
  diags = project.select_derivative("DSC56F8367");
  EXPECT_FALSE(diags.has_errors());
}

TEST_F(ProjectFixture, DerivedPropertiesRetargetWithCpu) {
  auto& timer = project.add<TimerIntBean>("TI1");
  project.set_property("TI1", "period_s", 0.001);
  project.validate();
  const auto dsc_modulo = timer.properties().get_int("modulo");
  project.select_derivative("HCS08GB60");  // 20 MHz
  const auto hcs_modulo = timer.properties().get_int("modulo");
  EXPECT_NE(dsc_modulo, hcs_modulo);  // 60000 vs 20000 cycles
  EXPECT_EQ(hcs_modulo, 20000);
}

TEST_F(ProjectFixture, BindRefusesWithoutValidation) {
  sim::World world;
  mcu::Mcu mcu(world, mcu::find_derivative("DSC56F8367"));
  project.add<TimerIntBean>("TI1");
  EXPECT_THROW(project.bind(mcu), std::logic_error);
  project.validate();
  EXPECT_NO_THROW(project.bind(mcu));
  EXPECT_TRUE(project.bound());
}

TEST_F(ProjectFixture, BindRefusesMismatchedMcuInstance) {
  sim::World world;
  mcu::Mcu mcu(world, mcu::find_derivative("HCS12X128"));
  project.validate();
  EXPECT_THROW(project.bind(mcu), std::logic_error);
}

TEST_F(ProjectFixture, DriversEmittedForAllBeans) {
  project.add<AdcBean>("AD1").enable_method("Measure");
  project.add<PwmBean>("PWM1").enable_method("SetRatio16");
  project.validate();
  const auto drivers = project.generate_drivers();
  // PE_Types.h + CPU + AD1 + PWM1.
  ASSERT_EQ(drivers.size(), 4u);
  EXPECT_EQ(drivers[0].header_name, "PE_Types.h");
  bool found_measure = false;
  for (const auto& d : drivers) {
    if (d.source.find("AD1_Measure") != std::string::npos) {
      found_measure = true;
    }
  }
  EXPECT_TRUE(found_measure);
}

TEST_F(ProjectFixture, InspectorRenderCoversProject) {
  project.add<AdcBean>("AD1");
  const std::string text = project.inspector_render();
  EXPECT_NE(text.find("Project servo"), std::string::npos);
  EXPECT_NE(text.find("DSC56F8367"), std::string::npos);
  EXPECT_NE(text.find("Bean AD1"), std::string::npos);
}

// -------------------------------------------------- Bound-bean behaviour

class BoundFixture : public ::testing::Test {
 protected:
  sim::World world;
  mcu::Mcu mcu{world, mcu::find_derivative("DSC56F8367")};
  BeanProject project{"p"};
};

TEST_F(BoundFixture, TimerIntBeanFiresItsEvent) {
  auto& timer = project.add<TimerIntBean>("TI1");
  project.set_property("TI1", "period_s", 0.001);
  project.validate();
  project.bind(mcu);

  int hits = 0;
  mcu::IsrHandler h;
  h.name = "model_step";
  h.body = [&]() -> std::uint64_t {
    ++hits;
    return 100;
  };
  timer.set_event_handler("OnInterrupt", std::move(h));
  timer.Enable();
  world.run_for(sim::milliseconds(10));
  EXPECT_EQ(hits, 10);
  timer.Disable();
  world.run_for(sim::milliseconds(10));
  EXPECT_EQ(hits, 10);
}

TEST_F(BoundFixture, HandlerInstalledAfterBindStillRuns) {
  auto& timer = project.add<TimerIntBean>("TI1");
  project.validate();
  project.bind(mcu);
  timer.Enable();
  world.run_for(sim::milliseconds(3));  // unattached: stub dispatches
  int hits = 0;
  mcu::IsrHandler h;
  h.body = [&]() -> std::uint64_t {
    ++hits;
    return 10;
  };
  timer.set_event_handler("OnInterrupt", std::move(h));
  world.run_for(sim::milliseconds(3));
  EXPECT_GE(hits, 2);
}

TEST_F(BoundFixture, AdcBeanMeasureAndGetValue16) {
  auto& adc = project.add<AdcBean>("AD1");
  project.validate();
  project.bind(mcu);
  adc.peripheral()->set_analog_source(0, [](sim::SimTime) { return 3.3; });
  EXPECT_TRUE(adc.Measure());
  world.run_for(sim::milliseconds(1));
  // Full scale, left justified: 0xFFF0 for 12 bits.
  EXPECT_EQ(adc.GetValue16(), 0xFFF0);
  EXPECT_EQ(adc.GetValueRaw(), 0xFFFu);
}

TEST_F(BoundFixture, AdcOnEndEventFires) {
  auto& adc = project.add<AdcBean>("AD1");
  project.validate();
  project.bind(mcu);
  int ends = 0;
  mcu::IsrHandler h;
  h.body = [&]() -> std::uint64_t {
    ++ends;
    return 50;
  };
  adc.set_event_handler("OnEnd", std::move(h));
  adc.Measure();
  world.run_for(sim::milliseconds(1));
  EXPECT_EQ(ends, 1);
}

TEST_F(BoundFixture, PwmBeanControlsDuty) {
  auto& pwm = project.add<PwmBean>("PWM1");
  project.set_property("PWM1", "frequency_hz", 20000.0);
  project.validate();
  project.bind(mcu);
  pwm.Enable();
  pwm.SetRatio16(32768);  // ~50%
  world.run_for(sim::milliseconds(1));
  EXPECT_NEAR(pwm.peripheral()->duty_ratio(), 0.5, 0.01);
  pwm.SetDutyPercent(75.0);
  world.run_for(sim::milliseconds(1));
  EXPECT_NEAR(pwm.peripheral()->duty_ratio(), 0.75, 0.01);
  pwm.Disable();
  EXPECT_FALSE(pwm.peripheral()->running());
}

TEST_F(BoundFixture, QuadDecBeanCountsAndScale) {
  auto& qd = project.add<QuadDecBean>("QD1");
  project.validate();
  project.bind(mcu);
  EXPECT_EQ(qd.counts_per_rev(), 400);
  qd.peripheral()->add_counts(400);
  EXPECT_EQ(qd.GetPosition(), 400);
  qd.ResetPosition();
  EXPECT_EQ(qd.GetPosition(), 0);
}

TEST_F(BoundFixture, BitIoBeanOutputAndInputEdgeEvent) {
  auto& led = project.add<BitIoBean>("LED");
  auto& key = project.add<BitIoBean>("KEY");
  project.set_property("LED", "direction", std::string("output"));
  project.set_property("LED", "pin", std::int64_t{1});
  project.set_property("KEY", "pin", std::int64_t{2});
  project.set_property("KEY", "edge", std::string("falling"));
  auto diags = project.validate();
  ASSERT_FALSE(diags.has_errors()) << diags.to_string();
  project.bind(mcu);

  led.SetVal();
  EXPECT_TRUE(led.GetVal());
  led.NegVal();
  EXPECT_FALSE(led.GetVal());

  int presses = 0;
  mcu::IsrHandler h;
  h.body = [&]() -> std::uint64_t {
    ++presses;
    return 30;
  };
  key.set_event_handler("OnInterrupt", std::move(h));
  key.port()->drive_external(2, true);
  key.port()->drive_external(2, false);  // falling edge
  world.run_for(sim::milliseconds(1));
  EXPECT_EQ(presses, 1);
}

TEST_F(BoundFixture, SerialBeanSendsAndReceives) {
  auto& as1 = project.add<SerialBean>("AS1");
  project.validate();
  project.bind(mcu);

  sim::SerialLink link(world, sim::SerialConfig{});
  as1.peripheral()->connect(link.b_to_a(), link.a_to_b());

  std::vector<std::uint8_t> got;
  mcu::IsrHandler h;
  h.body = [&]() -> std::uint64_t {
    if (auto b = as1.RecvChar()) got.push_back(*b);
    return 80;
  };
  as1.set_event_handler("OnRxChar", std::move(h));

  link.a_to_b().transmit(0x42);
  EXPECT_TRUE(as1.SendChar(0x24));
  std::vector<std::uint8_t> host_rx;
  link.b_to_a().set_receiver(
      [&](std::uint8_t b, sim::SimTime) { host_rx.push_back(b); });
  world.run_for(sim::milliseconds(5));
  EXPECT_EQ(got, (std::vector<std::uint8_t>{0x42}));
  EXPECT_EQ(host_rx, (std::vector<std::uint8_t>{0x24}));
}

TEST_F(BoundFixture, SerialBeanRejectsNonStandardBaud) {
  project.add<SerialBean>("AS1");
  auto diags = project.set_property("AS1", "baud", std::int64_t{100000});
  EXPECT_TRUE(diags.has_errors());
}

TEST_F(BoundFixture, FreeCntrMeasuresElapsedTime) {
  auto& fc = project.add<FreeCntrBean>("FC1");
  project.validate();
  project.bind(mcu);
  fc.Reset();
  world.run_for(sim::microseconds(1500));
  EXPECT_EQ(fc.GetTimeUS(), 1500u);
}

TEST_F(BoundFixture, CpuBeanReportsDerivedClockAndFpuAdvice) {
  auto diags = project.validate();
  EXPECT_DOUBLE_EQ(project.cpu().properties().get_real("clock_hz"), 60e6);
  // Info diagnostic about missing FPU must be present but not an error.
  EXPECT_FALSE(diags.has_errors());
  EXPECT_NE(diags.to_string().find("FPU"), std::string::npos);
}

}  // namespace
}  // namespace iecd::beans
