#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace iecd::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  const std::size_t width = std::min(n, thread_count());
  std::vector<std::future<void>> futures;
  futures.reserve(width);
  for (std::size_t w = 0; w < width; ++w) {
    futures.push_back(submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace iecd::util
