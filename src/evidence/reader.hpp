/// \file reader.hpp
/// EvidenceReader: parses and validates an artifact, then exposes its
/// decoded content — the reconstructed MetricsRegistry, trace events with
/// resolved names, health/campaign summaries, build info.  The parser is
/// defensive end to end: every length field is bounds-checked, a
/// truncated or bit-flipped file yields a Status (never UB), and the
/// corruption fuzz test drives it under ASan.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "evidence/schema.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/build_info.hpp"

namespace iecd::evidence {

enum class Status {
  kOk = 0,
  kBadMagic,       ///< header magic wrong
  kBadVersion,     ///< format version newer than this reader
  kBadHeader,      ///< header malformed / file shorter than a header
  kBadSchema,      ///< schema section malformed or incompatible
  kTruncated,      ///< file ends before the footer
  kCorruptRecord,  ///< record cell malformed (bad length / payload)
  kChainMismatch,  ///< footer chain hash does not match the records
  kDigestMismatch, ///< footer SHA-256 does not match the body
  kBadFooter,      ///< footer malformed
};

const char* status_name(Status s);

/// One decoded trace event with interned ids resolved to strings.
struct DecodedEvent {
  std::uint8_t type = 0;
  std::string category;
  std::string name;
  std::string track;
  std::int64_t time = 0;
  std::int64_t duration = 0;
  std::uint64_t seq = 0;
  double value = 0.0;
};

struct HealthSummary {
  std::string source;
  std::uint64_t runs = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t anomalies = 0;
  bool healthy = true;
  std::string json;
};

struct CampaignSummary {
  std::string name;
  std::uint64_t seed = 0;
  std::uint64_t runs = 0;
  std::uint64_t unrecovered = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t fault_opportunities = 0;
  std::string json;
};

struct RunMeta {
  std::string name;
  std::uint64_t index = 0;
  std::uint64_t seed = 0;
};

/// A campaign resume point as stored in the artifact: identity, the
/// completed-run watermark and the opaque fold-state blob (decoded by
/// campaign/checkpoint.hpp; the merged metrics travel as ordinary metric
/// records in the same artifact).
struct CampaignCheckpointRecord {
  std::string name;
  std::uint64_t config_hash = 0;
  std::uint64_t total_runs = 0;
  std::uint64_t watermark = 0;
  std::vector<std::uint8_t> state;
};

class EvidenceReader {
 public:
  explicit EvidenceReader(
      const SchemaRegistry& registry = SchemaRegistry::builtin());

  /// Parses and validates \p bytes.  On any status other than kOk the
  /// decoded content is whatever was recovered before the error; error()
  /// carries a human-readable diagnostic.
  Status parse(const std::uint8_t* data, std::size_t size);
  Status parse(const std::vector<std::uint8_t>& bytes) {
    return parse(bytes.data(), bytes.size());
  }
  /// Reads the file and parses it; kTruncated when it cannot be opened.
  Status parse_file(const std::string& path);

  const std::string& error() const { return error_; }

  // -------------------------------------------------------- decoded data
  const std::vector<Schema>& artifact_schemas() const { return schemas_; }
  const std::map<std::uint32_t, std::string>& strings() const {
    return strings_;
  }
  const std::vector<DecodedEvent>& events() const { return events_; }
  const trace::MetricsRegistry& metrics() const { return metrics_; }
  const std::vector<util::BuildInfo>& build_infos() const {
    return build_infos_;
  }
  const std::vector<RunMeta>& run_metas() const { return run_metas_; }
  const std::vector<HealthSummary>& health_summaries() const {
    return health_summaries_;
  }
  const std::vector<CampaignSummary>& campaign_summaries() const {
    return campaign_summaries_;
  }
  const std::vector<CampaignCheckpointRecord>& campaign_checkpoints() const {
    return campaign_checkpoints_;
  }

  std::uint64_t record_count() const { return record_count_; }
  std::uint64_t chain_hash() const { return chain_hash_; }
  const std::string& sha256_hex() const { return sha256_hex_; }
  /// Records whose schema id the reader's registry does not know
  /// (skipped, per the evolution rules).
  std::uint64_t unknown_records() const { return unknown_records_; }

  /// Rebuilds a TraceRecorder holding the artifact's events (capacity
  /// sized to fit), for re-export through trace::write_chrome_trace /
  /// write_csv.  When the original recording dropped no ring events the
  /// re-export is byte-identical to exporting the live recorder.
  trace::TraceRecorder rebuild_trace() const;

 private:
  Status fail(Status s, const std::string& message);
  bool decode_record(std::uint16_t schema_id, const std::uint8_t* payload,
                     std::size_t size);

  const SchemaRegistry& registry_;
  std::string error_;

  std::vector<Schema> schemas_;
  std::map<std::uint32_t, std::string> strings_;
  std::vector<DecodedEvent> events_;
  trace::MetricsRegistry metrics_;
  std::vector<util::BuildInfo> build_infos_;
  std::vector<RunMeta> run_metas_;
  std::vector<HealthSummary> health_summaries_;
  std::vector<CampaignSummary> campaign_summaries_;
  std::vector<CampaignCheckpointRecord> campaign_checkpoints_;

  std::uint64_t record_count_ = 0;
  std::uint64_t chain_hash_ = 0;
  std::string sha256_hex_;
  std::uint64_t unknown_records_ = 0;
};

}  // namespace iecd::evidence
