#include "beans/adc_bean.hpp"

#include "beans/solvers.hpp"
#include "util/strings.hpp"

namespace iecd::beans {

AdcBean::AdcBean(std::string name) : Bean(std::move(name), "ADC") {
  properties().declare(PropertySpec::integer(
      "channel", 0, 0, 63, "analog input channel"));
  properties().declare(PropertySpec::integer(
      "resolution_bits", 12, 8, 16, "converter resolution"));
  properties().declare(PropertySpec::real(
      "vref_high", 3.3, 0.1, 12.0, "high reference voltage"));
  properties().declare(PropertySpec::boolean(
      "continuous", false, "free-running conversions"));
  properties().declare(PropertySpec::boolean(
      "interrupt", true, "raise OnEnd at end of conversion"));
  properties().declare(PropertySpec::integer(
      "interrupt_priority", 3, 0, 15, "OnEnd interrupt priority"));
  properties().declare(
      PropertySpec::real("conversion_time_us", 0.0, 0.0, 1e6,
                         "one-sample conversion time on this derivative")
          .derived());
}

std::vector<MethodSpec> AdcBean::methods() const {
  return {
      {"Measure", "byte %M_Measure(bool WaitForResult)",
       "start A/D conversion"},
      {"GetValue16", "byte %M_GetValue16(word *Value)",
       "read last result, left-justified to 16 bits"},
      {"EnableEvent", "void %M_EnableEvent(void)", "unmask OnEnd"},
      {"DisableEvent", "void %M_DisableEvent(void)", "mask OnEnd"},
  };
}

std::vector<EventSpec> AdcBean::events() const {
  return {{"OnEnd", "end of conversion (result register valid)"}};
}

ResourceDemand AdcBean::demand() const {
  ResourceDemand d;
  d.adc_channels = 1;
  return d;
}

void AdcBean::validate(const mcu::DerivativeSpec& cpu,
                       util::DiagnosticList& diagnostics) {
  const auto channel = properties().get_int("channel");
  if (channel >= cpu.adc_channels) {
    diagnostics.error(
        name() + ".channel",
        util::format("channel %lld does not exist on %s (has %d)",
                     static_cast<long long>(channel), cpu.name.c_str(),
                     cpu.adc_channels));
  }
  const auto bits = properties().get_int("resolution_bits");
  if (bits > cpu.adc_max_bits) {
    diagnostics.error(
        name() + ".resolution_bits",
        util::format("%lld bits requested but %s converts at most %d bits",
                     static_cast<long long>(bits), cpu.name.c_str(),
                     cpu.adc_max_bits));
  }
  const sim::SimTime conv = adc_conversion_time(cpu);
  properties().set_derived("conversion_time_us", sim::to_microseconds(conv));
  diagnostics.info(
      name() + ".conversion_time_us",
      util::format("derived conversion time: %.3f us",
                   sim::to_microseconds(conv)));
}

void AdcBean::bind(BindContext& ctx) {
  periph::AdcConfig cfg;
  cfg.resolution_bits =
      static_cast<int>(properties().get_int("resolution_bits"));
  cfg.channels = ctx.mcu.spec().adc_channels;
  cfg.vref_high = properties().get_real("vref_high");
  cfg.conversion_time = adc_conversion_time(ctx.mcu.spec());
  cfg.continuous = properties().get_bool("continuous");
  if (properties().get_bool("interrupt")) {
    cfg.eoc_vector = register_event(
        ctx, "OnEnd",
        static_cast<int>(properties().get_int("interrupt_priority")));
  }
  adc_ = std::make_unique<periph::AdcPeripheral>(ctx.mcu, cfg, name());
  mark_bound();
}

bool AdcBean::Measure() {
  return adc_ && adc_->start_conversion(channel());
}

std::uint16_t AdcBean::GetValue16() const {
  if (!adc_) return 0;
  const std::uint32_t raw = adc_->result(channel());
  const int shift = 16 - adc_->config().resolution_bits;
  return static_cast<std::uint16_t>(raw << shift);
}

std::uint32_t AdcBean::GetValueRaw() const {
  return adc_ ? adc_->result(channel()) : 0;
}

DriverSource AdcBean::driver_source() const {
  DriverSource out;
  out.header_name = name() + ".h";
  out.source_name = name() + ".c";
  std::string h = driver_header_prologue();
  for (const auto& m : methods()) {
    if (!method_enabled(m.name)) continue;
    std::string sig = m.signature;
    const std::string token = "%M";
    for (std::size_t pos; (pos = sig.find(token)) != std::string::npos;) {
      sig.replace(pos, token.size(), name());
    }
    h += sig + ";  /* " + m.description + " */\n";
  }
  h += "\n#endif /* __" + name() + "_H */\n";
  out.header = h;

  std::string c = "#include \"" + name() + ".h\"\n\n";
  c += util::format("/* channel %lld, %lld-bit, conversion %.3f us */\n",
                    static_cast<long long>(properties().get_int("channel")),
                    static_cast<long long>(
                        properties().get_int("resolution_bits")),
                    properties().get_real("conversion_time_us"));
  if (method_enabled("Measure")) {
    c += "byte " + name() +
         "_Measure(bool WaitForResult) {\n"
         "  ADC_CR |= ADC_CR_START;\n"
         "  if (WaitForResult) { while (!(ADC_SR & ADC_SR_EOC)) {} }\n"
         "  return ERR_OK;\n}\n";
  }
  if (method_enabled("GetValue16")) {
    c += "byte " + name() +
         "_GetValue16(word *Value) {\n"
         "  *Value = (word)(ADC_RSLT << " +
         std::to_string(16 - properties().get_int("resolution_bits")) +
         ");\n  return ERR_OK;\n}\n";
  }
  out.source = c;
  return out;
}

}  // namespace iecd::beans
