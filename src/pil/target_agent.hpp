/// \file target_agent.hpp
/// Board-side PIL support (the special code variant of paper Section 6):
/// the serial RX interrupt assembles sensor frames; a complete frame
/// deposits the values into the controller's communication buffer and runs
/// the model step in place of the timer/peripheral interrupts; the
/// controller outputs return to the simulator in the response frame.
#pragma once

#include "beans/serial_bean.hpp"
#include "codegen/signal_buffer.hpp"
#include "pil/frame.hpp"
#include "rt/runtime.hpp"

namespace iecd::pil {

class TargetAgent {
 public:
  TargetAgent(rt::Runtime& runtime, beans::SerialBean& serial,
              codegen::SignalBuffer& buffer);

  /// Installs the OnRxChar handler.  The runtime must be started (PIL
  /// variant: its periodic task is not timer-driven).
  void start();

  std::uint64_t frames_processed() const { return frames_processed_; }
  std::uint64_t crc_errors() const { return decoder_.crc_errors(); }

 private:
  rt::Runtime& runtime_;
  beans::SerialBean& serial_;
  codegen::SignalBuffer& buffer_;
  FrameDecoder decoder_;
  bool respond_ = false;
  std::uint8_t respond_seq_ = 0;
  std::uint64_t frames_processed_ = 0;
  std::uint64_t per_byte_cycles_ = 40;
};

}  // namespace iecd::pil
