/// \file rk4.hpp
/// The one classic Runge-Kutta-4 stepper shared by every integration site:
/// the model engine (model/engine.cpp), the event-world DC motor
/// (plant/dc_motor.cpp) and the lane-batched simulation core (src/batch/).
/// Historically each site carried its own copy of the stage/combination
/// loops; they are deduplicated here under a strict bit-identity contract.
///
/// Bit-identity contract: these helpers spell the stage candidate as
///     out[i] = y[i] + a * k[i]          (a = 0.5 * h or h)
/// and the combination as
///     y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i])
/// — token for token the expressions the engine has always used.  IEEE
/// double arithmetic is deterministic for a fixed expression tree, so any
/// caller evaluating the same derivatives in the same order produces the
/// same bits whether it steps one run (scalar spans) or N runs in SoA form
/// (lane spans).  tests/batch_test.cpp locks this: the batched core must
/// reproduce the scalar engine's trajectories exactly, which fails if
/// anyone "simplifies" these expressions (e.g. hoisting 1/L or fusing the
/// combination weights).
///
/// The loops are written over raw spans with no internal branches so the
/// autovectorizer turns them into packed mul/add over adjacent elements —
/// for the batched core the spans are 64-byte-aligned lane arrays and the
/// same source line is the SIMD kernel.
#pragma once

#include <cstddef>
#include <span>

namespace iecd::util {

/// RK4 stage candidate: out[i] = y[i] + a * k[i].  \p a is 0.5 * h for the
/// two midpoint stages and h for the endpoint stage.
inline void rk4_stage(std::span<const double> y, std::span<const double> k,
                      double a, std::span<double> out) {
  for (std::size_t i = 0; i < y.size(); ++i) {
    out[i] = y[i] + a * k[i];
  }
}

/// RK4 combination: y[i] += h / 6.0 * (k1 + 2 k2 + 2 k3 + k4).
inline void rk4_combine(std::span<double> y, double h,
                        std::span<const double> k1,
                        std::span<const double> k2,
                        std::span<const double> k3,
                        std::span<const double> k4) {
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
  }
}

/// One classic RK4 step over a fixed-size state: advances \p state from
/// \p t0 by \p h.  \p deriv is invoked as deriv(t, y, dx) at the stage
/// times t0, t0 + 0.5 h, t0 + 0.5 h, t0 + h — the same order and the same
/// stage-time expressions as the historical inline copies.
template <std::size_t N, typename Deriv>
inline void rk4_step(double (&state)[N], double t0, double h, Deriv&& deriv) {
  double k1[N], k2[N], k3[N], k4[N], y[N];
  deriv(t0, static_cast<const double*>(state), k1);
  rk4_stage(std::span<const double>(state), std::span<const double>(k1),
            0.5 * h, std::span<double>(y));
  deriv(t0 + 0.5 * h, static_cast<const double*>(y), k2);
  rk4_stage(std::span<const double>(state), std::span<const double>(k2),
            0.5 * h, std::span<double>(y));
  deriv(t0 + 0.5 * h, static_cast<const double*>(y), k3);
  rk4_stage(std::span<const double>(state), std::span<const double>(k3), h,
            std::span<double>(y));
  deriv(t0 + h, static_cast<const double*>(y), k4);
  rk4_combine(std::span<double>(state), h, std::span<const double>(k1),
              std::span<const double>(k2), std::span<const double>(k3),
              std::span<const double>(k4));
}

}  // namespace iecd::util
