// Campaign engine tests: reorder-fold ordering under adversarial
// completion orders, work-stealing scheduler output identity across
// thread/batch/placement configurations, checkpoint codec round-trip
// exactness, corrupt-checkpoint rejection, config-hash sensitivity,
// engine-vs-retained-runner report identity, and the kill-at-every-
// checkpoint resume byte-identity suite (fork + _exit after the k-th
// seal, resume, byte-compare report and manifest).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "campaign/checkpoint.hpp"
#include "campaign/engine.hpp"
#include "campaign/fold.hpp"
#include "campaign/stream.hpp"
#include "evidence/format.hpp"
#include "fault/campaign.hpp"
#include "fault/rng.hpp"
#include "obs/health_report.hpp"
#include "trace/metrics.hpp"

#if defined(__unix__)
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace iecd::campaign {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory under the test working dir.
fs::path scratch_dir(const std::string& name) {
  fs::path dir = fs::path("campaign_test_tmp") / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  return std::string(std::istreambuf_iterator<char>(is),
                     std::istreambuf_iterator<char>());
}

// --------------------------------------------------------------- ReorderFold

GroupResult make_group(std::size_t first, std::size_t size) {
  GroupResult g;
  g.first = first;
  g.metrics.resize(size);
  g.health.resize(size);
  for (std::size_t k = 0; k < size; ++k) {
    g.metrics[k].counter("run.index").increment(first + k);
  }
  return g;
}

TEST(ReorderFold, AdversarialCompletionOrdersFoldInIndexOrder) {
  // Groups of uneven sizes covering [0, 40); submit in several hostile
  // permutations — the sink must always see them in ascending index order
  // and the watermark must only advance over the contiguous prefix.
  const std::vector<std::pair<std::size_t, std::size_t>> groups = {
      {0, 3}, {3, 5}, {8, 1}, {9, 7}, {16, 4}, {20, 8}, {28, 2}, {30, 10}};
  std::vector<std::vector<std::size_t>> orders = {
      {7, 6, 5, 4, 3, 2, 1, 0},  // strictly reversed
      {1, 3, 5, 7, 0, 2, 4, 6},  // odd-first interleave
      {4, 0, 7, 2, 6, 1, 5, 3},  // shuffled
  };
  for (const auto& order : orders) {
    std::vector<std::size_t> seen;
    ReorderFold fold(0, 1000, [&](GroupResult& g) {
      seen.push_back(g.first);
      // Payload must arrive intact: each lane carries its own index.
      for (std::size_t k = 0; k < g.metrics.size(); ++k) {
        const auto* c = g.metrics[k].find_counter("run.index");
        ASSERT_NE(c, nullptr);
        EXPECT_EQ(c->value, g.first + k);
      }
    });
    for (std::size_t gi : order) {
      const auto [first, size] = groups[gi];
      fold.submit(std::make_unique<GroupResult>(make_group(first, size)));
      // Watermark covers exactly the folded contiguous prefix.
      std::size_t expect = 0;
      for (const auto& [f, s] : groups) {
        if (f != expect) break;
        bool folded = std::find(seen.begin(), seen.end(), f) != seen.end();
        if (!folded) break;
        expect = f + s;
      }
      EXPECT_EQ(fold.watermark(), expect);
    }
    ASSERT_EQ(seen.size(), groups.size());
    for (std::size_t i = 0; i < groups.size(); ++i) {
      EXPECT_EQ(seen[i], groups[i].first) << "order index " << i;
    }
    EXPECT_EQ(fold.watermark(), 40u);
  }
}

TEST(ReorderFold, WindowGatesEligibilityUntilWatermarkAdvances) {
  ReorderFold fold(0, 8, [](GroupResult&) {});
  EXPECT_TRUE(fold.eligible(0));
  EXPECT_TRUE(fold.eligible(7));
  EXPECT_FALSE(fold.eligible(8));   // at watermark + window: throttled
  EXPECT_FALSE(fold.eligible(100));
  fold.submit(std::make_unique<GroupResult>(make_group(0, 4)));
  EXPECT_EQ(fold.watermark(), 4u);
  EXPECT_TRUE(fold.eligible(8));    // window slid with the watermark
  EXPECT_FALSE(fold.eligible(12));
}

TEST(ReorderFold, ResumeStartOffsetsTheWindow) {
  std::vector<std::size_t> seen;
  ReorderFold fold(64, 16, [&](GroupResult& g) { seen.push_back(g.first); });
  EXPECT_EQ(fold.watermark(), 64u);
  EXPECT_TRUE(fold.eligible(64));
  EXPECT_FALSE(fold.eligible(80));
  fold.submit(std::make_unique<GroupResult>(make_group(68, 4)));
  EXPECT_TRUE(seen.empty());  // buffered: 64 not folded yet
  fold.submit(std::make_unique<GroupResult>(make_group(64, 4)));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 64u);
  EXPECT_EQ(seen[1], 68u);
  EXPECT_EQ(fold.watermark(), 72u);
}

// -------------------------------------------------------------- StreamRunner

/// Deterministic per-run value: a pure function of the absolute run index,
/// so any correct schedule folds the same sequence.
double run_value(std::size_t index) {
  fault::SplitMix64 rng(0xC0FFEEULL + index);
  double acc = 0.0;
  for (int i = 0; i < 64; ++i) {
    acc = acc * 0.5 + static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
  }
  return acc;
}

StreamRunner::GroupFn value_group_fn() {
  return [](std::size_t first, std::span<trace::MetricsRegistry> metrics,
            std::span<obs::HealthReport> health) {
    for (std::size_t k = 0; k < metrics.size(); ++k) {
      metrics[k].stats("v").add(run_value(first + k));
      health[k].runs = 1;
    }
  };
}

/// Runs the scheduler and returns the folded per-run values in sink order,
/// asserting the sink saw a contiguous ascending index sequence.
std::vector<double> collect(const StreamOptions& opts, std::size_t runs,
                            std::size_t start = 0) {
  std::vector<double> values;
  std::size_t expect = start;
  StreamRunner runner(opts);
  auto sink = [&](GroupResult& g) {
    EXPECT_EQ(g.first, expect);
    for (auto& m : g.metrics) {
      const auto* s = m.find_stats("v");
      EXPECT_NE(s, nullptr);
      if (s) values.push_back(s->sum());
    }
    expect = g.first + g.metrics.size();
  };
  StreamStats stats = runner.run(runs, start, value_group_fn(), sink);
  EXPECT_EQ(stats.runs, runs);
  EXPECT_EQ(stats.start, start);
  EXPECT_EQ(expect, runs);
  return values;
}

TEST(StreamRunner, OutputIdenticalAcrossThreadsBatchAndPlacement) {
  // Reference: sequential, scalar tiling.  Runs deliberately NOT a
  // multiple of any batch below, so remainder groups are exercised.
  const std::size_t kRuns = 53;
  StreamOptions ref;
  ref.threads = 1;
  const std::vector<double> expected = collect(ref, kRuns);
  ASSERT_EQ(expected.size(), kRuns);

  struct Config {
    std::size_t threads, batch, window, chunk;
    Placement placement;
    bool stealing;
  };
  const std::vector<Config> configs = {
      {2, 1, 0, 0, Placement::kCyclic, true},
      {8, 1, 0, 1, Placement::kCyclic, true},   // chunk 1: steal-heavy
      {4, 4, 0, 0, Placement::kCyclic, true},   // remainder group of 1
      {4, 8, 0, 2, Placement::kCyclic, true},   // remainder group of 5
      {4, 4, 0, 0, Placement::kCyclic, false},  // static cyclic, no steals
      {4, 4, 0, 0, Placement::kContiguous, true},
      {3, 5, 17, 1, Placement::kCyclic, true},  // odd window/batch mix
  };
  for (const auto& c : configs) {
    StreamOptions o;
    o.threads = c.threads;
    o.batch = c.batch;
    o.window = c.window;
    o.chunk = c.chunk;
    o.placement = c.placement;
    o.stealing = c.stealing;
    const std::vector<double> got = collect(o, kRuns);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      // Bit-exact, not approximately equal: the determinism contract.
      EXPECT_EQ(got[i], expected[i])
          << "run " << i << " differs at threads=" << c.threads
          << " batch=" << c.batch;
    }
  }
}

TEST(StreamRunner, ResumeTailMatchesUninterruptedRun) {
  const std::size_t kRuns = 40;
  const std::size_t kBatch = 4;
  StreamOptions o;
  o.threads = 2;
  o.batch = kBatch;
  const std::vector<double> full = collect(o, kRuns);
  // Resume from every group-aligned start, including start == runs.
  for (std::size_t start = 0; start <= kRuns; start += kBatch) {
    const std::vector<double> tail = collect(o, kRuns, start);
    ASSERT_EQ(tail.size(), kRuns - start);
    for (std::size_t i = 0; i < tail.size(); ++i) {
      EXPECT_EQ(tail[i], full[start + i]) << "resume " << start;
    }
  }
}

// ------------------------------------------------------- checkpoint codec

obs::HealthReport populated_health() {
  obs::HealthReport h;
  h.source = "campaign_test";
  h.runs = 17;
  auto& t = h.tasks["ctl.work"];
  for (int i = 0; i < 50; ++i) {
    const auto at = static_cast<sim::SimTime>(1000 + 37 * i);
    t.record(at, at + 3 + (i % 5), at + 20 + (i % 11));
  }
  auto& w = h.watermarks["queue.depth"];
  for (int i = 0; i < 9; ++i) w.update(0.5 * i - 1.25);
  h.anomalies["deadline_miss"] = 3;
  h.anomalies["overrun"] = 1;
  obs::FlightRecorder::Dump d;
  d.trigger = "deadline_miss";
  d.detail = "ctl.work";
  d.time = 2345;
  d.ordinal = 7;
  obs::FlightRecorder::DumpEvent e;
  e.type = trace::EventType::kInstant;
  e.category = "rt";
  e.name = "miss";
  e.track = "task";
  e.time = 2344;
  e.duration = 11;
  e.seq = 99;
  e.value = -0.75;
  d.events.push_back(e);
  d.monitor_state.push_back("ctl.work: miss at 2345");
  h.dumps.push_back(d);
  h.dumps_suppressed = 2;
  return h;
}

TEST(Checkpoint, HealthReportCodecRoundTripsByteExactly) {
  const obs::HealthReport original = populated_health();
  std::vector<std::uint8_t> first;
  encode_health_report(first, original);
  ASSERT_FALSE(first.empty());

  obs::HealthReport decoded;
  evidence::PayloadCursor cur(first.data(), first.size());
  ASSERT_TRUE(decode_health_report(cur, decoded));
  EXPECT_TRUE(cur.done());

  // Exactness check: re-encoding the decoded report must reproduce the
  // identical byte sequence (any lossy field would diverge here).
  std::vector<std::uint8_t> second;
  encode_health_report(second, decoded);
  EXPECT_EQ(first, second);

  EXPECT_EQ(decoded.source, original.source);
  EXPECT_EQ(decoded.runs, original.runs);
  EXPECT_EQ(decoded.anomalies, original.anomalies);
  EXPECT_EQ(decoded.dumps_suppressed, original.dumps_suppressed);
  ASSERT_EQ(decoded.dumps.size(), 1u);
  EXPECT_EQ(decoded.dumps[0].trigger, "deadline_miss");
  ASSERT_EQ(decoded.dumps[0].events.size(), 1u);
  EXPECT_EQ(decoded.dumps[0].events[0].seq, 99u);
  EXPECT_EQ(decoded.dumps[0].events[0].value, -0.75);
}

TEST(Checkpoint, TruncatedHealthBlobIsRejected) {
  std::vector<std::uint8_t> bytes;
  encode_health_report(bytes, populated_health());
  // Every proper prefix must fail to decode — never read past the end,
  // never "succeed" on partial state.  (Stride keeps the loop cheap.)
  for (std::size_t len = 0; len < bytes.size(); len += 7) {
    obs::HealthReport out;
    evidence::PayloadCursor cur(bytes.data(), len);
    EXPECT_FALSE(decode_health_report(cur, out)) << "prefix " << len;
  }
}

CheckpointState populated_state() {
  CheckpointState s;
  s.name = "resume_campaign";
  s.config_hash = 0xDEADBEEFCAFE1234ULL;
  s.total_runs = 96;
  s.watermark = 48;
  s.merged.counter("campaign.runs").increment(48);
  s.merged.counter("campaign.unrecovered").increment(2);
  for (int i = 0; i < 33; ++i) {
    s.merged.stats("campaign.cost").add(0.125 * i - 1.0);
  }
  s.merged.gauge("campaign.last") = 0.875;
  s.merged.series("campaign.lat").add(1.5);
  s.merged.series("campaign.lat").add(-2.25);
  auto& hist = s.merged.histogram("campaign.hist", 0.0, 10.0, 8);
  for (int i = 0; i < 20; ++i) hist.add(0.6 * i);
  s.health = populated_health();
  s.unrecovered_runs = {11, 37};
  s.unrecovered_health[11] = populated_health();
  s.unrecovered_health[37] = populated_health();
  s.unrecovered_health[37].runs = 1;
  return s;
}

TEST(Checkpoint, SaveLoadRoundTripsExactly) {
  const fs::path dir = scratch_dir("ckpt_roundtrip");
  const std::string path = (dir / "CHECKPOINT.evd").string();
  const CheckpointState original = populated_state();
  ASSERT_TRUE(save_checkpoint(path, original));

  CheckpointState loaded;
  ASSERT_EQ(load_checkpoint(path, loaded), CheckpointStatus::kOk);
  EXPECT_EQ(loaded.name, original.name);
  EXPECT_EQ(loaded.config_hash, original.config_hash);
  EXPECT_EQ(loaded.total_runs, original.total_runs);
  EXPECT_EQ(loaded.watermark, original.watermark);
  EXPECT_EQ(loaded.unrecovered_runs, original.unrecovered_runs);
  ASSERT_EQ(loaded.unrecovered_health.size(), 2u);

  // Metrics round-trip raw-exactly: bit-for-bit accumulator state.
  const auto* st = loaded.merged.find_stats("campaign.cost");
  const auto* so = original.merged.find_stats("campaign.cost");
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->count(), so->count());
  EXPECT_EQ(st->mean(), so->mean());
  EXPECT_EQ(st->m2(), so->m2());
  EXPECT_EQ(st->sum(), so->sum());
  EXPECT_EQ(st->min(), so->min());
  EXPECT_EQ(st->max(), so->max());
  ASSERT_NE(loaded.merged.find_counter("campaign.runs"), nullptr);
  EXPECT_EQ(loaded.merged.find_counter("campaign.runs")->value, 48u);
  ASSERT_NE(loaded.merged.find_series("campaign.lat"), nullptr);
  EXPECT_EQ(loaded.merged.find_series("campaign.lat")->samples(),
            original.merged.find_series("campaign.lat")->samples());
  ASSERT_NE(loaded.merged.find_histogram("campaign.hist"), nullptr);

  // The strongest exactness check: saving the LOADED state must produce a
  // byte-identical checkpoint file (build info is deterministic).
  const std::string path2 = (dir / "CHECKPOINT2.evd").string();
  ASSERT_TRUE(save_checkpoint(path2, loaded));
  EXPECT_EQ(slurp(path), slurp(path2));
}

TEST(Checkpoint, MissingCorruptAndTamperedFilesAreRejected) {
  const fs::path dir = scratch_dir("ckpt_corrupt");
  const std::string path = (dir / "CHECKPOINT.evd").string();
  CheckpointState out;
  EXPECT_EQ(load_checkpoint(path, out), CheckpointStatus::kMissing);

  ASSERT_TRUE(save_checkpoint(path, populated_state()));
  std::string bytes = slurp(path);

  // Truncation at several depths: always corrupt, never a crash.
  for (std::size_t keep : {std::size_t{0}, std::size_t{8}, bytes.size() / 2,
                           bytes.size() - 1}) {
    std::ofstream(path, std::ios::binary)
        << std::string_view(bytes).substr(0, keep);
    EXPECT_NE(load_checkpoint(path, out), CheckpointStatus::kOk)
        << "truncated to " << keep;
  }

  // Single-byte flip deep in the payload: the container hash catches it.
  std::string flipped = bytes;
  flipped[flipped.size() * 3 / 4] ^= 0x40;
  std::ofstream(path, std::ios::binary) << flipped;
  EXPECT_NE(load_checkpoint(path, out), CheckpointStatus::kOk);

  // Intact file still loads after all that thrashing.
  std::ofstream(path, std::ios::binary) << bytes;
  EXPECT_EQ(load_checkpoint(path, out), CheckpointStatus::kOk);
}

TEST(Checkpoint, ConfigHashCoversResultsAndIgnoresScheduling) {
  fault::CampaignOptions base;
  base.name = "hash_probe";
  base.seed = 7;
  base.runs = 100;
  base.batch = 4;
  base.plan.can_drop_rate = 0.01;
  const std::uint64_t h0 = campaign_config_hash(base);

  // Result-determining fields: any change must change the hash.
  {
    auto o = base;
    o.name = "hash_probe2";
    EXPECT_NE(campaign_config_hash(o), h0);
  }
  {
    auto o = base;
    o.seed = 8;
    EXPECT_NE(campaign_config_hash(o), h0);
  }
  {
    auto o = base;
    o.runs = 101;
    EXPECT_NE(campaign_config_hash(o), h0);
  }
  {
    auto o = base;
    o.batch = 8;
    EXPECT_NE(campaign_config_hash(o), h0);
  }
  {
    auto o = base;
    o.plan.can_drop_rate = 0.02;
    EXPECT_NE(campaign_config_hash(o), h0);
  }
  {
    auto o = base;
    o.plan.encoder_glitch_counts = -3;
    EXPECT_NE(campaign_config_hash(o), h0);
  }
  {
    auto o = base;
    o.plan.irq_spike_cycles = 250;
    EXPECT_NE(campaign_config_hash(o), h0);
  }
  // Scheduling knobs: excluded so a checkpoint resumes across thread
  // counts.
  {
    auto o = base;
    o.threads = 16;
    EXPECT_EQ(campaign_config_hash(o), h0);
  }
}

// ------------------------------------------------------------ CampaignEngine

/// Synthetic campaign scenario: deterministic spin work, one stats site,
/// one timing monitor, and a seed-derived unrecovered predicate — output
/// is a pure function of (seed, runs, batch).
bool engine_scenario(fault::RunContext& ctx) {
  fault::SplitMix64 rng(ctx.run_seed);
  double acc = 0.0;
  for (int i = 0; i < 400; ++i) {
    acc = acc * 0.9999999 + static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
  }
  ctx.metrics.stats("campaign.cost").add(acc);
  const auto t = static_cast<sim::SimTime>(1000 + ctx.index);
  ctx.health.tasks["test.work"].record(t, t + 1, t + 2);
  return (rng.next() & 7) != 0;  // ~1/8 of runs unrecovered
}

fault::CampaignOptions engine_options(std::size_t runs, std::size_t threads,
                                      std::size_t batch) {
  fault::CampaignOptions o;
  o.name = "engine_test";
  o.seed = 2026;
  o.runs = runs;
  o.threads = threads;
  o.batch = batch;
  return o;
}

TEST(CampaignEngine, ReportMatchesRetainedRunnerByteForByte) {
  const std::size_t kRuns = 64;
  fault::CampaignRunner runner(engine_options(kRuns, 1, 1));
  const std::string expected =
      runner.run(fault::CampaignScenario(engine_scenario)).to_json();

  struct Config {
    std::size_t threads, batch;
    bool contiguous;
  };
  for (const Config& c : std::vector<Config>{
           {1, 1, false}, {2, 1, false}, {4, 4, false}, {2, 4, true}}) {
    const fs::path dir = scratch_dir(
        "engine_ident_t" + std::to_string(c.threads) + "_b" +
        std::to_string(c.batch) + (c.contiguous ? "_c" : ""));
    EngineOptions eo;
    eo.campaign = engine_options(kRuns, c.threads, c.batch);
    eo.evidence_dir = dir.string();
    eo.write_run_artifacts = false;
    eo.contiguous = c.contiguous;
    CampaignEngine engine(eo);
    EngineResult r = engine.run(fault::CampaignScenario(engine_scenario));
    EXPECT_FALSE(r.resumed);
    EXPECT_TRUE(r.report.per_run.empty());       // streaming: nothing retained
    EXPECT_TRUE(r.report.per_run_health.empty());
    EXPECT_EQ(r.report.to_json(), expected)
        << "threads=" << c.threads << " batch=" << c.batch;
  }
}

#if defined(__unix__)

/// Runs the engine to completion in \p dir; returns (report json, manifest
/// bytes).
std::pair<std::string, std::string> run_full(const fs::path& dir,
                                             std::size_t runs,
                                             std::size_t threads,
                                             std::size_t batch,
                                             std::size_t checkpoint_every) {
  EngineOptions eo;
  eo.campaign = engine_options(runs, threads, batch);
  eo.evidence_dir = dir.string();
  eo.checkpoint_every = checkpoint_every;
  CampaignEngine engine(eo);
  EngineResult r = engine.run(fault::CampaignScenario(engine_scenario));
  EXPECT_FALSE(fs::exists(engine.checkpoint_path()))
      << "checkpoint must be deleted after a completed campaign";
  return {r.report.to_json(), slurp(r.evidence.manifest_path)};
}

TEST(CampaignEngine, KillAtEveryCheckpointThenResumeIsByteIdentical) {
  const std::size_t kRuns = 96;
  const std::size_t kBatch = 4;
  const std::size_t kEvery = 16;

  // Uninterrupted reference run (2 threads).
  const fs::path ref_dir = scratch_dir("resume_ref");
  const auto [ref_json, ref_manifest] =
      run_full(ref_dir, kRuns, 2, kBatch, kEvery);

  // Count the seals an uninterrupted run performs.
  std::size_t total_seals = 0;
  {
    const fs::path dir = scratch_dir("resume_count");
    EngineOptions eo;
    eo.campaign = engine_options(kRuns, 2, kBatch);
    eo.evidence_dir = dir.string();
    eo.checkpoint_every = kEvery;
    CampaignEngine engine(eo);
    total_seals = engine.run(fault::CampaignScenario(engine_scenario))
                      .checkpoints_sealed;
  }
  ASSERT_GE(total_seals, 3u) << "test needs several checkpoints to kill at";

  for (std::size_t kill_at = 1; kill_at <= total_seals; ++kill_at) {
    const fs::path dir = scratch_dir("resume_kill_" + std::to_string(kill_at));

    // Child: run until the kill_at-th checkpoint seal, then die the hard
    // way — no destructors, no flushes, exactly like a crashed fleet node.
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      EngineOptions eo;
      eo.campaign = engine_options(kRuns, 2, kBatch);
      eo.evidence_dir = dir.string();
      eo.checkpoint_every = kEvery;
      std::size_t sealed = 0;
      eo.on_checkpoint = [&sealed, kill_at](const CheckpointState&) {
        if (++sealed == kill_at) _exit(42);
      };
      CampaignEngine engine(eo);
      engine.run(fault::CampaignScenario(engine_scenario));
      _exit(0);  // kill_at beyond the seal count: completed instead
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 42) << "kill " << kill_at;
    ASSERT_TRUE(fs::exists(dir / CampaignEngine::checkpoint_filename()));

    // Resume — at a DIFFERENT thread count, which must not matter.
    EngineOptions eo;
    eo.campaign = engine_options(kRuns, 3, kBatch);
    eo.evidence_dir = dir.string();
    eo.checkpoint_every = kEvery;
    CampaignEngine engine(eo);
    EngineResult r = engine.run(fault::CampaignScenario(engine_scenario));
    EXPECT_TRUE(r.resumed) << "kill " << kill_at;
    EXPECT_GT(r.resume_start, 0u);
    EXPECT_EQ(r.resume_start % kBatch, 0u) << "watermark not group-aligned";
    EXPECT_EQ(r.report.to_json(), ref_json) << "kill " << kill_at;
    EXPECT_EQ(slurp(r.evidence.manifest_path), ref_manifest)
        << "kill " << kill_at;
  }
}

TEST(CampaignEngine, ConfigMismatchDiscardsCheckpointAndStartsFresh) {
  const std::size_t kRuns = 48;
  const fs::path dir = scratch_dir("resume_mismatch");

  // Crash after the first seal to leave a checkpoint behind.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    EngineOptions eo;
    eo.campaign = engine_options(kRuns, 2, 4);
    eo.evidence_dir = dir.string();
    eo.checkpoint_every = 8;
    eo.on_checkpoint = [](const CheckpointState&) { _exit(42); };
    CampaignEngine engine(eo);
    engine.run(fault::CampaignScenario(engine_scenario));
    _exit(0);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_EQ(WEXITSTATUS(status), 42);

  // Same directory, different seed: the checkpoint must be ignored (fresh
  // start), and the output must equal a clean run with the new seed.
  EngineOptions eo;
  eo.campaign = engine_options(kRuns, 2, 4);
  eo.campaign.seed = 9999;
  eo.evidence_dir = dir.string();
  eo.checkpoint_every = 8;
  CampaignEngine engine(eo);
  EngineResult r = engine.run(fault::CampaignScenario(engine_scenario));
  EXPECT_FALSE(r.resumed);

  fault::CampaignOptions clean = engine_options(kRuns, 1, 4);
  clean.seed = 9999;
  EXPECT_EQ(r.report.to_json(),
            fault::CampaignRunner(clean)
                .run(fault::CampaignScenario(engine_scenario))
                .to_json());
}

#endif  // __unix__

}  // namespace
}  // namespace iecd::campaign
