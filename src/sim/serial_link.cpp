#include "sim/serial_link.hpp"

#include <stdexcept>

namespace iecd::sim {

SimTime SerialConfig::byte_time() const {
  if (baud_rate == 0) throw std::invalid_argument("SerialConfig: baud 0");
  const double bit_ns = 1e9 / static_cast<double>(baud_rate);
  return static_cast<SimTime>(bit_ns * bits_per_byte() + 0.5);
}

SerialChannel::SerialChannel(EventQueue& queue, SerialConfig config,
                             std::string name)
    : queue_(queue), config_(config), name_(std::move(name)) {}

void SerialChannel::set_receiver(
    std::function<void(std::uint8_t, SimTime)> on_byte) {
  on_byte_ = std::move(on_byte);
}

void SerialChannel::corrupt_next_byte(std::uint8_t xor_mask) {
  pending_corruption_ = xor_mask;
  corrupt_armed_ = true;
}

void SerialChannel::transmit(std::uint8_t byte) {
  tx_fifo_.push_back(byte);
  if (!shifting_) start_next();
}

void SerialChannel::transmit(const std::uint8_t* data, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) transmit(data[i]);
}

void SerialChannel::start_next() {
  if (tx_fifo_.empty()) {
    shifting_ = false;
    return;
  }
  shifting_ = true;
  std::uint8_t byte = tx_fifo_.front();
  tx_fifo_.pop_front();
  if (corrupt_armed_) {
    byte ^= pending_corruption_;
    corrupt_armed_ = false;
  }
  const SimTime wire_time = config_.byte_time();
  busy_time_ += wire_time;
  queue_.schedule_in(wire_time, [this, byte] {
    ++bytes_transferred_;
    if (on_byte_) on_byte_(byte, queue_.now());
    start_next();
  });
}

void SerialChannel::reset() {
  tx_fifo_.clear();
  shifting_ = false;
  corrupt_armed_ = false;
  bytes_transferred_ = 0;
  busy_time_ = 0;
}

SerialLink::SerialLink(World& world, SerialConfig config, std::string name)
    : name_(std::move(name)),
      config_(config),
      a_to_b_(world.queue(), config, name_ + ".a2b"),
      b_to_a_(world.queue(), config, name_ + ".b2a") {
  world.attach(*this);
}

void SerialLink::reset() {
  a_to_b_.reset();
  b_to_a_.reset();
}

}  // namespace iecd::sim
