/// \file engine.hpp
/// CampaignEngine: the fleet-scale fault-campaign driver — the
/// work-stealing StreamRunner feeding one streaming, index-ordered sink
/// that merges each run, retains only the unrecovered runs' health,
/// writes per-run evidence as runs complete, and periodically seals a
/// resume checkpoint (checkpoint.hpp).  Memory is O(sites + histograms +
/// reorder window + unrecovered), never O(runs) — the difference the E14
/// bench gates at 100k runs.
///
/// Contracts (all locked by the campaign suite):
///   * the final CampaignReport and its JSON are byte-identical to
///     fault::CampaignRunner's for the same options (modulo the retained
///     per_run vectors, which the engine leaves empty);
///   * outputs are byte-identical for any thread count, chunk size,
///     steal schedule and reorder window;
///   * kill the process after any checkpoint seal, run the engine again,
///     and the resumed merged report + evidence manifest are
///     byte-identical to the uninterrupted run's.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "campaign/checkpoint.hpp"
#include "campaign/stream.hpp"
#include "evidence/sink.hpp"
#include "fault/campaign.hpp"

namespace iecd::campaign {

struct EngineOptions {
  /// Campaign identity + fault plan + threads/batch (fault layer options;
  /// the engine reuses fault::CampaignRunner::run_seed and
  /// fault::finalize_run_bookkeeping so per-run registries are
  /// byte-identical to the retained runner's).
  fault::CampaignOptions campaign;
  /// Evidence directory: run_<index>.evd artifacts stream in as runs
  /// complete, CHECKPOINT.evd lives here between seals, merged.evd and
  /// MANIFEST.jsonl seal the finished campaign.
  std::string evidence_dir;
  /// Seal a checkpoint after (at least) this many runs since the previous
  /// seal, at the next lane-group boundary.  0 disables checkpointing.
  std::size_t checkpoint_every = 0;
  /// Pick up a matching CHECKPOINT.evd and resume at its watermark.  A
  /// missing, corrupt or configuration-mismatched checkpoint silently
  /// starts fresh — a lost checkpoint costs recomputation, not
  /// correctness.
  bool resume = true;
  /// Stream one sealed artifact + sidecar per run.  Off for fleet-scale
  /// measurement campaigns where 100k files would dominate the cost; the
  /// merged artifact and manifest are still written.
  bool write_run_artifacts = true;

  // ------------------------- scheduling knobs (StreamOptions semantics)
  std::size_t window = 0;  ///< reorder window in runs (0 = auto)
  std::size_t chunk = 0;   ///< groups per placement chunk (0 = auto)
  bool stealing = true;    ///< steal-half work stealing
  bool contiguous = false; ///< static-tiling baseline placement
  obs::CampaignProgress* progress = nullptr;

  /// Called after every checkpoint seal with the state just written
  /// (checkpoint cadence tests and campaign_ctl's crash-after-checkpoint
  /// flag hang off this).  Runs on the fold's drain thread — keep it
  /// cheap.
  std::function<void(const CheckpointState&)> on_checkpoint;
};

struct EngineResult {
  /// Same content as fault::CampaignRunner's report except per_run /
  /// per_run_health stay empty (streaming); unrecovered_health carries the
  /// retained flight-recorder evidence instead.
  fault::CampaignReport report;
  evidence::CampaignEvidence evidence;
  StreamStats sched;
  bool resumed = false;
  std::size_t resume_start = 0;      ///< watermark the run started from
  std::uint64_t checkpoints_sealed = 0;
};

class CampaignEngine {
 public:
  explicit CampaignEngine(EngineOptions options);

  const EngineOptions& options() const { return options_; }

  EngineResult run(const fault::CampaignScenario& scenario) const;
  EngineResult run(const fault::BatchCampaignScenario& scenario) const;

  /// "CHECKPOINT.evd" within the evidence directory.
  static std::string checkpoint_filename();
  std::string checkpoint_path() const;

 private:
  EngineResult execute(const StreamRunner::GroupFn& group_fn) const;

  EngineOptions options_;
};

}  // namespace iecd::campaign
