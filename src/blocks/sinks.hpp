/// \file sinks.hpp
/// Sink blocks: the scope (time-series recorder feeding metrics and
/// experiment reports) and the terminator.
#pragma once

#include <vector>

#include "model/block.hpp"
#include "model/logging.hpp"

namespace iecd::blocks {

using model::Block;
using model::SampleLog;
using model::SimContext;

class ScopeBlock : public Block {
 public:
  explicit ScopeBlock(std::string name, int channels = 1);
  const char* type_name() const override { return "Scope"; }
  void initialize(const SimContext& ctx) override;
  void output(const SimContext& ctx) override;
  const SampleLog& log(int channel = 0) const;
  mcu::OpCounts step_ops(bool) const override { return {}; }  // host-only

 private:
  std::vector<SampleLog> logs_;
};

class TerminatorBlock : public Block {
 public:
  explicit TerminatorBlock(std::string name) : Block(std::move(name), 1, 0) {}
  const char* type_name() const override { return "Terminator"; }
  void output(const SimContext&) override {}
};

}  // namespace iecd::blocks
