#include "beans/timer_int_bean.hpp"

#include "beans/solvers.hpp"
#include "util/strings.hpp"

namespace iecd::beans {

TimerIntBean::TimerIntBean(std::string name) : Bean(std::move(name), "TimerInt") {
  properties().declare(PropertySpec::real(
      "period_s", 0.001, 1e-7, 3600.0, "interrupt period (sample time)"));
  properties().declare(PropertySpec::real(
      "tolerance_percent", 0.1, 0.0, 50.0, "acceptable period error"));
  properties().declare(PropertySpec::integer(
      "interrupt_priority", 1, 0, 15, "OnInterrupt priority"));
  properties().declare(
      PropertySpec::integer("prescaler", 0, 0, 1 << 16, "derived prescaler")
          .derived());
  properties().declare(
      PropertySpec::integer("modulo", 0, 0, INT64_C(1) << 33, "derived modulo")
          .derived());
  properties().declare(
      PropertySpec::real("achieved_period_s", 0.0, 0.0, 3600.0,
                         "derived actual period")
          .derived());
  properties().declare(
      PropertySpec::real("period_error_percent", 0.0, 0.0, 100.0,
                         "derived |achieved-requested|/requested")
          .derived());
}

std::vector<MethodSpec> TimerIntBean::methods() const {
  return {
      {"Enable", "byte %M_Enable(void)", "start periodic interrupts"},
      {"Disable", "byte %M_Disable(void)", "stop periodic interrupts"},
  };
}

std::vector<EventSpec> TimerIntBean::events() const {
  return {{"OnInterrupt", "periodic timer interrupt (sample hit)"}};
}

ResourceDemand TimerIntBean::demand() const {
  ResourceDemand d;
  d.timer_channels = 1;
  return d;
}

void TimerIntBean::validate(const mcu::DerivativeSpec& cpu,
                            util::DiagnosticList& diagnostics) {
  if (cpu.timer_channels <= 0) {
    diagnostics.error(name(), "no timer channel available on " + cpu.name);
    return;
  }
  const double period = properties().get_real("period_s");
  const double tol = properties().get_real("tolerance_percent") / 100.0;
  const auto sol = solve_timer_period(cpu, period, tol);
  if (!sol) {
    diagnostics.error(
        name() + ".period_s",
        util::format("period %.9g s not achievable on %s within %.3f%% "
                     "(prescalers %u..%u, %u-bit modulo)",
                     period, cpu.name.c_str(), tol * 100.0,
                     cpu.timer_prescalers.front(), cpu.timer_prescalers.back(),
                     cpu.timer_modulo_bits));
    return;
  }
  properties().set_derived("prescaler",
                           static_cast<std::int64_t>(sol->prescaler));
  properties().set_derived("modulo", static_cast<std::int64_t>(sol->modulo));
  properties().set_derived("achieved_period_s", sol->achieved_period_s);
  properties().set_derived("period_error_percent",
                           sol->relative_error * 100.0);
  diagnostics.info(
      name(),
      util::format("timer solved: prescaler %u, modulo %u -> %.9g s "
                   "(error %.4f%%)",
                   sol->prescaler, sol->modulo, sol->achieved_period_s,
                   sol->relative_error * 100.0));
}

void TimerIntBean::bind(BindContext& ctx) {
  periph::TimerConfig cfg;
  cfg.prescaler =
      static_cast<std::uint32_t>(properties().get_int("prescaler"));
  cfg.modulo = static_cast<std::uint32_t>(properties().get_int("modulo"));
  if (cfg.prescaler == 0 || cfg.modulo == 0) {
    throw std::logic_error("TimerIntBean: bind() before successful validate()");
  }
  cfg.overflow_vector = register_event(
      ctx, "OnInterrupt",
      static_cast<int>(properties().get_int("interrupt_priority")));
  timer_ = std::make_unique<periph::TimerPeripheral>(ctx.mcu, cfg, name());
  mark_bound();
}

void TimerIntBean::Enable() {
  if (timer_) timer_->start();
}

void TimerIntBean::Disable() {
  if (timer_) timer_->stop();
}

DriverSource TimerIntBean::driver_source() const {
  DriverSource out;
  out.header_name = name() + ".h";
  out.source_name = name() + ".c";
  out.header = driver_header_prologue() + driver_method_decls() +
               "\n#endif /* __" + name() + "_H */\n";
  std::string c = "#include \"" + name() + ".h\"\n\n";
  c += util::format("/* prescaler %lld, modulo %lld -> period %.9g s */\n",
                    static_cast<long long>(properties().get_int("prescaler")),
                    static_cast<long long>(properties().get_int("modulo")),
                    properties().get_real("achieved_period_s"));
  if (method_enabled("Enable")) {
    c += "byte " + name() +
         "_Enable(void) { TMR_CTRL |= TMR_CM_RISING; return ERR_OK; }\n";
  }
  if (method_enabled("Disable")) {
    c += "byte " + name() +
         "_Disable(void) { TMR_CTRL &= ~TMR_CM_MASK; return ERR_OK; }\n";
  }
  out.source = c;
  return out;
}

}  // namespace iecd::beans
