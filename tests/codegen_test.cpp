#include <gtest/gtest.h>

#include "beans/bean_project.hpp"
#include "beans/timer_int_bean.hpp"
#include "blocks/discrete.hpp"
#include "blocks/math_blocks.hpp"
#include "blocks/sources.hpp"
#include "codegen/generator.hpp"
#include "codegen/signal_buffer.hpp"
#include "core/model_sync.hpp"
#include "core/pe_blocks.hpp"
#include "mcu/derivative.hpp"
#include "model/subsystem.hpp"
#include "pil/frame.hpp"

namespace iecd::codegen {
namespace {

TEST(SignalBuffer, SlotRegistrationAndAccess) {
  SignalBuffer buf;
  EXPECT_EQ(buf.add_input("QD1"), 0u);
  EXPECT_EQ(buf.add_input("AD1"), 1u);
  EXPECT_EQ(buf.add_output("PWM1"), 0u);
  buf.set_input(0, 3.14);
  buf.set_inputs({1.0, 2.0});
  EXPECT_DOUBLE_EQ(buf.input("QD1"), 1.0);
  EXPECT_DOUBLE_EQ(buf.input("AD1"), 2.0);
  buf.set_output("PWM1", 0.5);
  EXPECT_EQ(buf.outputs(), (std::vector<double>{0.5}));
  EXPECT_THROW(buf.input("nope"), std::invalid_argument);
}

/// Builds a minimal controller: TimerInt + QuadDec -> Gain -> PWM.
struct MiniController {
  model::Model top{"top"};
  model::Subsystem* sub;
  beans::BeanProject project{"p"};
  std::unique_ptr<core::ModelSync> sync;
  core::QuadDecPeBlock* qd = nullptr;
  core::PwmPeBlock* pwm = nullptr;

  MiniController() {
    sub = &top.add<model::Subsystem>("ctrl", 1, 1);
    sub->set_sample_time(model::SampleTime::discrete(0.001));
    sync = std::make_unique<core::ModelSync>(sub->inner(), project);
    auto& in = sub->inner().add<model::Inport>("in");
    auto& out = sub->inner().add<model::Outport>("out");
    sync->add_timer_int("TI1");
    qd = &sync->add_quad_dec("QD1");
    pwm = &sync->add_pwm("PWM1");
    auto& g = sub->inner().add<blocks::GainBlock>("g", 1e-4);
    sub->inner().connect(in, 0, *qd, 0);
    sub->inner().connect(*qd, 0, g, 0);
    sub->inner().connect(g, 0, *pwm, 0);
    sub->inner().connect(*pwm, 0, out, 0);
    sub->bind_ports({&in}, {&out});
  }
};

TEST(Generator, RequiresDiscreteControllerRate) {
  MiniController mc;
  mc.sub->set_sample_time(model::SampleTime::continuous());
  Generator gen;
  EXPECT_THROW(gen.generate(*mc.sub, mc.project, {}), std::invalid_argument);
}

TEST(Generator, ProducesPeriodicTaskWithCosts) {
  MiniController mc;
  Generator gen;
  util::DiagnosticList diags;
  auto app = gen.generate(*mc.sub, mc.project, {}, &diags);
  EXPECT_FALSE(diags.has_errors()) << diags.to_string();
  ASSERT_GE(app.tasks.size(), 1u);
  EXPECT_EQ(app.tasks[0].trigger, TaskSpec::Trigger::kPeriodic);
  EXPECT_DOUBLE_EQ(app.tasks[0].period_s, 0.001);
  const auto& dsc = mcu::find_derivative("DSC56F8367");
  EXPECT_GT(app.task_cycles(0, dsc.costs), 10u);
  EXPECT_GT(app.memory.data_bytes, 0u);
  EXPECT_GT(app.memory.code_bytes, 2048u);
  EXPECT_LT(app.estimated_utilisation(dsc.costs, dsc.clock_hz), 1.0);
}

TEST(Generator, HookEnablesExactlyRequiredMethods) {
  MiniController mc;
  Generator gen;
  gen.generate(*mc.sub, mc.project, {});
  const beans::Bean* qd = mc.project.find("QD1");
  EXPECT_TRUE(qd->method_enabled("GetPosition"));
  EXPECT_FALSE(qd->method_enabled("ResetPosition"));
  const beans::Bean* pwm = mc.project.find("PWM1");
  EXPECT_TRUE(pwm->method_enabled("SetRatio16"));
  EXPECT_TRUE(pwm->method_enabled("Enable"));
  const beans::Bean* timer = mc.project.find("TI1");
  EXPECT_TRUE(timer->method_enabled("Enable"));
}

TEST(Generator, HookAlignsTimerPeriodWithControllerRate) {
  MiniController mc;
  // Timer bean starts at a different period; the hook must retune it.
  util::DiagnosticList d;
  mc.project.find("TI1")->set_property("period_s", 0.005, d);
  Generator gen;
  gen.generate(*mc.sub, mc.project, {});
  auto* timer = dynamic_cast<beans::TimerIntBean*>(mc.project.find("TI1"));
  EXPECT_DOUBLE_EQ(timer->properties().get_real("period_s"), 0.001);
}

TEST(Generator, SwitchesIoModesAndRestores) {
  MiniController mc;
  EXPECT_EQ(mc.qd->mode(), IoMode::kMil);
  Generator gen;
  gen.generate(*mc.sub, mc.project, {});
  EXPECT_EQ(mc.qd->mode(), IoMode::kTarget);
  EXPECT_EQ(mc.pwm->mode(), IoMode::kTarget);
  Generator::restore_mil_mode(*mc.sub);
  EXPECT_EQ(mc.qd->mode(), IoMode::kMil);
}

TEST(Generator, PilVariantRegistersBufferSlots) {
  MiniController mc;
  SignalBuffer buffer;
  GeneratorOptions opts;
  opts.pil = true;
  opts.pil_buffer = &buffer;
  Generator gen;
  auto app = gen.generate(*mc.sub, mc.project, opts);
  EXPECT_TRUE(app.pil_variant);
  ASSERT_EQ(buffer.input_count(), 1u);
  ASSERT_EQ(buffer.output_count(), 1u);
  EXPECT_EQ(buffer.input_names()[0], "QD1");
  EXPECT_EQ(buffer.output_names()[0], "PWM1");
  EXPECT_EQ(mc.qd->mode(), IoMode::kPil);
}

TEST(Generator, PilWithoutBufferRejected) {
  MiniController mc;
  GeneratorOptions opts;
  opts.pil = true;
  Generator gen;
  EXPECT_THROW(gen.generate(*mc.sub, mc.project, opts),
               std::invalid_argument);
}

TEST(Generator, EmitsCompilableLookingSources) {
  MiniController mc;
  Generator gen;
  const auto app = gen.generate(*mc.sub, mc.project, {});
  ASSERT_TRUE(app.sources.count("model.h"));
  ASSERT_TRUE(app.sources.count("model.c"));
  ASSERT_TRUE(app.sources.count("main.c"));
  ASSERT_TRUE(app.sources.count("PE_Types.h"));
  ASSERT_TRUE(app.sources.count("QD1.h"));
  const std::string& step = app.sources.at("model.c");
  EXPECT_NE(step.find("void model_step(void)"), std::string::npos);
  EXPECT_NE(step.find("QD1_GetPosition"), std::string::npos);
  EXPECT_NE(step.find("PWM1_SetRatio16"), std::string::npos);
  EXPECT_NE(step.find("rtb_g"), std::string::npos);
  EXPECT_GT(app.source_lines(), 50u);
}

TEST(Generator, PilSourcesUseCommBufferAccess) {
  MiniController mc;
  SignalBuffer buffer;
  GeneratorOptions opts;
  opts.pil = true;
  opts.pil_buffer = &buffer;
  Generator gen;
  const auto app = gen.generate(*mc.sub, mc.project, opts);
  const std::string& step = app.sources.at("model.c");
  EXPECT_NE(step.find("PIL_ReadInput"), std::string::npos);
  EXPECT_NE(step.find("PIL_WriteOutput"), std::string::npos);
  EXPECT_EQ(step.find("QD1_GetPosition"), std::string::npos);
}

TEST(Generator, FixedPointChangesCostProfile) {
  MiniController mc;
  Generator gen;
  GeneratorOptions fx;
  fx.fixed_point = true;
  const auto app_fx = gen.generate(*mc.sub, mc.project, fx);
  Generator gen2;
  MiniController mc2;
  const auto app_fl = gen2.generate(*mc2.sub, mc2.project, {});
  const auto& dsc = mcu::find_derivative("DSC56F8367");
  EXPECT_LT(app_fx.task_cycles(0, dsc.costs),
            app_fl.task_cycles(0, dsc.costs));
}

TEST(Generator, MemoryOverflowFlaggedOnTinyPart) {
  // HCS08 has 4 KB RAM; a controller with a huge state burden must trip
  // the estimate.
  model::Model top{"top"};
  auto& sub = top.add<model::Subsystem>("ctrl", 0, 0);
  sub.set_sample_time(model::SampleTime::discrete(0.001));
  beans::BeanProject project("p", "HCS08GB60");
  project.add<beans::TimerIntBean>("TI1");
  // 40 moving averages x 64 taps x 8 B of double state > 4 KB.
  for (int i = 0; i < 40; ++i) {
    sub.inner().add<blocks::MovingAverageBlock>("ma" + std::to_string(i), 64);
  }
  sub.bind_ports({}, {});
  Generator gen;
  util::DiagnosticList diags;
  gen.generate(sub, project, {}, &diags);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_NE(diags.to_string().find("RAM"), std::string::npos);
}

// ------------------------------------------------------------- PIL frames

TEST(PilFrame, EncodeDecodeRoundTrip) {
  pil::Frame frame;
  frame.type = pil::FrameType::kSensorData;
  frame.seq = 42;
  frame.payload = pil::encode_signals({1.5, -2.25, 100.0});
  const auto bytes = pil::encode_frame(frame);
  EXPECT_EQ(bytes[0], pil::kSyncByte);

  pil::FrameDecoder decoder;
  pil::Frame decoded;
  bool got = false;
  decoder.set_callback([&](const pil::Frame& f) {
    decoded = f;
    got = true;
  });
  for (std::uint8_t b : bytes) decoder.feed(b);
  ASSERT_TRUE(got);
  EXPECT_EQ(decoded.seq, 42);
  const auto values = pil::decode_signals(decoded.payload);
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[0], 1.5);
  EXPECT_DOUBLE_EQ(values[1], -2.25);
  EXPECT_DOUBLE_EQ(values[2], 100.0);
  EXPECT_EQ(decoder.frames_ok(), 1u);
}

TEST(PilFrame, CorruptedFrameDroppedAndCounted) {
  pil::Frame frame;
  frame.payload = pil::encode_signals({3.0});
  auto bytes = pil::encode_frame(frame);
  bytes[5] ^= 0xFF;  // corrupt payload
  pil::FrameDecoder decoder;
  int delivered = 0;
  decoder.set_callback([&](const pil::Frame&) { ++delivered; });
  for (std::uint8_t b : bytes) decoder.feed(b);
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(decoder.crc_errors(), 1u);
}

TEST(PilFrame, ResynchronizesAfterGarbage) {
  pil::FrameDecoder decoder;
  int delivered = 0;
  decoder.set_callback([&](const pil::Frame&) { ++delivered; });
  // Garbage, then a valid frame.
  for (std::uint8_t b : {0x01, 0x02, 0x03}) decoder.feed(b);
  pil::Frame frame;
  frame.payload = pil::encode_signals({1.0});
  for (std::uint8_t b : pil::encode_frame(frame)) decoder.feed(b);
  EXPECT_EQ(delivered, 1);
}

TEST(PilFrame, BackToBackFramesAllDecoded) {
  pil::FrameDecoder decoder;
  int delivered = 0;
  decoder.set_callback([&](const pil::Frame&) { ++delivered; });
  for (int i = 0; i < 10; ++i) {
    pil::Frame frame;
    frame.seq = static_cast<std::uint8_t>(i);
    frame.payload = pil::encode_signals({static_cast<double>(i)});
    for (std::uint8_t b : pil::encode_frame(frame)) decoder.feed(b);
  }
  EXPECT_EQ(delivered, 10);
}

TEST(PilFrame, EmptyPayloadFrameValid) {
  pil::Frame frame;
  pil::FrameDecoder decoder;
  int delivered = 0;
  decoder.set_callback([&](const pil::Frame& f) {
    EXPECT_TRUE(f.payload.empty());
    ++delivered;
  });
  for (std::uint8_t b : pil::encode_frame(frame)) decoder.feed(b);
  EXPECT_EQ(delivered, 1);
}

}  // namespace
}  // namespace iecd::codegen
