/// \file host_endpoint.hpp
/// Simulator-PC side of the PIL bench (Fig. 6.2): at each control period it
/// samples the plant model, ships the sensor frame down the serial line,
/// and applies the actuator frame coming back.  The plant and the board
/// exchange data "at the end of each simulation step (control period)".
///
/// Fast path: the endpoint reuses one set of encode/decode scratch buffers
/// for the whole session (no heap traffic per exchange), receives the
/// response as a whole burst (one event per frame instead of one per
/// byte), and — with batch > 1 — packs several control steps into a single
/// frame, trading per-step actuation latency for wire efficiency.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/monitor.hpp"
#include "pil/frame.hpp"
#include "sim/serial_link.hpp"
#include "sim/world.hpp"
#include "util/statistics.hpp"

namespace iecd::pil {

class HostEndpoint {
 public:
  struct Options {
    sim::SimTime period = sim::milliseconds(1);  ///< control period
    sim::SimTime start = 0;
    /// Control steps per frame.  1 = classic per-period exchange
    /// (bit-identical to the unbatched protocol); N packs N samples into
    /// one frame and fires the exchange every N periods.
    int batch = 1;
  };

  /// \p tx: channel toward the board, \p rx: channel from the board.
  HostEndpoint(sim::World& world, sim::SerialChannel& tx,
               sim::SerialChannel& rx, Options options);

  /// Plant coupling: \p sample reads the plant outputs, \p apply writes
  /// the actuator values, \p advance integrates the plant model up to the
  /// given time [s].
  void set_plant(std::function<std::vector<double>()> sample,
                 std::function<void(const std::vector<double>&)> apply,
                 std::function<void(double)> advance);

  /// Allocation-free plant coupling: \p sample_into appends the plant
  /// outputs to the scratch vector it is handed (cleared by the caller).
  void set_plant_buffered(
      std::function<void(std::vector<double>&)> sample_into,
      std::function<void(const std::vector<double>&)> apply,
      std::function<void(double)> advance);

  /// Starts the periodic exchange.
  void start();
  void stop() { running_ = false; }

  const util::SampleSeries& round_trip_us() const { return rtt_us_; }
  std::uint64_t exchanges() const { return exchanges_; }
  std::uint64_t deadline_misses() const { return deadline_misses_; }
  std::uint64_t crc_errors() const { return decoder_.crc_errors(); }
  const FrameDecoder& decoder() const { return decoder_; }

  /// Online observability: when set, every matched response feeds its
  /// per-sequence round trip (send instant -> decoded arrival) into
  /// \p monitor, keyed on the send instant for jitter tracking.  Null
  /// detaches; passive either way.
  void set_rtt_monitor(obs::TimingMonitor* monitor) { rtt_monitor_ = monitor; }

 private:
  void exchange();
  void on_frame(const Frame& frame);
  void note_sent(std::uint8_t seq, sim::SimTime when);

  sim::World& world_;
  sim::SerialChannel& tx_;
  Options options_;
  std::function<void(std::vector<double>&)> sample_into_;
  std::function<void(const std::vector<double>&)> apply_;
  std::function<void(double)> advance_;
  FrameDecoder decoder_;
  bool running_ = false;
  sim::EventId exchange_event_ = 0;
  bool awaiting_response_ = false;
  std::uint8_t seq_ = 0;
  util::SampleSeries rtt_us_;
  std::uint64_t exchanges_ = 0;
  std::uint64_t deadline_misses_ = 0;
  obs::TimingMonitor* rtt_monitor_ = nullptr;

  /// Session-lifetime scratch: reused every exchange.
  std::vector<double> sample_values_;
  std::vector<std::uint8_t> tx_payload_;
  std::vector<std::uint8_t> tx_bytes_;
  std::vector<double> apply_values_;

  /// Outstanding sensor frames, FIFO.  Responses come back in order, so
  /// the round trip of response seq s is measured against the OLDEST
  /// unanswered send with that seq — correct even when a slow line builds
  /// a backlog deeper than the 8-bit sequence space (the aliasing that
  /// produced the non-monotonic RTT-vs-baud anomaly in E3).
  struct SentEntry {
    std::uint8_t seq = 0;
    sim::SimTime when = 0;
  };
  std::vector<SentEntry> sent_ring_;
  std::size_t sent_head_ = 0;
  std::size_t sent_tail_ = 0;  ///< == head means empty
};

}  // namespace iecd::pil
