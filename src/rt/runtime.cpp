#include "rt/runtime.hpp"

#include <stdexcept>

#include "trace/trace.hpp"
#include "util/strings.hpp"

namespace iecd::rt {

Runtime::Runtime(mcu::Mcu& mcu, beans::BeanProject& project,
                 codegen::GeneratedApplication& app)
    : mcu_(mcu), project_(project), app_(app) {
  if (!project.bound()) {
    throw std::logic_error("Runtime: bean project must be bound to the MCU");
  }
  for (const auto& bean : project.beans()) {
    if (auto* t = dynamic_cast<beans::TimerIntBean*>(bean.get())) {
      if (!timer_) timer_ = t;
    }
    if (auto* w = dynamic_cast<beans::WatchdogBean*>(bean.get())) {
      if (!watchdog_) watchdog_ = w;
    }
  }
}

std::string Runtime::periodic_profile_key() const {
  return timer_ ? profile_key(timer_->name(), "OnInterrupt") : std::string();
}

model::SimContext Runtime::context_now() const {
  model::SimContext ctx;
  ctx.t = sim::to_seconds(mcu_.now());
  ctx.dt = period_s();
  return ctx;
}

double Runtime::period_s() const {
  for (const auto& t : app_.tasks) {
    if (t.trigger == codegen::TaskSpec::Trigger::kPeriodic) return t.period_s;
  }
  return 0.0;
}

std::uint64_t Runtime::step_cycles() const {
  for (std::size_t i = 0; i < app_.tasks.size(); ++i) {
    if (app_.tasks[i].trigger == codegen::TaskSpec::Trigger::kPeriodic) {
      return app_.task_cycles(i, mcu_.spec().costs);
    }
  }
  return 0;
}

void Runtime::step_once(const model::SimContext& ctx) {
  for (auto& t : app_.tasks) {
    if (t.trigger != codegen::TaskSpec::Trigger::kPeriodic) continue;
    if (t.read) t.read(ctx);
    if (t.compute) t.compute(ctx);
    if (t.write) t.write(ctx);
    ++periodic_activations_;
    if (auto* tr = trace::recorder()) {
      tr->instant("rt", "pil_step", "rt_sched", mcu_.now(),
                  static_cast<double>(periodic_activations_));
    }
    return;
  }
}

void Runtime::install_periodic_task(std::size_t index) {
  if (!timer_) {
    throw std::logic_error(
        "Runtime: no TimerInt bean in the project for the periodic task");
  }
  codegen::TaskSpec* task = &app_.tasks[index];
  const std::uint64_t cycles = app_.task_cycles(index, mcu_.spec().costs);
  mcu::IsrHandler handler;
  handler.name = task->name;
  handler.stack_bytes = task->stack_bytes;
  handler.body = [this, task, cycles]() -> std::uint64_t {
    const model::SimContext ctx = context_now();
    if (task->read) task->read(ctx);
    if (task->compute) task->compute(ctx);
    ++periodic_activations_;
    return cycles + draw_overrun_cycles();
  };
  handler.commit = [this, task] {
    // Outputs reach the peripherals when the ISR retires: the generated
    // code's genuine sampling-to-actuation delay.
    if (task->write) task->write(context_now());
    // Service the COP from the model step: if the step stops running (or
    // chronically overruns), the watchdog bites.
    if (watchdog_) watchdog_->Clear();
  };
  timer_->set_event_handler("OnInterrupt", std::move(handler));
}

void Runtime::install_event_task(std::size_t index) {
  codegen::TaskSpec* task = &app_.tasks[index];
  beans::Bean* bean = project_.find(task->event_bean);
  if (!bean) {
    throw std::logic_error("Runtime: event task references unknown bean " +
                           task->event_bean);
  }
  const std::uint64_t cycles = app_.task_cycles(index, mcu_.spec().costs);
  mcu::IsrHandler handler;
  handler.name = task->name;
  handler.stack_bytes = task->stack_bytes;
  handler.body = [this, task, cycles]() -> std::uint64_t {
    const model::SimContext ctx = context_now();
    if (task->read) task->read(ctx);
    if (task->compute) task->compute(ctx);
    return cycles;
  };
  handler.commit = [this, task] {
    if (task->write) task->write(context_now());
  };
  bean->set_event_handler(task->event_name, std::move(handler));
}

void Runtime::attach_monitors(obs::MonitorHub& hub) {
  monitors_ = &hub;
  monitor_cache_.clear();
  for (const auto& task : app_.tasks) {
    obs::TimingMonitor::Config config;
    std::string dispatch_key;
    if (task.trigger == codegen::TaskSpec::Trigger::kPeriodic) {
      // Implicit deadline: the next activation must not find the previous
      // one still running.
      config.period_s = task.period_s;
      config.deadline_s = task.period_s;
      dispatch_key = periodic_profile_key();
    } else {
      dispatch_key = profile_key(task.event_bean, task.event_name);
    }
    if (dispatch_key.empty()) continue;
    // Monitors live in the hub under the application-level task name; the
    // cache maps the ISR trampoline name the dispatch records carry.
    monitor_cache_.emplace(
        std::move(dispatch_key),
        MonitorEntry{&hub.timing(task.name, config), task.name});
  }
}

void Runtime::set_overrun_hook(std::function<std::uint64_t()> hook) {
  overrun_hook_ = std::move(hook);
}

void Runtime::set_background_task(std::function<std::uint64_t()> chunk) {
  mcu_.cpu().set_background(std::move(chunk));
  mcu_.cpu().kick();
}

void Runtime::start() {
  if (started_) return;
  started_ = true;

  mcu_.cpu().set_dispatch_observer([this](const mcu::DispatchRecord& rec) {
    profiler_.record(rec);
    if (auto* tr = trace::recorder()) {
      // Scheduling decision record: per-task execution time on the rt
      // track (the Cpu track already carries the dispatch slice itself).
      tr->counter("rt", std::string(rec.name) + ".exec_us", "rt_sched",
                  rec.end_time,
                  sim::to_microseconds(rec.end_time - rec.start_time));
    }
    if (monitors_) {
      auto it = monitor_cache_.find(rec.name);
      if (it == monitor_cache_.end()) {
        // ISR not declared as a task (e.g. a bean's own service interrupt):
        // create its monitor lazily, aperiodic and deadline-free.
        std::string name(rec.name);
        it = monitor_cache_
                 .emplace(name, MonitorEntry{&monitors_->timing(name), name})
                 .first;
      }
      if (it->second.monitor->record(rec.raise_time, rec.start_time,
                                     rec.end_time)) {
        monitors_->flight().trigger("deadline_miss", rec.end_time,
                                    it->second.task);
      }
    }
  });

  for (std::size_t i = 0; i < app_.tasks.size(); ++i) {
    switch (app_.tasks[i].trigger) {
      case codegen::TaskSpec::Trigger::kPeriodic:
        if (!app_.pil_variant) install_periodic_task(i);
        break;
      case codegen::TaskSpec::Trigger::kEvent:
        install_event_task(i);
        break;
    }
  }

  if (app_.init) app_.init(context_now());
  if (watchdog_ && !app_.pil_variant) watchdog_->Enable();
  if (timer_ && !app_.pil_variant) timer_->Enable();
}

std::string Runtime::memory_report() const {
  std::string out = util::format(
      "estimated: data %u B, code %u B, task stack %u B\n",
      app_.memory.data_bytes, app_.memory.code_bytes,
      app_.memory.stack_bytes);
  out += util::format("observed worst-case stack on target: %u B\n",
                      mcu_.cpu().max_stack_bytes());
  return out;
}

}  // namespace iecd::rt
