#include "periph/uart.hpp"

#include <algorithm>

namespace iecd::periph {

UartPeripheral::UartPeripheral(mcu::Mcu& mcu, UartConfig config,
                               std::string name)
    : Peripheral(mcu, std::move(name)), config_(config) {}

void UartPeripheral::connect(sim::SerialChannel& tx, sim::SerialChannel& rx) {
  tx_ = &tx;
  rx.set_receiver([this](std::uint8_t byte, sim::SimTime when) {
    on_rx_byte(byte, when);
  });
}

std::size_t UartPeripheral::tx_in_flight() const {
  if (tx_busy_until_ <= now()) return 0;
  const sim::SimTime bt = tx_->config().byte_time();
  // Ceil: a partially shifted byte still occupies its FIFO slot.
  return static_cast<std::size_t>((tx_busy_until_ - now() + bt - 1) / bt);
}

void UartPeripheral::arm_drain_event() {
  if (drain_armed_) return;
  drain_armed_ = true;
  queue().schedule_in(tx_busy_until_ - queue().now(), [this] {
    drain_armed_ = false;
    if (queue().now() < tx_busy_until_) {
      // More bytes entered the FIFO since this was armed: chase the new
      // drain instant (one re-arm per extension, not one event per byte).
      arm_drain_event();
      return;
    }
    if (config_.tx_vector >= 0) mcu().raise_irq(config_.tx_vector);
  });
}

bool UartPeripheral::send(std::uint8_t byte) { return send(&byte, 1) == 1; }

std::size_t UartPeripheral::send(const std::uint8_t* data, std::size_t len) {
  if (!tx_ || len == 0) return 0;
  const std::size_t in_flight = tx_in_flight();
  if (in_flight >= config_.tx_fifo_depth) return 0;
  const std::size_t accepted =
      std::min(len, config_.tx_fifo_depth - in_flight);
  bytes_sent_ += accepted;
  tx_->transmit(data, accepted);
  const sim::SimTime bt = tx_->config().byte_time();
  tx_busy_until_ = std::max(tx_busy_until_, queue().now()) +
                   bt * static_cast<sim::SimTime>(accepted);
  if (tx_fifo_monitor_) {
    tx_fifo_monitor_->update(static_cast<double>(in_flight + accepted));
  }
  arm_drain_event();
  return accepted;
}

void UartPeripheral::on_rx_byte(std::uint8_t byte, sim::SimTime /*when*/) {
  if (rx_valid_) {
    ++overruns_;  // previous byte never read: hardware overrun flag
  }
  rx_data_ = byte;
  rx_valid_ = true;
  ++bytes_received_;
  if (config_.rx_vector >= 0) mcu().raise_irq(config_.rx_vector);
}

std::optional<std::uint8_t> UartPeripheral::read() {
  if (!rx_valid_) return std::nullopt;
  rx_valid_ = false;
  return rx_data_;
}

void UartPeripheral::reset() {
  rx_valid_ = false;
  overruns_ = 0;
  bytes_sent_ = 0;
  bytes_received_ = 0;
  tx_busy_until_ = 0;
}

}  // namespace iecd::periph
