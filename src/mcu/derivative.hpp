/// \file derivative.hpp
/// MCU derivative descriptions.  Processor Expert's key selling point in
/// the paper is that the application model is MCU-independent: porting is
/// "selecting another CPU bean in the PE project window".  A derivative
/// spec captures everything the expert system and the simulator need to
/// retarget: clock, instruction costs, memory, peripheral resource counts
/// and timing constraints.  The concrete entries are analogs of the
/// families the paper names (Freescale DSC/HCS12/ColdFire/HCS08).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mcu/cost_model.hpp"
#include "mcu/memory.hpp"

namespace iecd::mcu {

struct DerivativeSpec {
  std::string name;
  double clock_hz = 0;
  int native_word_bits = 16;
  bool has_fpu = false;
  CostModel costs;
  MemoryCapacity memory;

  // Peripheral resources the expert system allocates.
  int adc_channels = 0;
  int adc_max_bits = 12;
  double adc_clock_hz = 0;          ///< conversion clock
  double adc_cycles_per_sample = 0; ///< conversion length in ADC clocks
  int pwm_channels = 0;
  std::uint32_t pwm_counter_bits = 16;
  int timer_channels = 0;
  std::uint32_t timer_modulo_bits = 16;
  std::vector<std::uint32_t> timer_prescalers;  ///< shared prescaler choices
  int quadrature_decoders = 0;
  int uarts = 0;
  std::vector<std::uint32_t> uart_bauds;  ///< supported standard rates
  int gpio_pins = 0;

  std::uint32_t max_irq_priorities = 7;
};

/// All derivatives this build knows about.
const std::vector<DerivativeSpec>& derivative_registry();

/// Looks a derivative up by name; throws std::invalid_argument if unknown.
const DerivativeSpec& find_derivative(const std::string& name);

/// The case-study part: 16-bit hybrid DSC at 60 MHz, no FPU (MC56F8367
/// analog).
inline const char* kDefaultDerivative = "DSC56F8367";

}  // namespace iecd::mcu
