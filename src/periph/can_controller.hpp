/// \file can_controller.hpp
/// On-chip CAN controller: couples an MCU to the shared bus with an
/// acceptance filter, a single receive buffer (overrun semantics like the
/// UART's) and a receive interrupt.
#pragma once

#include <optional>

#include "periph/peripheral.hpp"
#include "sim/can_bus.hpp"

namespace iecd::periph {

struct CanControllerConfig {
  std::uint32_t acceptance_id = 0;    ///< matched against (id & mask)
  std::uint32_t acceptance_mask = 0;  ///< 0 accepts everything
  mcu::IrqVector rx_vector = -1;
};

class CanController : public Peripheral {
 public:
  CanController(mcu::Mcu& mcu, CanControllerConfig config,
                std::string name = "can0");

  /// Joins the bus (once).
  void connect(sim::CanBus& bus);

  /// Joins a bus whose delivery path is mediated externally (the co-sim
  /// master's shared-bus coupling, src/cosim/): the controller transmits
  /// into \p bus under \p node, but registers NO receive callback — the
  /// mediator buffers deliveries at the bus boundary and hands them back
  /// through deliver() at the negotiated exchange time.
  void connect_external(sim::CanBus& bus, sim::CanBus::NodeId node);

  /// Delivery entry point for externally mediated buses: runs the exact
  /// acceptance-filter / rx-buffer / interrupt path a directly connected
  /// controller runs inside the bus's delivery event.
  void deliver(const sim::CanFrame& frame, sim::SimTime when) {
    on_rx(frame, when);
  }

  /// Queues a frame for transmission.  Returns false when disconnected or
  /// the frame is malformed.
  bool send(const sim::CanFrame& frame);

  /// Reads and clears the receive buffer.
  std::optional<sim::CanFrame> read();

  bool rx_full() const { return rx_valid_; }
  std::uint64_t overruns() const { return overruns_; }
  std::uint64_t frames_sent() const { return sent_; }
  std::uint64_t frames_received() const { return received_; }

  void reset() override;

 private:
  bool accepts(const sim::CanFrame& frame) const;
  void on_rx(const sim::CanFrame& frame, sim::SimTime when);

  CanControllerConfig config_;
  sim::CanBus* bus_ = nullptr;
  sim::CanBus::NodeId node_ = -1;
  sim::CanFrame rx_frame_;
  bool rx_valid_ = false;
  std::uint64_t overruns_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
};

}  // namespace iecd::periph
