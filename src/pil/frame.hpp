/// \file frame.hpp
/// The PIL wire protocol: framed packets over the asynchronous serial
/// line.  Layout: 0x7E | type | seq | len | payload[len] | crc16(2, BE).
/// The CRC covers type..payload.  Signal payloads carry float32 LE values
/// (adequate precision for plant/actuator exchange and 2.5x smaller than
/// doubles on a line whose bandwidth dominates the step budget).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace iecd::pil {

inline constexpr std::uint8_t kSyncByte = 0x7E;

enum class FrameType : std::uint8_t {
  kSensorData = 1,    ///< host -> target: plant outputs
  kActuatorData = 2,  ///< target -> host: controller outputs
};

struct Frame {
  FrameType type = FrameType::kSensorData;
  std::uint8_t seq = 0;
  std::vector<std::uint8_t> payload;
};

/// Serializes a frame (sync, header, payload, CRC).
std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Packs doubles as float32 LE payload.
std::vector<std::uint8_t> encode_signals(const std::vector<double>& values);
/// Unpacks a float32 LE payload.
std::vector<double> decode_signals(const std::vector<std::uint8_t>& payload);

/// Streaming decoder: feed bytes as they arrive; complete, CRC-valid
/// frames invoke the callback.  Corrupted frames are dropped and counted;
/// the decoder resynchronizes on the next sync byte.
class FrameDecoder {
 public:
  void set_callback(std::function<void(const Frame&)> on_frame);

  /// Feeds one byte; returns true if a frame completed (valid or not).
  bool feed(std::uint8_t byte);

  std::uint64_t frames_ok() const { return frames_ok_; }
  std::uint64_t crc_errors() const { return crc_errors_; }

  void reset();

 private:
  enum class State { kSync, kType, kSeq, kLen, kPayload, kCrcHi, kCrcLo };

  State state_ = State::kSync;
  Frame current_;
  std::size_t expected_len_ = 0;
  std::uint16_t rx_crc_ = 0;
  std::function<void(const Frame&)> on_frame_;
  std::uint64_t frames_ok_ = 0;
  std::uint64_t crc_errors_ = 0;
};

}  // namespace iecd::pil
