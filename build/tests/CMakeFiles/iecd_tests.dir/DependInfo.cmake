
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/autosar_test.cpp" "tests/CMakeFiles/iecd_tests.dir/autosar_test.cpp.o" "gcc" "tests/CMakeFiles/iecd_tests.dir/autosar_test.cpp.o.d"
  "/root/repo/tests/beans_test.cpp" "tests/CMakeFiles/iecd_tests.dir/beans_test.cpp.o" "gcc" "tests/CMakeFiles/iecd_tests.dir/beans_test.cpp.o.d"
  "/root/repo/tests/blocks_test.cpp" "tests/CMakeFiles/iecd_tests.dir/blocks_test.cpp.o" "gcc" "tests/CMakeFiles/iecd_tests.dir/blocks_test.cpp.o.d"
  "/root/repo/tests/can_test.cpp" "tests/CMakeFiles/iecd_tests.dir/can_test.cpp.o" "gcc" "tests/CMakeFiles/iecd_tests.dir/can_test.cpp.o.d"
  "/root/repo/tests/codegen_test.cpp" "tests/CMakeFiles/iecd_tests.dir/codegen_test.cpp.o" "gcc" "tests/CMakeFiles/iecd_tests.dir/codegen_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/iecd_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/iecd_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/coverage_test.cpp" "tests/CMakeFiles/iecd_tests.dir/coverage_test.cpp.o" "gcc" "tests/CMakeFiles/iecd_tests.dir/coverage_test.cpp.o.d"
  "/root/repo/tests/distributed_test.cpp" "tests/CMakeFiles/iecd_tests.dir/distributed_test.cpp.o" "gcc" "tests/CMakeFiles/iecd_tests.dir/distributed_test.cpp.o.d"
  "/root/repo/tests/edge_test.cpp" "tests/CMakeFiles/iecd_tests.dir/edge_test.cpp.o" "gcc" "tests/CMakeFiles/iecd_tests.dir/edge_test.cpp.o.d"
  "/root/repo/tests/emission_test.cpp" "tests/CMakeFiles/iecd_tests.dir/emission_test.cpp.o" "gcc" "tests/CMakeFiles/iecd_tests.dir/emission_test.cpp.o.d"
  "/root/repo/tests/errorpath_test.cpp" "tests/CMakeFiles/iecd_tests.dir/errorpath_test.cpp.o" "gcc" "tests/CMakeFiles/iecd_tests.dir/errorpath_test.cpp.o.d"
  "/root/repo/tests/extensions_test.cpp" "tests/CMakeFiles/iecd_tests.dir/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/iecd_tests.dir/extensions_test.cpp.o.d"
  "/root/repo/tests/fixpt_test.cpp" "tests/CMakeFiles/iecd_tests.dir/fixpt_test.cpp.o" "gcc" "tests/CMakeFiles/iecd_tests.dir/fixpt_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/iecd_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/iecd_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/mcu_test.cpp" "tests/CMakeFiles/iecd_tests.dir/mcu_test.cpp.o" "gcc" "tests/CMakeFiles/iecd_tests.dir/mcu_test.cpp.o.d"
  "/root/repo/tests/model_test.cpp" "tests/CMakeFiles/iecd_tests.dir/model_test.cpp.o" "gcc" "tests/CMakeFiles/iecd_tests.dir/model_test.cpp.o.d"
  "/root/repo/tests/periph_test.cpp" "tests/CMakeFiles/iecd_tests.dir/periph_test.cpp.o" "gcc" "tests/CMakeFiles/iecd_tests.dir/periph_test.cpp.o.d"
  "/root/repo/tests/pil_test.cpp" "tests/CMakeFiles/iecd_tests.dir/pil_test.cpp.o" "gcc" "tests/CMakeFiles/iecd_tests.dir/pil_test.cpp.o.d"
  "/root/repo/tests/plant_test.cpp" "tests/CMakeFiles/iecd_tests.dir/plant_test.cpp.o" "gcc" "tests/CMakeFiles/iecd_tests.dir/plant_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/iecd_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/iecd_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/rt_test.cpp" "tests/CMakeFiles/iecd_tests.dir/rt_test.cpp.o" "gcc" "tests/CMakeFiles/iecd_tests.dir/rt_test.cpp.o.d"
  "/root/repo/tests/schedulability_test.cpp" "tests/CMakeFiles/iecd_tests.dir/schedulability_test.cpp.o" "gcc" "tests/CMakeFiles/iecd_tests.dir/schedulability_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/iecd_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/iecd_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/iecd_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/iecd_tests.dir/util_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/iecd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pil/CMakeFiles/iecd_pil.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/iecd_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/iecd_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/plant/CMakeFiles/iecd_plant.dir/DependInfo.cmake"
  "/root/repo/build/src/blocks/CMakeFiles/iecd_blocks.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/iecd_model.dir/DependInfo.cmake"
  "/root/repo/build/src/beans/CMakeFiles/iecd_beans.dir/DependInfo.cmake"
  "/root/repo/build/src/periph/CMakeFiles/iecd_periph.dir/DependInfo.cmake"
  "/root/repo/build/src/mcu/CMakeFiles/iecd_mcu.dir/DependInfo.cmake"
  "/root/repo/build/src/fixpt/CMakeFiles/iecd_fixpt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/iecd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iecd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
