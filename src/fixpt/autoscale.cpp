#include "fixpt/autoscale.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace iecd::fixpt {

RangeObservation RangeObservation::with_margin(double factor) const {
  RangeObservation out = *this;
  const double span = std::max(std::abs(min), std::abs(max));
  const double extra = span * (factor - 1.0);
  out.min -= extra;
  out.max += extra;
  return out;
}

FixedFormat choose_format(const RangeObservation& range, int word_bits,
                          util::DiagnosticList* diagnostics) {
  // Search from most fractional bits downwards for the first format whose
  // representable interval covers the observed range.
  for (int frac = word_bits + 16; frac >= -(word_bits + 16); --frac) {
    const FixedFormat fmt{word_bits, frac, true};
    if (range.min >= fmt.min_value() && range.max <= fmt.max_value()) {
      // Keep descending while still covering: the first hit has max frac.
      return fmt;
    }
  }
  if (diagnostics) {
    diagnostics->error(
        "fixpt.autoscale",
        util::format("range [%g, %g] not representable in %d bits", range.min,
                     range.max, word_bits));
  }
  return FixedFormat{word_bits, 0, true};
}

double worst_case_error(const FixedFormat& fmt) {
  return fmt.resolution() / 2.0;
}

}  // namespace iecd::fixpt
