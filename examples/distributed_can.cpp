// Distributed servo over CAN: the Section 7 control loop split across
// three MCUs — sensor node (encoder), controller node (PI law) and
// actuator node (PWM + motor) — exchanging messages on one CAN bus.
// This is the "distributed nature" the paper's introduction targets: the
// run shows the two-hop sensing-to-actuation latency the network adds,
// and how a loaded bus (background traffic at higher priority) eats into
// the control quality.
#include <cstdio>

#include "core/distributed.hpp"

using namespace iecd;

int main() {
  core::DistributedConfig cfg;
  cfg.duration_s = 1.0;

  std::printf("Distributed servo: sensor --CAN--> controller --CAN--> "
              "actuator\n\n");
  const auto clean = core::run_distributed_servo(cfg);
  std::printf("clean 500 kbit/s bus:\n");
  std::printf("  rise %.1f ms, overshoot %.2f %%, IAE %.3f, final %.2f "
              "rad/s (%s)\n",
              clean.metrics.rise_time * 1e3, clean.metrics.overshoot_percent,
              clean.iae, clean.speed.last_value(),
              clean.metrics.settled ? "settled" : "NOT settled");
  std::printf("  frames: %llu sensor + %llu actuator, bus %.1f %% busy\n",
              static_cast<unsigned long long>(clean.sensor_frames),
              static_cast<unsigned long long>(clean.actuator_frames),
              clean.bus_utilisation * 100.0);
  std::printf("  sensing->actuation latency %.0f us mean / %.0f us max "
              "(two frame hops)\n\n",
              clean.loop_latency_us_mean, clean.loop_latency_us_max);

  std::printf("with 2000 higher-priority background frames/s:\n");
  cfg.background_frames_per_s = 2000.0;
  const auto loaded = core::run_distributed_servo(cfg);
  std::printf("  IAE %.3f (%.2fx), latency %.0f us mean / %.0f us max, "
              "bus %.1f %% busy, rx overruns %llu\n\n",
              loaded.iae, loaded.iae / clean.iae,
              loaded.loop_latency_us_mean, loaded.loop_latency_us_max,
              loaded.bus_utilisation * 100.0,
              static_cast<unsigned long long>(
                  loaded.controller_rx_overruns));

  std::printf("slow 100 kbit/s bus, no background traffic:\n");
  cfg.background_frames_per_s = 0.0;
  cfg.can_bitrate = 100000;
  const auto slow = core::run_distributed_servo(cfg);
  std::printf("  IAE %.3f (%.2fx), latency %.0f us mean / %.0f us max, "
              "bus %.1f %% busy (%s)\n",
              slow.iae, slow.iae / clean.iae, slow.loop_latency_us_mean,
              slow.loop_latency_us_max, slow.bus_utilisation * 100.0,
              slow.metrics.settled ? "settled" : "NOT settled");
  return 0;
}
