// Batched SoA simulation core: the determinism contract (every lane
// bit-identical to the scalar engine), divergence masking, the shared-RK4
// refactor lock, the batched sweep/campaign plumbing, and the batched
// simple plants.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "batch/plant_batch.hpp"
#include "batch/servo_batch.hpp"
#include "core/case_study.hpp"
#include "exec/sweep.hpp"
#include "fault/campaign.hpp"
#include "fault/sites.hpp"
#include "model/engine.hpp"
#include "model/model.hpp"
#include "blocks/sinks.hpp"
#include "blocks/sources.hpp"
#include "plant/dc_motor.hpp"
#include "plant/simple_plants.hpp"
#include "util/rk4.hpp"

namespace iecd {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_logs_identical(const model::SampleLog& a,
                           const model::SampleLog& b,
                           const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(bits(a.time_at(i)), bits(b.time_at(i)))
        << what << " time sample " << i;
    ASSERT_EQ(bits(a.value_at(i)), bits(b.value_at(i)))
        << what << " value sample " << i << " t=" << a.time_at(i);
  }
}

void expect_metrics_identical(const model::StepMetrics& a,
                              const model::StepMetrics& b) {
  EXPECT_EQ(bits(a.rise_time), bits(b.rise_time));
  EXPECT_EQ(bits(a.overshoot_percent), bits(b.overshoot_percent));
  EXPECT_EQ(bits(a.settling_time), bits(b.settling_time));
  EXPECT_EQ(bits(a.steady_state_error), bits(b.steady_state_error));
  EXPECT_EQ(bits(a.peak_value), bits(b.peak_value));
  EXPECT_EQ(a.settled, b.settled);
}

std::int64_t pwm_modulo_of(core::ServoSystem& servo) {
  return servo.pwm_block().bean().properties().get_int("modulo");
}

batch::ServoBatchConfig batch_config_from(const core::ServoConfig& c,
                                          std::int64_t pwm_modulo = 0) {
  batch::ServoBatchConfig cfg;
  cfg.period_s = c.period_s;
  cfg.duration_s = c.duration_s;
  cfg.encoder_lines = c.encoder_lines;
  cfg.speed_filter_taps = c.speed_filter_taps;
  cfg.hw_fidelity = c.mil_hw_fidelity;
  cfg.pwm_modulo = pwm_modulo;
  return cfg;
}

batch::ServoLane lane_from(const core::ServoConfig& c) {
  batch::ServoLane lane;
  lane.setpoint = c.setpoint;
  lane.setpoint_time = c.setpoint_time;
  lane.kp = c.kp;
  lane.ki = c.ki;
  lane.motor = c.motor;
  return lane;
}

void expect_lane_matches_scalar(const batch::ServoLaneResult& got,
                                const core::ServoSystem::MilResult& want,
                                const char* what) {
  expect_logs_identical(got.speed, want.speed, what);
  expect_logs_identical(got.duty, want.duty, what);
  expect_metrics_identical(got.metrics, want.metrics);
  EXPECT_EQ(bits(got.iae), bits(want.iae)) << what;
  EXPECT_FALSE(got.faulted) << what;
}

// ------------------------------------------------------------ identity

TEST(BatchIdentity, Width1MatchesScalarMil) {
  core::ServoConfig config;
  config.duration_s = 0.4;
  core::ServoSystem servo(config);
  const auto scalar = servo.run_mil();

  const batch::ServoLane lane = lane_from(config);
  const auto results = batch::run_servo_batch(
      batch_config_from(config, pwm_modulo_of(servo)), {&lane, 1});
  ASSERT_EQ(results.size(), 1u);
  expect_lane_matches_scalar(results[0], scalar, "width-1");
}

TEST(BatchIdentity, HeterogeneousLanesEachMatchOwnScalarRun) {
  core::ServoConfig base;
  base.duration_s = 0.3;

  std::vector<batch::ServoLane> lanes;
  std::vector<core::ServoConfig> configs;
  for (int k = 0; k < 8; ++k) {
    core::ServoConfig c = base;
    c.setpoint = 60.0 + 15.0 * k;
    c.setpoint_time = 0.02 + 0.01 * k;
    c.kp = 0.003 + 0.0004 * k;
    c.ki = 0.10 + 0.01 * k;
    c.motor.inertia = 1e-4 * (1.0 + 0.1 * k);
    c.motor.resistance = 1.0 + 0.2 * k;
    configs.push_back(c);
    lanes.push_back(lane_from(c));
  }

  core::ServoSystem probe(base);
  const auto results = batch::run_servo_batch(
      batch_config_from(base, pwm_modulo_of(probe)), lanes);
  ASSERT_EQ(results.size(), lanes.size());
  for (std::size_t k = 0; k < lanes.size(); ++k) {
    core::ServoSystem servo(configs[k]);
    const auto scalar = servo.run_mil();
    SCOPED_TRACE(k);
    expect_lane_matches_scalar(results[k], scalar, "lane");
  }
}

TEST(BatchIdentity, ValidatedPwmModuloMatchesScalar) {
  core::ServoConfig config;
  config.duration_s = 0.3;
  core::ServoSystem servo(config);
  servo.validate();  // derives the real PWM modulo into the bean
  const auto modulo =
      servo.pwm_block().bean().properties().get_int("modulo");
  ASSERT_GT(modulo, 0);
  const auto scalar = servo.run_mil();

  const batch::ServoLane lane = lane_from(config);
  const auto results = batch::run_servo_batch(
      batch_config_from(config, modulo), {&lane, 1});
  expect_lane_matches_scalar(results[0], scalar, "validated-modulo");
}

TEST(BatchIdentity, HardwareFidelityAblationMatchesScalar) {
  core::ServoConfig config;
  config.duration_s = 0.3;
  config.mil_hw_fidelity = false;
  config.encoder_lines = 16;
  core::ServoSystem servo(config);
  const auto scalar = servo.run_mil();

  const batch::ServoLane lane = lane_from(config);
  const auto results =
      batch::run_servo_batch(batch_config_from(config), {&lane, 1});
  expect_lane_matches_scalar(results[0], scalar, "ablation");
}

TEST(BatchIdentity, CoarseScheduleConfigMatchesScalar) {
  core::ServoConfig config;
  config.duration_s = 0.25;
  config.period_s = 0.002;
  config.encoder_lines = 32;
  config.speed_filter_taps = 3;
  core::ServoSystem servo(config);
  const auto scalar = servo.run_mil();

  const batch::ServoLane lane = lane_from(config);
  const auto results = batch::run_servo_batch(
      batch_config_from(config, pwm_modulo_of(servo)), {&lane, 1});
  expect_lane_matches_scalar(results[0], scalar, "coarse");
}

TEST(BatchIdentity, LoadTorqueLaneMatchesScalar) {
  core::ServoConfig config;
  config.duration_s = 0.3;

  auto pulse = [](double t, double) {
    return (t >= 0.1 && t < 0.15) ? 0.02 : 0.0;
  };
  core::ServoSystem servo(config);
  servo.motor_block().set_load(pulse);
  const auto scalar = servo.run_mil();

  batch::ServoLane lane = lane_from(config);
  lane.load = pulse;
  const auto results = batch::run_servo_batch(
      batch_config_from(config, pwm_modulo_of(servo)), {&lane, 1});
  expect_lane_matches_scalar(results[0], scalar, "load-torque");
}

// ------------------------------------------------------------- masking

TEST(BatchMask, EarlyFinishingLanesKeepNeighborsBitIdentical) {
  core::ServoConfig base;
  base.duration_s = 0.5;
  const double durations[4] = {0.2, 0.5, 0.35, 0.41};

  std::vector<batch::ServoLane> lanes;
  for (double d : durations) {
    batch::ServoLane lane = lane_from(base);
    lane.duration_s = d;
    lanes.push_back(lane);
  }
  core::ServoSystem probe(base);
  const auto results = batch::run_servo_batch(
      batch_config_from(base, pwm_modulo_of(probe)), lanes);

  for (int k = 0; k < 4; ++k) {
    core::ServoConfig c = base;
    c.duration_s = durations[k];
    core::ServoSystem servo(c);
    const auto scalar = servo.run_mil();
    SCOPED_TRACE(k);
    expect_lane_matches_scalar(results[k], scalar, "early-finish lane");
  }
}

TEST(BatchMask, NonFiniteLaneIsRetiredAndNeighborsStayExact) {
  core::ServoConfig base;
  base.duration_s = 0.2;

  std::vector<batch::ServoLane> lanes(3, lane_from(base));
  // Middle lane: electrical time constant far below the integrator step —
  // RK4 at h = 0.25 ms diverges to non-finite within a few majors.
  lanes[1].motor.inductance = 1e-9;

  core::ServoSystem probe(base);
  batch::ServoBatch batch(batch_config_from(base, pwm_modulo_of(probe)),
                          lanes);
  batch.run();

  EXPECT_FALSE(batch.lane_faulted(0));
  EXPECT_TRUE(batch.lane_faulted(1));
  EXPECT_FALSE(batch.lane_faulted(2));

  // The faulted lane stops recording when it blows up...
  const auto faulted = batch.result(1);
  EXPECT_TRUE(faulted.faulted);
  EXPECT_LT(faulted.speed.size(), batch.result(0).speed.size());

  // ...and the healthy neighbors never see it.
  core::ServoSystem servo(base);
  const auto scalar = servo.run_mil();
  expect_lane_matches_scalar(batch.result(0), scalar, "neighbor 0");
  expect_lane_matches_scalar(batch.result(2), scalar, "neighbor 2");
}

// -------------------------------------------------- shared RK4 refactor

TEST(BatchRk4Refactor, SharedStepMatchesInlineClassicRk4) {
  // Reference: the inline loops dc_motor.cpp carried before the refactor.
  plant::DcMotorDynamics dyn;
  double ref[3] = {0.0, 0.0, 0.0};
  double shared[3] = {0.0, 0.0, 0.0};
  const double u = 9.0;
  const double h = 2e-5;

  for (int step = 0; step < 2000; ++step) {
    const double t0 = h * step;
    {
      double k1[3], k2[3], k3[3], k4[3], y[3];
      dyn.derivatives(ref, u, 0.0, k1);
      for (int i = 0; i < 3; ++i) y[i] = ref[i] + 0.5 * h * k1[i];
      dyn.derivatives(y, u, 0.0, k2);
      for (int i = 0; i < 3; ++i) y[i] = ref[i] + 0.5 * h * k2[i];
      dyn.derivatives(y, u, 0.0, k3);
      for (int i = 0; i < 3; ++i) y[i] = ref[i] + h * k3[i];
      dyn.derivatives(y, u, 0.0, k4);
      for (int i = 0; i < 3; ++i) {
        ref[i] += h / 6.0 * (k1[i] + 2 * k2[i] + 2 * k3[i] + k4[i]);
      }
    }
    util::rk4_step(shared, t0, h, [&](double, const double* y, double* dx) {
      dyn.derivatives(y, u, 0.0, dx);
    });
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(bits(ref[i]), bits(shared[i])) << "state " << i;
    }
  }
}

// ------------------------------------------------------- batched plants

TEST(PlantBatch, WaterTankLanesMatchEngine) {
  plant::WaterTankBlock::Params params[3];
  params[1].initial_level = 0.5;
  params[1].inflow_gain = 0.006;
  params[2].initial_level = 2.5;  // above the brim: raw initial recorded
  params[2].outlet_area = 4.0e-4;

  batch::PlantBatchConfig cfg;
  cfg.duration_s = 0.5;
  const double step_time = 0.2;
  batch::WaterTankBatch tanks(cfg, params);
  while (!tanks.done()) {
    const double t = tanks.time();
    const double valve = t >= step_time ? 1.0 : 0.0;
    for (std::size_t l = 0; l < tanks.width(); ++l) tanks.set_input(l, valve);
    tanks.step();
  }

  for (int k = 0; k < 3; ++k) {
    model::Model m("tank");
    auto& src = m.add<blocks::StepBlock>("valve", step_time, 0.0, 1.0);
    auto& tank = m.add<plant::WaterTankBlock>("plant", params[k]);
    auto& scope = m.add<blocks::ScopeBlock>("scope");
    m.connect(src, 0, tank, 0);
    m.connect(tank, 0, scope, 0);
    model::EngineOptions opts;
    opts.stop_time = cfg.duration_s;
    opts.base_period = cfg.period_s;
    opts.minor_steps = cfg.minor_steps;
    model::Engine engine(m, opts);
    engine.run();
    SCOPED_TRACE(k);
    expect_logs_identical(tanks.levels(k), scope.log(), "tank lane");
  }
}

TEST(PlantBatch, ThermalLanesMatchEngine) {
  plant::ThermalPlantBlock::Params params[2];
  params[1].heater_power = 90.0;
  params[1].ambient = 18.0;

  batch::PlantBatchConfig cfg;
  cfg.period_s = 0.01;
  cfg.duration_s = 2.0;
  batch::ThermalBatch plants(cfg, params);
  while (!plants.done()) {
    for (std::size_t l = 0; l < plants.width(); ++l) {
      plants.set_input(l, 0.75);
    }
    plants.step();
  }

  for (int k = 0; k < 2; ++k) {
    model::Model m("thermal");
    auto& src = m.add<blocks::ConstantBlock>("heat", 0.75);
    auto& proc = m.add<plant::ThermalPlantBlock>("plant", params[k]);
    auto& scope = m.add<blocks::ScopeBlock>("scope");
    m.connect(src, 0, proc, 0);
    m.connect(proc, 0, scope, 0);
    model::EngineOptions opts;
    opts.stop_time = cfg.duration_s;
    opts.base_period = cfg.period_s;
    opts.minor_steps = cfg.minor_steps;
    model::Engine engine(m, opts);
    engine.run();
    SCOPED_TRACE(k);
    expect_logs_identical(plants.temperatures(k), scope.log(),
                          "thermal lane");
  }
}

TEST(PlantBatch, LatchKernelsMatchPeBlocks) {
  beans::BeanProject project("p");
  auto& adc_bean = project.add<beans::AdcBean>("AD1");
  core::AdcPeBlock adc("AD1", adc_bean);
  const auto bits_prop = adc_bean.properties().get_int("resolution_bits");
  const double vref = adc_bean.properties().get_real("vref_high");

  core::ServoSystem servo(core::ServoConfig{});
  const double cpr =
      static_cast<double>(servo.config().encoder_lines * 4);

  std::vector<double> angles, ratios, volts;
  for (int i = -40; i <= 40; ++i) {
    angles.push_back(0.37 * i);
    ratios.push_back(0.03 * i);
    volts.push_back(0.09 * i);
  }
  const std::size_t n = angles.size();
  std::vector<double> counts(n), duty(n);
  std::vector<std::uint16_t> codes(n);

  batch::qdec_latch_lanes(angles, cpr, counts);
  batch::adc_latch_lanes(volts, static_cast<int>(bits_prop), vref, codes);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(counts[i], static_cast<double>(
                             servo.qdec_block().angle_to_counts(angles[i])));
    EXPECT_EQ(codes[i], adc.quantize_volts(volts[i]));
  }

  // Solved-modulo path against the real PWM block (the servo constructor
  // derives the modulo from pwm_frequency_hz).
  const auto modulo = pwm_modulo_of(servo);
  ASSERT_GT(modulo, 0);
  batch::pwm_latch_lanes(ratios, modulo, duty);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(bits(duty[i]),
              bits(servo.pwm_block().quantize_duty(ratios[i])));
  }

  // Unsolved bean (modulo 0): clamp-only pass-through.
  batch::pwm_latch_lanes(ratios, 0, duty);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(bits(duty[i]), bits(std::clamp(ratios[i], 0.0, 1.0)));
  }
}

// -------------------------------------------------------- batched sweep

TEST(SweepBatch, ZeroRunsIsEmpty) {
  exec::SweepRunner runner({.threads = 4, .batch = 8});
  const auto result = runner.run(
      0, exec::SweepRunner::BatchScenario(
             [](std::size_t, std::span<trace::MetricsRegistry>) {
               FAIL() << "no groups expected";
             }));
  EXPECT_EQ(result.runs, 0u);
  EXPECT_TRUE(result.merged.empty());
  EXPECT_TRUE(result.per_run.empty());
}

TEST(SweepBatch, RemainderGroupGetsNarrowSpan) {
  exec::SweepRunner runner({.threads = 1, .batch = 4});
  std::vector<std::pair<std::size_t, std::size_t>> groups;
  const auto result = runner.run(
      10, exec::SweepRunner::BatchScenario(
              [&](std::size_t first,
                  std::span<trace::MetricsRegistry> metrics) {
                groups.emplace_back(first, metrics.size());
                for (std::size_t k = 0; k < metrics.size(); ++k) {
                  metrics[k].gauge("run.index") =
                      static_cast<double>(first + k);
                }
              }));
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], (std::pair<std::size_t, std::size_t>{0, 4}));
  EXPECT_EQ(groups[1], (std::pair<std::size_t, std::size_t>{4, 4}));
  EXPECT_EQ(groups[2], (std::pair<std::size_t, std::size_t>{8, 2}));
  ASSERT_EQ(result.per_run.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    const double* g = result.per_run[i].find_gauge("run.index");
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(*g, static_cast<double>(i));
  }
}

TEST(SweepBatch, FewerRunsThanThreadsAndWidth) {
  exec::SweepRunner runner({.threads = 8, .batch = 16});
  const auto result = runner.run(
      3, exec::SweepRunner::BatchScenario(
             [](std::size_t first, std::span<trace::MetricsRegistry> metrics) {
               EXPECT_EQ(first, 0u);
               EXPECT_EQ(metrics.size(), 3u);
               for (std::size_t k = 0; k < metrics.size(); ++k) {
                 metrics[k].counter("ran").increment();
               }
             }));
  EXPECT_EQ(result.threads_used, 1u);  // one group -> one worker
  const auto* c = result.merged.find_counter("ran");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, 3u);
}

TEST(SweepBatch, MergedReportInvariantAcrossThreadsAndWidths) {
  auto scenario = exec::SweepRunner::BatchScenario(
      [](std::size_t first, std::span<trace::MetricsRegistry> metrics) {
        for (std::size_t k = 0; k < metrics.size(); ++k) {
          const auto index = static_cast<double>(first + k);
          metrics[k].counter("runs").increment();
          metrics[k].stats("value").add(std::sin(index) * 10.0);
        }
      });
  std::string reference;
  for (std::size_t threads : {1u, 2u, 5u}) {
    for (std::size_t batch : {1u, 3u, 4u, 16u}) {
      exec::SweepRunner runner({.threads = threads, .batch = batch});
      const std::string report = runner.run(13, scenario).merged.report();
      if (reference.empty()) {
        reference = report;
      } else {
        EXPECT_EQ(report, reference)
            << "threads=" << threads << " batch=" << batch;
      }
    }
  }
}

TEST(SweepBatch, BatchWidthOneMatchesScalarScenarioMerge) {
  auto fill = [](std::size_t index, trace::MetricsRegistry& metrics) {
    metrics.counter("runs").increment();
    metrics.gauge("last") = static_cast<double>(index);
    metrics.stats("value").add(1.0 / (1.0 + static_cast<double>(index)));
  };
  exec::SweepRunner scalar({.threads = 1});
  const std::string want =
      scalar
          .run(7, exec::SweepRunner::Scenario(fill))
          .merged.report();
  exec::SweepRunner batched({.threads = 2, .batch = 3});
  const std::string got =
      batched
          .run(7, exec::SweepRunner::BatchScenario(
                      [&](std::size_t first,
                          std::span<trace::MetricsRegistry> metrics) {
                        for (std::size_t k = 0; k < metrics.size(); ++k) {
                          fill(first + k, metrics[k]);
                        }
                      }))
          .merged.report();
  EXPECT_EQ(got, want);
}

// ----------------------------------------------------- batched campaign

// One MIL fault-campaign run, scalar engine: seeded load-torque pulses on
// the default servo, recovery = the loop still settles.
bool scalar_campaign_run(fault::RunContext& ctx, double duration) {
  core::ServoConfig config;
  config.duration_s = duration;
  core::ServoSystem servo(config);
  if (auto load = fault::make_load_torque(ctx.injector, duration)) {
    servo.motor_block().set_load(std::move(load));
  }
  const auto result = servo.run_mil();
  ctx.metrics.stats("campaign.iae").add(result.iae);
  if (result.metrics.settled) {
    ctx.metrics.counter("campaign.settled").increment();
  }
  return result.metrics.settled;
}

TEST(CampaignBatch, BatchedMilCampaignReportByteIdenticalToScalar) {
  const double duration = 0.25;
  fault::CampaignOptions options;
  options.name = "servo_mil_batch";
  options.seed = 2026;
  options.runs = 6;
  options.threads = 1;
  options.plan.torque_pulse_rate_hz = 20.0;
  options.plan.torque_pulse_nm = 0.03;
  options.plan.torque_pulse_s = 0.02;

  const auto scalar_report =
      fault::CampaignRunner(options).run(
          fault::CampaignScenario([&](fault::RunContext& ctx) {
            return scalar_campaign_run(ctx, duration);
          }));
  const std::string want = scalar_report.to_json();
  EXPECT_EQ(scalar_report.runs, 6u);

  auto batch_scenario = fault::BatchCampaignScenario(
      [&](std::span<fault::RunContext> lanes, std::span<bool> recovered) {
        core::ServoConfig config;
        config.duration_s = duration;
        core::ServoSystem probe(config);
        std::vector<batch::ServoLane> bl;
        for (auto& lane : lanes) {
          batch::ServoLane b = lane_from(config);
          b.load = fault::make_load_torque(lane.injector, duration);
          bl.push_back(std::move(b));
        }
        const auto results = batch::run_servo_batch(
            batch_config_from(config, pwm_modulo_of(probe)), bl);
        for (std::size_t k = 0; k < lanes.size(); ++k) {
          lanes[k].metrics.stats("campaign.iae").add(results[k].iae);
          if (results[k].metrics.settled) {
            lanes[k].metrics.counter("campaign.settled").increment();
          }
          recovered[k] = results[k].metrics.settled;
        }
      });

  for (std::size_t threads : {1u, 2u}) {
    for (std::size_t batch : {1u, 4u, 8u}) {
      fault::CampaignOptions opts = options;
      opts.threads = threads;
      opts.batch = batch;
      const auto report = fault::CampaignRunner(opts).run(batch_scenario);
      EXPECT_EQ(report.to_json(), want)
          << "threads=" << threads << " batch=" << batch;
    }
  }
}

}  // namespace
}  // namespace iecd
