#include "plant/encoder.hpp"

#include <numbers>

namespace iecd::plant {

IncrementalEncoder::IncrementalEncoder(sim::World& world, DcMotorSim& motor,
                                       periph::QuadDecPeripheral& qdec,
                                       EncoderParams params, std::string name)
    : world_(world),
      motor_(motor),
      qdec_(qdec),
      params_(params),
      name_(std::move(name)) {
  world.attach(*this);
}

void IncrementalEncoder::reset() {
  if (poll_event_ != 0) {
    world_.queue().cancel(poll_event_);
    poll_event_ = 0;
  }
  running_ = false;
  last_counts_ = 0;
  last_index_rev_ = 0;
}

void IncrementalEncoder::start() {
  if (running_) return;
  running_ = true;
  // One recurring arm for the whole run: the poll loop re-fires without
  // allocating or rescheduling anything per sample.
  poll_event_ =
      world_.queue().schedule_every(params_.poll_interval, [this] { poll(); });
}

void IncrementalEncoder::poll() {
  if (!running_) return;
  const double angle = motor_.angle_at(world_.now());
  const double cpr = static_cast<double>(counts_per_rev());
  const auto counts = static_cast<std::int64_t>(
      std::floor(angle / (2.0 * std::numbers::pi) * cpr));
  const std::int64_t delta = counts - last_counts_;
  if (fault_hook_) {
    const std::int32_t emit = fault_hook_(static_cast<std::int32_t>(delta));
    if (emit != 0) qdec_.add_counts(emit);
    last_counts_ = counts;
  } else if (delta != 0) {
    qdec_.add_counts(static_cast<std::int32_t>(delta));
    last_counts_ = counts;
  }
  // Index pulse once per full revolution crossing.
  const auto rev = static_cast<std::int64_t>(
      std::floor(angle / (2.0 * std::numbers::pi)));
  if (rev != last_index_rev_) {
    qdec_.index_pulse();
    last_index_rev_ = rev;
  }
}

}  // namespace iecd::plant
