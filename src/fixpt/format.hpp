/// \file format.hpp
/// Runtime fixed-point format description (Q-format).  The case-study MCU
/// (MC56F8367 analog) is a 16-bit device without an FPU, so the Simulink
/// model must pick a fixed-point representation for every controller signal
/// (paper, Section 7).  A format is word size + binary-point position +
/// signedness; values are stored as raw integers scaled by 2^-frac_bits.
#pragma once

#include <cstdint>
#include <string>

namespace iecd::fixpt {

/// How from_double / rescale round when precision is lost.
enum class Rounding {
  kNearest,  ///< round half away from zero (Simulink "Nearest")
  kFloor,    ///< round toward -inf
  kZero,     ///< truncate toward zero
};

/// What happens when a value exceeds the representable range.
enum class Overflow {
  kSaturate,  ///< clamp to min/max (the safe default for control code)
  kWrap,      ///< two's-complement wraparound (cheapest on the target)
};

struct FixedFormat {
  int word_bits = 16;    ///< total storage bits (<= 32 on the 16-bit DSC)
  int frac_bits = 0;     ///< binary point position; may exceed word_bits
  bool is_signed = true;

  bool operator==(const FixedFormat&) const = default;

  /// Largest representable raw integer.
  std::int64_t max_raw() const;
  /// Smallest representable raw integer.
  std::int64_t min_raw() const;

  /// Value of one LSB.
  double resolution() const;
  /// Largest representable real value.
  double max_value() const;
  /// Smallest representable real value.
  double min_value() const;

  /// True if word_bits in [2, 32] (signed needs a sign bit) etc.
  bool valid() const;

  /// "sfix16_En7"-style name as Simulink prints it.
  std::string to_string() const;

  /// Common shorthand constructors.
  static FixedFormat s16(int frac) { return {16, frac, true}; }
  static FixedFormat u16(int frac) { return {16, frac, false}; }
  static FixedFormat s32(int frac) { return {32, frac, true}; }
};

/// Clamps \p raw into the representable range of \p fmt (saturate), or wraps
/// it two's-complement style, according to \p overflow.
std::int64_t apply_overflow(std::int64_t raw, const FixedFormat& fmt,
                            Overflow overflow);

/// Shifts \p raw right by \p shift (>0) with the requested rounding, or left
/// by -shift.  Used when rescaling between formats and after multiplies.
std::int64_t shift_with_rounding(std::int64_t raw, int shift,
                                 Rounding rounding);

}  // namespace iecd::fixpt
