#include "codegen/signal_buffer.hpp"

#include <stdexcept>

namespace iecd::codegen {

std::size_t SignalBuffer::add_input(const std::string& name) {
  input_names_.push_back(name);
  inputs_.push_back(0.0);
  return inputs_.size() - 1;
}

std::size_t SignalBuffer::add_output(const std::string& name) {
  output_names_.push_back(name);
  outputs_.push_back(0.0);
  return outputs_.size() - 1;
}

void SignalBuffer::set_input(std::size_t index, double value) {
  inputs_.at(index) = value;
}

void SignalBuffer::set_inputs(const std::vector<double>& values) {
  set_inputs(std::span<const double>(values));
}

void SignalBuffer::set_inputs(std::span<const double> values) {
  for (std::size_t i = 0; i < values.size() && i < inputs_.size(); ++i) {
    inputs_[i] = values[i];
  }
}

double SignalBuffer::input(std::size_t index) const {
  return inputs_.at(index);
}

double SignalBuffer::input(const std::string& name) const {
  for (std::size_t i = 0; i < input_names_.size(); ++i) {
    if (input_names_[i] == name) return inputs_[i];
  }
  throw std::invalid_argument("SignalBuffer: unknown input " + name);
}

void SignalBuffer::set_output(std::size_t index, double value) {
  outputs_.at(index) = value;
}

void SignalBuffer::set_output(const std::string& name, double value) {
  for (std::size_t i = 0; i < output_names_.size(); ++i) {
    if (output_names_[i] == name) {
      outputs_[i] = value;
      return;
    }
  }
  throw std::invalid_argument("SignalBuffer: unknown output " + name);
}

double SignalBuffer::output(std::size_t index) const {
  return outputs_.at(index);
}

std::vector<double> SignalBuffer::outputs() const { return outputs_; }

void SignalBuffer::clear_values() {
  for (auto& v : inputs_) v = 0.0;
  for (auto& v : outputs_) v = 0.0;
}

}  // namespace iecd::codegen
