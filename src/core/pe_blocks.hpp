/// \file pe_blocks.hpp
/// The PE block set — the paper's central artifact.  Each block in the
/// Simulink-side model corresponds to a bean in the PE project and behaves
/// three ways (see codegen::IoMode):
///  * MIL: the block SIMULATES the peripheral — an ADC block really
///    quantizes to the converter's resolution, a PWM block limits duty to
///    the counter's granularity — so the closed-loop simulation already
///    reflects the main hardware features (paper Section 5);
///  * target: the block talks to its bean (the generated-code behaviour,
///    also exercised in HIL);
///  * PIL: reads/writes are redirected to the communication buffer.
/// Peripheral events surface as function-call event sources that can
/// trigger subsystems both in simulation and in the generated application.
#pragma once

#include <map>

#include "beans/adc_bean.hpp"
#include "beans/bit_io_bean.hpp"
#include "beans/pwm_bean.hpp"
#include "beans/quad_dec_bean.hpp"
#include "beans/timer_int_bean.hpp"
#include "codegen/signal_buffer.hpp"
#include "codegen/target_io.hpp"
#include "model/block.hpp"
#include "model/subsystem.hpp"

namespace iecd::core {

using codegen::IoDirection;
using codegen::IoMode;

/// Common PE block machinery: bean back-reference, mode, PIL buffer and
/// event sources/bindings.
class PeBlock : public model::Block, public codegen::TargetIo {
 public:
  PeBlock(std::string name, int inputs, int outputs, beans::Bean& bean);

  void set_mode(IoMode mode) override { mode_ = mode; }
  IoMode mode() const override { return mode_; }
  void set_pil_buffer(codegen::SignalBuffer* buffer) override {
    pil_ = buffer;
  }
  std::string bean_name() const override { return bean_->name(); }

  /// The MIL-side event source for one of the bean's events.
  model::EventSource& event(const std::string& event_name);

  /// Wires a bean event to a function-call subsystem: attaches the MIL
  /// event source AND records the binding for the code generator.
  void bind_event(const std::string& event_name,
                  model::FunctionCallSubsystem& target);

  std::vector<EventBinding> event_bindings() const override {
    return bindings_;
  }

  beans::Bean& bean() { return *bean_; }

  /// MIL hardware fidelity (default on).  Off = the "trivial
  /// (pass-through)" simulation behaviour the paper criticizes in other
  /// targets: no quantization, no wrapping, no duty granularity.  Exists
  /// for the ablation experiments; target/PIL behaviour is unaffected.
  void set_hw_fidelity(bool fidelity) {
    hw_fidelity_ = fidelity;
    on_fidelity_changed();
  }
  bool hw_fidelity() const { return hw_fidelity_; }

 protected:
  /// Lets port types follow the fidelity switch (ideal blocks are double).
  virtual void on_fidelity_changed() {}

  double pil_input() const;
  void pil_output(double value) const;

  beans::Bean* bean_;
  IoMode mode_ = IoMode::kMil;
  bool hw_fidelity_ = true;
  codegen::SignalBuffer* pil_ = nullptr;
  std::map<std::string, model::EventSource> events_;
  std::vector<EventBinding> bindings_;
};

/// ADC block: in0 = analog voltage (plant), out0 = converted code,
/// left-justified to 16 bits (uint16), at the converter's true resolution.
class AdcPeBlock : public PeBlock {
 public:
  AdcPeBlock(std::string name, beans::AdcBean& bean);
  const char* type_name() const override { return "PE_ADC"; }
  IoDirection io_direction() const override { return IoDirection::kInput; }

  void output(const model::SimContext& ctx) override;
  void target_init(const model::SimContext&) override {}
  void target_read(const model::SimContext& ctx) override;
  void target_write(const model::SimContext&) override {}
  mcu::OpCounts io_ops() const override;
  std::uint64_t extra_cycles(const mcu::DerivativeSpec& cpu) const override;
  std::vector<std::string> required_methods() const override;
  std::string emit_target_c(bool pil, const std::string& var) const override;

  /// Quantization the converter applies (shared MIL / PIL path).
  std::uint16_t quantize_volts(double volts) const;

 protected:
  void on_fidelity_changed() override {
    set_output_type(0, hw_fidelity_ ? model::DataType::kUint16
                                    : model::DataType::kDouble);
  }

 private:
  beans::AdcBean* adc_;
  std::uint16_t latched_ = 0;
};

/// PWM block: in0 = duty ratio [0,1]; MIL out0 = duty quantized to the
/// counter granularity (what the motor really sees).
class PwmPeBlock : public PeBlock {
 public:
  PwmPeBlock(std::string name, beans::PwmBean& bean);
  const char* type_name() const override { return "PE_PWM"; }
  IoDirection io_direction() const override { return IoDirection::kOutput; }

  void output(const model::SimContext& ctx) override;
  void target_init(const model::SimContext& ctx) override;
  void target_read(const model::SimContext&) override {}
  void target_write(const model::SimContext& ctx) override;
  mcu::OpCounts io_ops() const override;
  std::vector<std::string> required_methods() const override;
  std::string emit_target_c(bool pil, const std::string& var) const override;

  /// Duty granularity quantization (MIL fidelity).
  double quantize_duty(double ratio) const;

 private:
  beans::PwmBean* pwm_;
};

/// Quadrature decoder block: in0 = shaft angle [rad]; out0 = int16
/// position register (wraps exactly like the hardware).
class QuadDecPeBlock : public PeBlock {
 public:
  QuadDecPeBlock(std::string name, beans::QuadDecBean& bean);
  const char* type_name() const override { return "PE_QuadDec"; }
  IoDirection io_direction() const override { return IoDirection::kInput; }

  void output(const model::SimContext& ctx) override;
  void target_init(const model::SimContext&) override {}
  void target_read(const model::SimContext& ctx) override;
  void target_write(const model::SimContext&) override {}
  mcu::OpCounts io_ops() const override;
  std::vector<std::string> required_methods() const override;
  std::string emit_target_c(bool pil, const std::string& var) const override;

  /// Angle -> wrapped int16 counts (MIL / PIL quantization).
  std::int16_t angle_to_counts(double angle_rad) const;

 protected:
  void on_fidelity_changed() override {
    set_output_type(0, hw_fidelity_ ? model::DataType::kInt16
                                    : model::DataType::kDouble);
  }

 private:
  beans::QuadDecBean* qdec_;
  std::int16_t latched_ = 0;
};

/// Single-pin digital I/O block.  Direction follows the bean's property:
/// inputs have out0 = level (bool) and raise OnInterrupt on configured
/// edges (also simulated in MIL); outputs take in0 and drive the pin.
class BitIoPeBlock : public PeBlock {
 public:
  BitIoPeBlock(std::string name, beans::BitIoBean& bean);
  const char* type_name() const override { return "PE_BitIO"; }
  IoDirection io_direction() const override;

  void output(const model::SimContext& ctx) override;
  void target_init(const model::SimContext&) override {}
  void target_read(const model::SimContext& ctx) override;
  void target_write(const model::SimContext& ctx) override;
  mcu::OpCounts io_ops() const override;
  std::vector<std::string> required_methods() const override;
  std::string emit_target_c(bool pil, const std::string& var) const override;

 private:
  bool is_output() const;

  beans::BitIoBean* bit_;
  bool latched_ = false;
  bool prev_in_ = false;
};

/// Periodic-interrupt block: declares the model's sample-rate source and
/// carries the OnInterrupt event (fires each sample hit in MIL).  Must be
/// present in every controller subsystem — the paper: "the controller
/// subsystem must contain the Processor Expert block".
class TimerIntPeBlock : public PeBlock {
 public:
  TimerIntPeBlock(std::string name, beans::TimerIntBean& bean);
  const char* type_name() const override { return "PE_TimerInt"; }
  IoDirection io_direction() const override { return IoDirection::kEvent; }

  void output(const model::SimContext& ctx) override;
  void target_init(const model::SimContext& ctx) override;
  void target_read(const model::SimContext&) override {}
  void target_write(const model::SimContext&) override {}
  mcu::OpCounts io_ops() const override { return {}; }
  std::vector<std::string> required_methods() const override;
  std::string emit_target_c(bool pil, const std::string& var) const override;

 private:
  beans::TimerIntBean* timer_;
};

}  // namespace iecd::core
