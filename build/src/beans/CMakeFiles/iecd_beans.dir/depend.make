# Empty dependencies file for iecd_beans.
# This may be replaced when dependencies are built.
