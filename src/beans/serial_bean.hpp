/// \file serial_bean.hpp
/// Asynchronous serial bean ("AsynchroSerial").  Carries the PIL data
/// exchange of Fig. 6.2: the generated controller talks to the simulator PC
/// through this bean's SendChar/RecvChar methods and OnRxChar event.
#pragma once

#include <memory>

#include "beans/bean.hpp"
#include "periph/uart.hpp"

namespace iecd::beans {

class SerialBean : public Bean {
 public:
  explicit SerialBean(std::string name = "AS1");

  std::vector<MethodSpec> methods() const override;
  std::vector<EventSpec> events() const override;
  ResourceDemand demand() const override;
  void validate(const mcu::DerivativeSpec& cpu,
                util::DiagnosticList& diagnostics) override;
  void bind(BindContext& ctx) override;
  DriverSource driver_source() const override;

  // --- Runtime methods ---
  bool SendChar(std::uint8_t byte);
  /// Queues a whole buffer for transmission as one wire burst; returns the
  /// number of bytes accepted (clipped to the free TX FIFO slots).
  std::size_t SendBlock(const std::uint8_t* data, std::size_t len);
  std::optional<std::uint8_t> RecvChar();

  std::uint32_t baud() const {
    return static_cast<std::uint32_t>(properties().get_int("baud"));
  }

  periph::UartPeripheral* peripheral() { return uart_.get(); }

 private:
  std::unique_ptr<periph::UartPeripheral> uart_;
};

}  // namespace iecd::beans
