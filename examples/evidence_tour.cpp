// Evidence tour: the evidence recorder (src/evidence/) in four acts.
//
//   1. Record — one PIL servo run (trace + metrics + health) sealed into
//      a binary .evd artifact with a JSONL sidecar: length-prefixed
//      records, schema registry, chained record hash, SHA-256 footer.
//   2. Verify — evidence_verify's library path passes the artifact; a
//      single flipped byte is caught by the hash chain / digest.
//   3. Campaign — a default fault campaign writes per-run artifacts, a
//      merged artifact and MANIFEST.jsonl; running it again on a
//      different thread count yields a byte-identical manifest.
//   4. Re-export — the artifact replays back through the existing
//      Chrome-trace and metrics-CSV exporters.
//
// Leaves everything under evidence_out/ so CI can run evidence_verify on
// each artifact afterwards.
#include <cstdio>
#include <string>
#include <vector>

#include "core/case_study.hpp"
#include "evidence/sink.hpp"
#include "evidence/verify.hpp"
#include "fault/campaign.hpp"
#include "obs/monitor.hpp"
#include "trace/trace.hpp"

using namespace iecd;

namespace {

core::ServoConfig tour_config() {
  core::ServoConfig cfg;
  cfg.duration_s = 0.3;
  cfg.setpoint_time = 0.02;
  return cfg;
}

fault::CampaignOptions campaign_options(std::size_t threads) {
  fault::CampaignOptions opts;
  opts.name = "evidence_tour";
  opts.seed = 42;
  opts.runs = 4;
  opts.threads = threads;
  opts.plan = fault::FaultPlan::defaults();
  return opts;
}

bool campaign_body(fault::RunContext& ctx) {
  core::ServoSystem servo(tour_config());
  obs::MonitorHub hub;
  core::ServoSystem::PilRunOptions run;
  run.baud = 1000000;
  run.faults = &ctx.injector;
  run.monitors = &hub;
  run.recovery.enabled = true;
  const auto result = servo.run_pil(run);
  ctx.metrics.merge(result.report.metrics);
  ctx.metrics.stats("campaign.iae").add(result.iae);
  ctx.health.merge(hub.report("pil"));
  const auto* abandoned =
      result.report.metrics.find_counter("pil.exchanges_abandoned");
  return abandoned == nullptr || abandoned->value == 0;
}

std::string g_run_artifact_path;

void act_one_record() {
  std::printf("=== 1. record: one sealed run artifact ===\n\n");

  trace::TraceRecorder rec(std::size_t{1} << 15);
  obs::MonitorHub hub;
  core::ServoSystem servo(tour_config());
  core::ServoSystem::PilRunOptions run;
  run.baud = 1000000;
  run.monitors = &hub;
  trace::MetricsRegistry metrics;
  double iae = 0.0;
  {
    trace::TraceSession session(rec);
    const auto result = servo.run_pil(run);
    metrics.merge(result.report.metrics);
    iae = result.iae;
  }
  metrics.gauge("servo.iae") = iae;
  const obs::HealthReport health = hub.report("pil");

  const auto writer = evidence::build_run_artifact("evidence_tour", 0, 42,
                                                   metrics, &health, &rec);
  const auto artifact = evidence::write_artifact_with_sidecar(
      "evidence_out/tour", "run_0000.evd", writer, "evidence_tour", 0, 42);
  g_run_artifact_path = "evidence_out/tour/" + artifact.filename;

  std::printf("servo PIL run, IAE %.3f -> %s\n", iae,
              g_run_artifact_path.c_str());
  std::printf("  %llu records, %llu bytes, chain %016llx\n",
              static_cast<unsigned long long>(artifact.records),
              static_cast<unsigned long long>(artifact.bytes),
              static_cast<unsigned long long>(artifact.chain_hash));
  std::printf("  sha256 %s\n", artifact.sha256_hex.c_str());
  std::printf("  sidecar %s.meta.jsonl (identity + digests + build "
              "info)\n\n",
              g_run_artifact_path.c_str());
}

void act_two_verify() {
  std::printf("=== 2. verify: digests hold, tampering is caught ===\n\n");

  const auto pass = evidence::verify_artifact_file(g_run_artifact_path);
  std::printf("%s\n", pass.summary().c_str());

  // Flip one byte in the middle of the record stream: the chain hash (and
  // the final digest) must refuse it.
  std::vector<std::uint8_t> bytes;
  if (std::FILE* f = std::fopen(g_run_artifact_path.c_str(), "rb")) {
    std::fseek(f, 0, SEEK_END);
    bytes.resize(static_cast<std::size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    const auto n = std::fread(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    bytes.resize(n);
  }
  if (bytes.size() > 256) {
    bytes[bytes.size() / 2] ^= 0x01;
    const auto fail = evidence::verify_artifact(bytes, "tampered");
    std::printf("%s\n", fail.summary().c_str());
  }
  std::printf("\n");
}

void act_three_campaign() {
  std::printf("=== 3. campaign evidence: per-run artifacts + manifest "
              "===\n\n");

  const auto opts1 = campaign_options(1);
  const auto report1 = fault::CampaignRunner(opts1).run(campaign_body);
  const auto ev1 = evidence::write_campaign_evidence("evidence_out/campaign",
                                                     opts1, report1);

  const auto opts4 = campaign_options(4);
  const auto report4 = fault::CampaignRunner(opts4).run(campaign_body);
  const auto ev4 = evidence::write_campaign_evidence(
      "evidence_out/campaign_t4", opts4, report4);

  std::printf("%zu run artifacts + merged.evd + MANIFEST.jsonl -> "
              "evidence_out/campaign\n",
              ev1.runs.size());
  std::printf("manifest identical for 1 vs 4 campaign threads: %s\n",
              ev1.manifest == ev4.manifest ? "yes" : "NO");

  const auto mv = evidence::verify_manifest(ev1.manifest_path);
  std::printf("verify_manifest: %s (%zu/%zu artifacts pass, digests "
              "pinned)\n\n",
              mv.ok ? "PASS" : "FAIL", mv.passed, mv.entries.size());
}

void act_four_reexport() {
  std::printf("=== 4. re-export through the existing exporters ===\n\n");

  std::string err;
  const bool chrome = evidence::reexport_chrome_trace(
      g_run_artifact_path, "evidence_out/tour/run_0000.trace.json", &err);
  std::printf("chrome trace : %s%s%s\n", chrome ? "ok -> " : "FAILED ",
              chrome ? "evidence_out/tour/run_0000.trace.json" : err.c_str(),
              "");
  const bool csv = evidence::reexport_metrics_csv(
      g_run_artifact_path, "evidence_out/tour/run_0000.metrics.csv", &err);
  std::printf("metrics csv  : %s%s%s\n\n", csv ? "ok -> " : "FAILED ",
              csv ? "evidence_out/tour/run_0000.metrics.csv" : err.c_str(),
              "");
}

}  // namespace

int main() {
  std::printf("IECD evidence tour: deterministic binary run artifacts with "
              "schema registry,\ncontent hashes, and replay/verify\n\n");
  act_one_record();
  act_two_verify();
  act_three_campaign();
  act_four_reexport();
  std::printf("artifacts left under evidence_out/ — run "
              "tools/evidence_verify on any of them.\n");
  return 0;
}
