// Trace tour: the observability subsystem on the DC-servo case study.
//
// Runs the PIL co-simulation with the unified tracer active, then:
//   1. prints the MetricsRegistry views (the PIL report's and the target
//      profiler's) — the one-source-of-truth numbers,
//   2. exports the cross-layer timeline as Chrome trace-event JSON
//      (open servo_trace.json in https://ui.perfetto.dev or
//      chrome://tracing: one process row per component — event queue,
//      CPU, PIL host, CAN/model engine) and as CSV.
//
// The tracer costs one branch per instrumentation site when disabled;
// here it is enabled for the whole run, so every event-queue dispatch,
// ISR, PIL frame exchange and model step lands on one timeline.
#include <cstdio>

#include "core/case_study.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

using namespace iecd;

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "servo_trace.json";

  trace::TraceRecorder recorder(std::size_t{1} << 20);
  trace::TraceSession session(recorder);

  core::ServoConfig config;
  config.duration_s = 0.25;
  core::ServoSystem servo(config);
  const auto pil = servo.run_pil({.baud = 460800});

  std::printf("=== PIL metrics (PilReport.metrics registry) ===\n\n%s\n",
              pil.report.metrics.report().c_str());

  std::printf("=== recorder ===\n\n");
  std::printf("  events recorded   %llu (%zu live, %llu dropped by the "
              "ring)\n",
              static_cast<unsigned long long>(recorder.total_recorded()),
              recorder.size(),
              static_cast<unsigned long long>(recorder.dropped()));
  std::printf("  interned strings  %zu\n\n", recorder.interned_count());

  if (!trace::export_chrome_trace_file(recorder, json_path)) {
    std::printf("cannot write %s\n", json_path);
    return 1;
  }
  std::printf("wrote %s — load it in https://ui.perfetto.dev or "
              "chrome://tracing\n",
              json_path);

  // The CSV flavour of the same timeline, for ad-hoc analysis.
  std::printf("\nfirst trace rows (CSV export):\n");
  const std::string csv = trace::to_csv(recorder);
  std::size_t pos = 0;
  for (int line = 0; line < 8 && pos != std::string::npos; ++line) {
    const std::size_t end = csv.find('\n', pos);
    std::printf("  %s\n", csv.substr(pos, end - pos).c_str());
    pos = end == std::string::npos ? end : end + 1;
  }

  return pil.metrics.settled ? 0 : 1;
}
