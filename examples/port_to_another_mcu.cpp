// Section 5 portability claim: "the model with the PE blocks can be
// extremely simply ported to another MCU by selecting another CPU bean in
// the PE project window.  The application design in Simulink therefore
// becomes HW independent."
//
// This example ports the servo application across every derivative in the
// registry.  Where the hardware genuinely lacks a required module (no
// quadrature decoder on the HCS12X/HCS08 analogs), the expert system
// rejects the port with a precise diagnostic *before* any code is
// generated — the validation value the paper stresses.  Where the port is
// legal, the same unchanged model builds and runs, with per-derivative
// costs.
#include <cstdio>

#include "core/case_study.hpp"
#include "mcu/derivative.hpp"

using namespace iecd;

int main() {
  std::printf("Porting the unchanged servo model across CPU beans\n");
  std::printf("%-12s %-10s %-44s\n", "derivative", "verdict", "detail");
  std::printf("%.78s\n",
              "----------------------------------------------------------------"
              "--------------");

  for (const auto& derivative : mcu::derivative_registry()) {
    core::ServoConfig config;
    config.derivative = derivative.name;
    config.duration_s = 0.5;
    core::ServoSystem servo(config);
    const auto diagnostics = servo.validate();

    if (diagnostics.has_errors()) {
      // The expert system names the missing resource.
      std::string first_error;
      for (const auto& d : diagnostics.items()) {
        if (d.severity == util::Severity::kError) {
          first_error = d.message;
          break;
        }
      }
      std::printf("%-12s %-10s %.44s\n", derivative.name.c_str(), "REJECTED",
                  first_error.c_str());
      continue;
    }

    auto build = servo.build_target("servo");
    if (!build.ok()) {
      std::printf("%-12s %-10s build failed\n", derivative.name.c_str(),
                  "ERROR");
      continue;
    }
    const auto cycles = build.app.task_cycles(0, derivative.costs);
    const double util =
        build.app.estimated_utilisation(derivative.costs,
                                        derivative.clock_hz);
    const auto hil = servo.run_hil();
    std::printf("%-12s %-10s step %llu cycles, %.1f%% CPU, exec %.1f us, "
                "final %.1f rad/s\n",
                derivative.name.c_str(), hil.metrics.settled ? "OK" : "RAN",
                static_cast<unsigned long long>(cycles), util * 100.0,
                hil.exec_us_mean, hil.speed.last_value());
  }

  std::printf("\nThe model itself never changed: only the CPU bean did.\n");
  return 0;
}
