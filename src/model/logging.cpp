#include "model/logging.hpp"

#include <algorithm>
#include <stdexcept>

namespace iecd::model {

void SampleLog::record(double t, double value) {
  if (!times_.empty() && t < times_.back()) {
    throw std::invalid_argument("SampleLog: non-monotonic timestamp");
  }
  if (!times_.empty() && t == times_.back()) {
    values_.back() = value;  // same-instant overwrite (minor re-evaluation)
    return;
  }
  times_.push_back(t);
  values_.push_back(value);
}

double SampleLog::last_value() const {
  return values_.empty() ? 0.0 : values_.back();
}

double SampleLog::max_value() const {
  return values_.empty() ? 0.0
                         : *std::max_element(values_.begin(), values_.end());
}

double SampleLog::min_value() const {
  return values_.empty() ? 0.0
                         : *std::min_element(values_.begin(), values_.end());
}

double SampleLog::sample(double t) const {
  if (times_.empty()) return 0.0;
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  if (it == times_.begin()) return values_.front();
  const auto idx = static_cast<std::size_t>(it - times_.begin()) - 1;
  return values_[idx];
}

void SampleLog::clear() {
  times_.clear();
  values_.clear();
}

}  // namespace iecd::model
