#include "campaign/engine.hpp"

#include <algorithm>
#include <deque>
#include <filesystem>
#include <memory>
#include <utility>

#include "evidence/writer.hpp"

namespace iecd::campaign {

namespace {

/// Per-lane campaign execution, identical to fault::CampaignRunner's
/// scalar path: seeded injector, scenario, shared bookkeeping.
StreamRunner::GroupFn make_group_fn(const fault::CampaignOptions& opts,
                                    const fault::CampaignScenario& scenario) {
  return [&opts, &scenario](std::size_t first,
                            std::span<trace::MetricsRegistry> metrics,
                            std::span<obs::HealthReport> health) {
    for (std::size_t k = 0; k < metrics.size(); ++k) {
      const std::size_t index = first + k;
      fault::FaultInjector injector(
          fault::CampaignRunner::run_seed(opts.seed, index), opts.plan);
      fault::RunContext ctx{index, injector.seed(), injector, metrics[k],
                            health[k]};
      const bool recovered = scenario(ctx);
      fault::finalize_run_bookkeeping(injector, recovered, metrics[k]);
    }
  };
}

/// Batched variant, identical to fault::CampaignRunner's batch path.
StreamRunner::GroupFn make_group_fn(
    const fault::CampaignOptions& opts,
    const fault::BatchCampaignScenario& scenario) {
  return [&opts, &scenario](std::size_t first,
                            std::span<trace::MetricsRegistry> metrics,
                            std::span<obs::HealthReport> health) {
    const std::size_t width = metrics.size();
    // FaultInjector is pinned in place (non-copyable, non-movable): a
    // deque grows without relocating the lanes already built.
    std::deque<fault::FaultInjector> injectors;
    std::vector<fault::RunContext> lanes;
    lanes.reserve(width);
    for (std::size_t k = 0; k < width; ++k) {
      const std::size_t index = first + k;
      injectors.emplace_back(
          fault::CampaignRunner::run_seed(opts.seed, index), opts.plan);
      lanes.push_back(fault::RunContext{index, injectors.back().seed(),
                                        injectors.back(), metrics[k],
                                        health[k]});
    }
    // std::vector<bool> is a proxy type, unusable as span<bool>.
    auto rec = std::make_unique<bool[]>(width);
    for (std::size_t k = 0; k < width; ++k) rec[k] = true;
    scenario(std::span<fault::RunContext>(lanes),
             std::span<bool>(rec.get(), width));
    for (std::size_t k = 0; k < width; ++k) {
      fault::finalize_run_bookkeeping(injectors[k], rec[k], metrics[k]);
    }
  };
}

}  // namespace

CampaignEngine::CampaignEngine(EngineOptions options)
    : options_(std::move(options)) {}

std::string CampaignEngine::checkpoint_filename() { return "CHECKPOINT.evd"; }

std::string CampaignEngine::checkpoint_path() const {
  return (std::filesystem::path(options_.evidence_dir) /
          checkpoint_filename())
      .string();
}

EngineResult CampaignEngine::run(
    const fault::CampaignScenario& scenario) const {
  return execute(make_group_fn(options_.campaign, scenario));
}

EngineResult CampaignEngine::run(
    const fault::BatchCampaignScenario& scenario) const {
  return execute(make_group_fn(options_.campaign, scenario));
}

EngineResult CampaignEngine::execute(
    const StreamRunner::GroupFn& group_fn) const {
  const fault::CampaignOptions& opts = options_.campaign;
  const std::size_t batch = std::max<std::size_t>(1, opts.batch);
  const std::string& dir = options_.evidence_dir;
  std::filesystem::create_directories(dir);
  const std::string ckpt_path = checkpoint_path();

  EngineResult result;

  CheckpointState state;
  state.name = opts.name;
  state.config_hash = campaign_config_hash(opts);
  state.total_runs = opts.runs;
  // HealthReport defaults to runs = 1; the fold counts folded runs, same
  // as exec::SweepRunner's health path.
  state.health.runs = 0;

  std::vector<evidence::RunArtifact> artifacts;

  if (options_.checkpoint_every > 0 && options_.resume) {
    CheckpointState loaded;
    if (load_checkpoint(ckpt_path, loaded) == CheckpointStatus::kOk &&
        loaded.name == state.name &&
        loaded.config_hash == state.config_hash &&
        loaded.total_runs == opts.runs && loaded.watermark <= opts.runs &&
        (loaded.watermark % batch == 0 || loaded.watermark == opts.runs)) {
      // Re-describe the completed runs' artifacts instead of storing
      // O(runs) descriptors in the checkpoint; any missing or corrupt
      // file invalidates the resume (fresh start is always safe).
      bool intact = true;
      std::vector<evidence::RunArtifact> described(
          options_.write_run_artifacts ? loaded.watermark : 0);
      for (std::size_t i = 0; i < described.size(); ++i) {
        if (!evidence::describe_artifact_file(
                dir, evidence::run_artifact_filename(i), described[i])) {
          intact = false;
          break;
        }
      }
      if (intact) {
        state = std::move(loaded);
        artifacts = std::move(described);
        result.resumed = true;
      }
    }
  }
  result.resume_start = static_cast<std::size_t>(state.watermark);

  std::size_t last_checkpoint = result.resume_start;
  StreamRunner::SinkFn sink = [&](GroupResult& group) {
    for (std::size_t k = 0; k < group.metrics.size(); ++k) {
      const std::size_t index = group.first + k;
      state.merged.merge(group.metrics[k]);
      state.health.merge(group.health[k]);
      const auto* c =
          group.metrics[k].find_counter("campaign.unrecovered");
      if (c != nullptr && c->value > 0) {
        state.unrecovered_runs.push_back(index);
        state.unrecovered_health.emplace(index, group.health[k]);
      }
      if (options_.write_run_artifacts) {
        const std::uint64_t seed =
            fault::CampaignRunner::run_seed(opts.seed, index);
        evidence::EvidenceWriter writer = evidence::build_run_artifact(
            opts.name, index, seed, group.metrics[k], &group.health[k],
            nullptr);
        artifacts.push_back(evidence::write_artifact_with_sidecar(
            dir, evidence::run_artifact_filename(index), writer, opts.name,
            index, seed));
      }
    }
    state.watermark = group.first + group.metrics.size();
    // Seal at lane-group boundaries only, so the watermark stays
    // group-aligned and a resume reproduces the uninterrupted run's exact
    // group structure.
    if (options_.checkpoint_every > 0 && state.watermark < opts.runs &&
        state.watermark - last_checkpoint >= options_.checkpoint_every) {
      if (save_checkpoint(ckpt_path, state)) {
        last_checkpoint = static_cast<std::size_t>(state.watermark);
        ++result.checkpoints_sealed;
        if (options_.progress != nullptr) {
          options_.progress->checkpoints.fetch_add(1,
                                                   std::memory_order_relaxed);
        }
        if (options_.on_checkpoint) options_.on_checkpoint(state);
      }
    }
  };

  StreamOptions so;
  so.threads = opts.threads;
  so.batch = batch;
  so.window = options_.window;
  so.chunk = options_.chunk;
  so.stealing = options_.stealing;
  so.placement = options_.contiguous ? Placement::kContiguous
                                     : Placement::kCyclic;
  so.progress = options_.progress;
  StreamRunner stream(so);
  result.sched = stream.run(opts.runs, result.resume_start, group_fn, sink);

  fault::CampaignReport& report = result.report;
  report.name = opts.name;
  report.seed = opts.seed;
  report.runs = opts.runs;
  report.merged = std::move(state.merged);
  report.health = std::move(state.health);
  report.unrecovered_runs = std::move(state.unrecovered_runs);
  report.unrecovered_health = std::move(state.unrecovered_health);
  if (const auto* c = report.merged.find_counter("campaign.unrecovered")) {
    report.unrecovered = c->value;
  }
  if (const auto* c = report.merged.find_counter("campaign.faults_injected")) {
    report.faults_injected = c->value;
  }
  if (const auto* c =
          report.merged.find_counter("campaign.fault_opportunities")) {
    report.fault_opportunities = c->value;
  }

  result.evidence = evidence::finish_campaign_evidence(dir, opts, report,
                                                       std::move(artifacts));

  // The campaign finished; the checkpoint has served its purpose.  A
  // stale one must not survive into the next (possibly different)
  // campaign in the same directory.
  std::error_code ec;
  std::filesystem::remove(ckpt_path, ec);
  std::filesystem::remove(ckpt_path + ".tmp", ec);

  return result;
}

}  // namespace iecd::campaign
