#include "beans/serial_bean.hpp"

#include "beans/solvers.hpp"
#include "util/strings.hpp"

namespace iecd::beans {

SerialBean::SerialBean(std::string name) : Bean(std::move(name), "AsynchroSerial") {
  properties().declare(PropertySpec::integer(
      "baud", 115200, 300, 4000000, "baud rate (must be a standard rate of "
                                    "the derivative's SCI)"));
  properties().declare(PropertySpec::boolean(
      "rx_interrupt", true, "raise OnRxChar per received byte"));
  properties().declare(PropertySpec::integer(
      "interrupt_priority", 2, 0, 15, "OnRxChar priority"));
}

std::vector<MethodSpec> SerialBean::methods() const {
  return {
      {"SendChar", "byte %M_SendChar(byte Chr)", "queue one byte for TX"},
      {"RecvChar", "byte %M_RecvChar(byte *Chr)", "read the RX register"},
  };
}

std::vector<EventSpec> SerialBean::events() const {
  return {{"OnRxChar", "byte received"},
          {"OnTxComplete", "TX FIFO drained"}};
}

ResourceDemand SerialBean::demand() const {
  ResourceDemand d;
  d.uarts = 1;
  return d;
}

void SerialBean::validate(const mcu::DerivativeSpec& cpu,
                          util::DiagnosticList& diagnostics) {
  if (cpu.uarts <= 0) {
    diagnostics.error(name(), "no SCI module on " + cpu.name);
    return;
  }
  const auto rate = static_cast<std::uint32_t>(properties().get_int("baud"));
  if (!uart_baud_supported(cpu, rate)) {
    std::vector<std::string> rates;
    for (auto b : cpu.uart_bauds) rates.push_back(std::to_string(b));
    diagnostics.error(name() + ".baud",
                      util::format("%u baud not derivable from the %s SCI "
                                   "clock (supported: %s)",
                                   rate, cpu.name.c_str(),
                                   util::join(rates, ", ").c_str()));
  }
}

void SerialBean::bind(BindContext& ctx) {
  periph::UartConfig cfg;
  if (properties().get_bool("rx_interrupt")) {
    cfg.rx_vector = register_event(
        ctx, "OnRxChar",
        static_cast<int>(properties().get_int("interrupt_priority")));
  }
  cfg.tx_vector = register_event(
      ctx, "OnTxComplete",
      static_cast<int>(properties().get_int("interrupt_priority")) + 1);
  uart_ = std::make_unique<periph::UartPeripheral>(ctx.mcu, cfg, name());
  mark_bound();
}

bool SerialBean::SendChar(std::uint8_t byte) {
  return uart_ && uart_->send(byte);
}

std::size_t SerialBean::SendBlock(const std::uint8_t* data, std::size_t len) {
  return uart_ ? uart_->send(data, len) : 0;
}

std::optional<std::uint8_t> SerialBean::RecvChar() {
  return uart_ ? uart_->read() : std::nullopt;
}

DriverSource SerialBean::driver_source() const {
  DriverSource out;
  out.header_name = name() + ".h";
  out.source_name = name() + ".c";
  out.header = driver_header_prologue() + driver_method_decls() +
               "\n#endif /* __" + name() + "_H */\n";
  std::string c = "#include \"" + name() + ".h\"\n\n";
  c += util::format("/* %lld baud, 8N1 */\n",
                    static_cast<long long>(properties().get_int("baud")));
  if (method_enabled("SendChar")) {
    c += "byte " + name() +
         "_SendChar(byte Chr) {\n"
         "  if (!(SCI_SR & SCI_SR_TDRE)) return ERR_TXFULL;\n"
         "  SCI_DR = Chr;\n  return ERR_OK;\n}\n";
  }
  if (method_enabled("RecvChar")) {
    c += "byte " + name() +
         "_RecvChar(byte *Chr) {\n"
         "  if (!(SCI_SR & SCI_SR_RDRF)) return ERR_RXEMPTY;\n"
         "  *Chr = SCI_DR;\n  return ERR_OK;\n}\n";
  }
  out.source = c;
  return out;
}

}  // namespace iecd::beans
