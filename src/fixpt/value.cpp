#include "fixpt/value.hpp"

#include <cmath>

#include "util/strings.hpp"

namespace iecd::fixpt {

FixedValue FixedValue::from_double(double real, FixedFormat fmt,
                                   Rounding rounding, Overflow overflow) {
  const double scaled = std::ldexp(real, fmt.frac_bits);
  double rounded = 0.0;
  switch (rounding) {
    case Rounding::kNearest:
      rounded = std::round(scaled);
      break;
    case Rounding::kFloor:
      rounded = std::floor(scaled);
      break;
    case Rounding::kZero:
      rounded = std::trunc(scaled);
      break;
  }
  // Clamp before the int64 conversion to avoid UB on huge doubles.
  const double lo = static_cast<double>(fmt.min_raw());
  const double hi = static_cast<double>(fmt.max_raw());
  std::int64_t raw;
  if (rounded <= lo - 1 || rounded >= hi + 1) {
    raw = apply_overflow(
        rounded < 0 ? fmt.min_raw() - 1 : fmt.max_raw() + 1, fmt, overflow);
  } else {
    raw = apply_overflow(static_cast<std::int64_t>(rounded), fmt, overflow);
  }
  return FixedValue(raw, fmt);
}

double FixedValue::to_double() const {
  return std::ldexp(static_cast<double>(raw_), -fmt_.frac_bits);
}

FixedValue FixedValue::rescale(FixedFormat to, Rounding rounding,
                               Overflow overflow) const {
  const int shift = fmt_.frac_bits - to.frac_bits;
  std::int64_t raw = shift_with_rounding(raw_, shift, rounding);
  raw = apply_overflow(raw, to, overflow);
  return FixedValue(raw, to);
}

namespace {

/// Aligns both raw values to a common fractional precision for exact
/// add/sub/compare.  Picks the max frac to avoid losing bits.
struct Aligned {
  std::int64_t a;
  std::int64_t b;
  int frac;
};

Aligned align(const FixedValue& x, const FixedValue& y) {
  const int fa = x.format().frac_bits;
  const int fb = y.format().frac_bits;
  const int frac = fa > fb ? fa : fb;
  return {x.raw() << (frac - fa), y.raw() << (frac - fb), frac};
}

}  // namespace

FixedValue FixedValue::add(const FixedValue& other, FixedFormat out_fmt,
                           Rounding rounding, Overflow overflow) const {
  const Aligned al = align(*this, other);
  const std::int64_t sum = al.a + al.b;
  std::int64_t raw =
      shift_with_rounding(sum, al.frac - out_fmt.frac_bits, rounding);
  raw = apply_overflow(raw, out_fmt, overflow);
  return FixedValue(raw, out_fmt);
}

FixedValue FixedValue::sub(const FixedValue& other, FixedFormat out_fmt,
                           Rounding rounding, Overflow overflow) const {
  const Aligned al = align(*this, other);
  const std::int64_t diff = al.a - al.b;
  std::int64_t raw =
      shift_with_rounding(diff, al.frac - out_fmt.frac_bits, rounding);
  raw = apply_overflow(raw, out_fmt, overflow);
  return FixedValue(raw, out_fmt);
}

FixedValue FixedValue::mul(const FixedValue& other, FixedFormat out_fmt,
                           Rounding rounding, Overflow overflow) const {
  // 32x32 -> 64-bit products are exact for word_bits <= 32.
  const std::int64_t product = raw_ * other.raw_;
  const int product_frac = fmt_.frac_bits + other.fmt_.frac_bits;
  std::int64_t raw =
      shift_with_rounding(product, product_frac - out_fmt.frac_bits, rounding);
  raw = apply_overflow(raw, out_fmt, overflow);
  return FixedValue(raw, out_fmt);
}

FixedValue FixedValue::div(const FixedValue& other, FixedFormat out_fmt,
                           Rounding rounding, Overflow overflow) const {
  if (other.raw_ == 0) {
    // Saturate to the signed extreme, as the generated C guards do.
    const std::int64_t raw = raw_ >= 0 ? out_fmt.max_raw() : out_fmt.min_raw();
    return FixedValue(raw, out_fmt);
  }
  // result_real = (a * 2^-fa) / (b * 2^-fb); we want raw_out = result_real
  // * 2^fo = a * 2^(fo - fa + fb) / b.  Pre-shift the dividend.
  const int pre = out_fmt.frac_bits - fmt_.frac_bits + other.fmt_.frac_bits;
  std::int64_t num = raw_;
  std::int64_t den = other.raw_;
  if (pre >= 0) {
    num = num << pre;
  } else {
    den = den << (-pre);
  }
  std::int64_t q;
  switch (rounding) {
    case Rounding::kNearest: {
      // Round half away from zero: bias the numerator by half the divisor
      // in the direction of the quotient's sign.
      const bool positive = (num >= 0) == (den > 0);
      q = (2 * num + (positive ? den : -den)) / (2 * den);
      break;
    }
    case Rounding::kFloor: {
      q = num / den;
      if ((num % den != 0) && ((num < 0) != (den < 0))) --q;
      break;
    }
    case Rounding::kZero:
    default:
      q = num / den;
      break;
  }
  q = apply_overflow(q, out_fmt, overflow);
  return FixedValue(q, out_fmt);
}

FixedValue FixedValue::negate(Overflow overflow) const {
  return FixedValue(apply_overflow(-raw_, fmt_, overflow), fmt_);
}

bool FixedValue::equals(const FixedValue& other) const {
  const Aligned al = align(*this, other);
  return al.a == al.b;
}

bool FixedValue::less_than(const FixedValue& other) const {
  const Aligned al = align(*this, other);
  return al.a < al.b;
}

std::string FixedValue::to_string() const {
  return util::format("%.9g (%s raw=%lld)", to_double(),
                      fmt_.to_string().c_str(),
                      static_cast<long long>(raw_));
}

double quantization_error(double real, FixedFormat fmt, Rounding rounding) {
  return FixedValue::from_double(real, fmt, rounding).to_double() - real;
}

}  // namespace iecd::fixpt
