# Empty dependencies file for iecd_sim.
# This may be replaced when dependencies are built.
