#include "periph/pwm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace iecd::periph {

PwmPeripheral::PwmPeripheral(mcu::Mcu& mcu, PwmConfig config, std::string name)
    : Peripheral(mcu, std::move(name)), config_(config) {
  if (config.prescaler == 0) {
    throw std::invalid_argument("PwmPeripheral: prescaler must be >= 1");
  }
  if (config.modulo == 0) {
    throw std::invalid_argument("PwmPeripheral: modulo must be >= 1");
  }
}

sim::SimTime PwmPeripheral::period() const {
  const std::uint64_t cycles =
      static_cast<std::uint64_t>(config_.prescaler) * config_.modulo;
  return mcu().clock().cycles_to_time(cycles);
}

std::uint64_t PwmPeripheral::periods_elapsed() const {
  if (!running_ || !analytic()) return periods_;
  return periods_ + 1 +
         static_cast<std::uint64_t>((now() - start_time_) / period());
}

void PwmPeripheral::start() {
  if (running_) return;
  running_ = true;
  start_time_ = now();
  if (analytic()) {
    // The first period begins immediately: latch the duty register here;
    // later boundaries matter only when a write is pending (see
    // set_duty_counts), so no recurring event is needed.
    active_duty_ = pending_duty_;
    average_.set(now(), duty_ratio());
    return;
  }
  // First period begins immediately; subsequent boundaries ride one recurring
  // event instead of re-arming a fresh one-shot every cycle.
  on_period_start();
  tick_event_ = queue().schedule_every(period(), [this] { on_period_start(); });
  tick_scheduled_ = true;
}

void PwmPeripheral::stop() {
  if (!running_) return;
  periods_ = periods_elapsed();  // freeze the analytic count
  running_ = false;
  if (tick_scheduled_) {
    queue().cancel(tick_event_);
    tick_scheduled_ = false;
  }
  if (latch_scheduled_) {
    queue().cancel(latch_event_);
    latch_scheduled_ = false;
  }
  average_.set(now(), 0.0);
}

void PwmPeripheral::set_duty_counts(std::uint32_t counts) {
  pending_duty_ = std::min(counts, config_.modulo);
  if (!running_) {
    // Counter stopped: the write lands directly in the active register.
    active_duty_ = pending_duty_;
    return;
  }
  if (!analytic() || latch_scheduled_) return;
  // Double-buffered semantics: the write takes effect at the next period
  // boundary strictly after now — the same instant the per-period tick
  // would have latched it.  Later writes before that boundary just update
  // the pending register; the armed latch picks up the newest value.
  const sim::SimTime t = period();
  latch_scheduled_ = true;
  latch_event_ = queue().schedule_at(
      start_time_ + ((now() - start_time_) / t + 1) * t,
      [this] { latch_pending(); });
}

void PwmPeripheral::latch_pending() {
  latch_scheduled_ = false;
  active_duty_ = pending_duty_;
  average_.set(now(), duty_ratio());
  // Keep the change log bounded for long runs; consumers integrate lazily
  // and never look further back than a control period or two.
  average_.prune_before(now() - sim::milliseconds(100));
}

void PwmPeripheral::set_duty_ratio(double ratio) {
  const double clamped = std::clamp(ratio, 0.0, 1.0);
  set_duty_counts(static_cast<std::uint32_t>(
      std::lround(clamped * static_cast<double>(config_.modulo))));
}

double PwmPeripheral::duty_ratio() const {
  return static_cast<double>(active_duty_) /
         static_cast<double>(config_.modulo);
}

void PwmPeripheral::set_edge_callback(
    std::function<void(bool, sim::SimTime)> cb) {
  edge_cb_ = std::move(cb);
}

void PwmPeripheral::on_period_start() {
  if (!running_) return;
  // Latch the double-buffered duty register at the period boundary.
  active_duty_ = pending_duty_;
  average_.set(now(), duty_ratio());
  ++periods_;
  // Keep the change log bounded for long runs; consumers integrate lazily
  // and never look further back than a control period or two.
  if ((periods_ & 0xFF) == 0) {
    average_.prune_before(now() - sim::milliseconds(100));
  }

  if (config_.reload_vector >= 0) mcu().raise_irq(config_.reload_vector);

  if (config_.edge_events && edge_cb_) {
    if (active_duty_ > 0) edge_cb_(true, now());
    if (active_duty_ < config_.modulo) {
      const std::uint64_t high_cycles =
          static_cast<std::uint64_t>(config_.prescaler) * active_duty_;
      const sim::SimTime fall = now() + mcu().clock().cycles_to_time(high_cycles);
      queue().schedule_at(fall, [this] {
        if (running_ && edge_cb_) edge_cb_(false, now());
      });
    }
  }
}

void PwmPeripheral::reset() {
  stop();
  active_duty_ = 0;
  pending_duty_ = 0;
  periods_ = 0;
  average_ = sim::ZohSignal{0.0};
}

}  // namespace iecd::periph
