/// \file format.hpp
/// The IECD evidence artifact: a compact, deterministic binary container
/// for the records one run leaves behind — trace events, metrics, health
/// and campaign summaries, build provenance.  Design rules:
///
///   * fixed little-endian layout, explicit widths, no text floats —
///     doubles travel as their IEEE-754 bit pattern;
///   * every cell is length-prefixed, so a reader can skip records whose
///     schema it does not know (forward compatibility) and detect
///     truncation exactly;
///   * the same run always produces the same bytes — map-ordered metric
///     iteration, interned-string tables emitted in id order, no clocks,
///     no pointers;
///   * tamper-evident: a per-record chained hash plus a SHA-256 digest of
///     the whole body live in the footer (see hash.hpp).
///
/// File layout:
///
///   [header 32 B] [schema section] [record cells ...] [footer 64 B]
///
///   header:  magic "IECDEVD1", u16 version, u16 header_size,
///            u32 schema_count, u64 flags, u64 reserved
///   schema:  schema_count cells, each u32 len + schema definition
///            (see schema.hpp)
///   record:  u32 payload_len, u16 schema_id, u16 schema_version,
///            payload_len payload bytes
///   footer:  u32 sentinel 0xFFFFFFFF (never a valid payload length),
///            magic "IECDFTR1", u64 record_count, u64 chain_hash,
///            32 B SHA-256 of bytes [0, footer_start), u32 end magic
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace iecd::evidence {

inline constexpr char kHeaderMagic[8] = {'I', 'E', 'C', 'D',
                                         'E', 'V', 'D', '1'};
inline constexpr char kFooterMagic[8] = {'I', 'E', 'C', 'D',
                                         'F', 'T', 'R', '1'};
inline constexpr std::uint16_t kFormatVersion = 1;
inline constexpr std::uint16_t kHeaderSize = 32;
inline constexpr std::uint32_t kFooterSentinel = 0xFFFFFFFFu;
inline constexpr std::uint32_t kEndMagic = 0x31445645u;  // "EVD1" LE
inline constexpr std::size_t kFooterSize = 4 + 8 + 8 + 8 + 32 + 4;
/// Per-cell framing: u32 payload_len + u16 schema_id + u16 schema_version.
inline constexpr std::size_t kCellHeaderSize = 4 + 2 + 2;
/// Upper bound on one record cell's payload; anything larger is treated
/// as corruption by the reader (guards length-field bit flips).
inline constexpr std::uint32_t kMaxPayload = 1u << 30;

// ------------------------------------------------------------ built-in ids
/// Built-in record schemas (see SchemaRegistry::builtin() for the field
/// lists).  Ids are append-only: a new record kind takes the next id, an
/// extended record kind keeps its id and bumps its schema version.
enum : std::uint16_t {
  kSchemaStringIntern = 1,   ///< trace-name table entry {id, str}
  kSchemaTraceEvent = 2,     ///< one trace::Event, names by intern id
  kSchemaMetricCounter = 3,  ///< MetricsRegistry counter
  kSchemaMetricGauge = 4,    ///< MetricsRegistry gauge
  kSchemaMetricStats = 5,    ///< RunningStats raw state
  kSchemaMetricSeries = 6,   ///< SampleSeries samples
  kSchemaMetricHistogram = 7,///< fixed-bin histogram raw counts
  kSchemaBuildInfo = 8,      ///< git sha / compiler / flags / build type
  kSchemaRunMeta = 9,        ///< run name, sweep index, seed
  kSchemaHealthSummary = 10, ///< HealthReport headline + full JSON
  kSchemaCampaignSummary = 11,  ///< CampaignReport headline + full JSON
  kSchemaCampaignCheckpoint = 12,  ///< campaign resume point (fold state)
};

// --------------------------------------------------- little-endian codec
// memcpy-based so the layout is host-endianness-independent and free of
// alignment traps (records are packed).
template <typename T>
inline void store_le(std::vector<std::uint8_t>& out, T v) {
  static_assert(std::is_integral_v<T>);
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out.push_back(static_cast<std::uint8_t>(
        static_cast<std::make_unsigned_t<T>>(v) >> (8 * i)));
  }
}

inline void store_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  store_le<std::uint64_t>(out, bits);
}

/// Raw-pointer variants for pre-sized buffers (the writer's event fast
/// path).  Return the pointer just past the written bytes.
template <typename T>
inline std::uint8_t* store_le_at(std::uint8_t* p, T v) {
  static_assert(std::is_integral_v<T>);
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    p[i] = static_cast<std::uint8_t>(
        static_cast<std::make_unsigned_t<T>>(v) >> (8 * i));
  }
  return p + sizeof(T);
}

inline std::uint8_t* store_f64_at(std::uint8_t* p, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return store_le_at<std::uint64_t>(p, bits);
}

inline void store_str(std::vector<std::uint8_t>& out, std::string_view s) {
  store_le<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  // Byte loop instead of a char* range-insert: gcc 12 flags the latter
  // with a spurious -Wstringop-overflow when inlined into callers.
  for (char c : s) out.push_back(static_cast<std::uint8_t>(c));
}

template <typename T>
inline T load_le(const std::uint8_t* p) {
  static_assert(std::is_integral_v<T>);
  std::make_unsigned_t<T> v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<std::make_unsigned_t<T>>(p[i]) << (8 * i);
  }
  return static_cast<T>(v);
}

inline double load_f64(const std::uint8_t* p) {
  const std::uint64_t bits = load_le<std::uint64_t>(p);
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

/// Bounds-checked cursor over a record payload; every read method returns
/// false instead of walking past the end, so a corrupted length field can
/// never take the reader out of bounds.
class PayloadCursor {
 public:
  PayloadCursor(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

  template <typename T>
  bool read(T& out) {
    if (remaining() < sizeof(T)) return false;
    out = load_le<T>(data_ + pos_);
    pos_ += sizeof(T);
    return true;
  }

  bool read_f64(double& out) {
    if (remaining() < 8) return false;
    out = load_f64(data_ + pos_);
    pos_ += 8;
    return true;
  }

  bool read_str(std::string& out) {
    std::uint32_t len = 0;
    if (!read(len)) return false;
    if (remaining() < len) return false;
    out.assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }

  /// Raw view of \p n bytes (for f64/u64 arrays).
  bool read_bytes(const std::uint8_t*& out, std::size_t n) {
    if (remaining() < n) return false;
    out = data_ + pos_;
    pos_ += n;
    return true;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace iecd::evidence
