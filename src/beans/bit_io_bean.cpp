#include "beans/bit_io_bean.hpp"

#include "util/strings.hpp"

namespace iecd::beans {

GpioPortHolder::GpioPortHolder(mcu::Mcu& mcu, int pins,
                               mcu::IrqVector irq_base)
    : port_(mcu, periph::GpioConfig{pins, irq_base}, "gpio_shared") {}

BitIoBean::BitIoBean(std::string name) : Bean(std::move(name), "BitIO") {
  properties().declare(
      PropertySpec::integer("pin", 0, 0, 255, "port pin number"));
  properties().declare(PropertySpec::enumeration(
      "direction", "input", {"input", "output"}, "pin direction"));
  properties().declare(PropertySpec::boolean(
      "init_value", false, "output level after init"));
  properties().declare(PropertySpec::enumeration(
      "edge", "none", {"none", "rising", "falling", "both"},
      "input edge raising OnInterrupt"));
  properties().declare(PropertySpec::integer(
      "interrupt_priority", 6, 0, 15, "OnInterrupt priority"));
}

std::vector<MethodSpec> BitIoBean::methods() const {
  return {
      {"GetVal", "bool %M_GetVal(void)", "read the pin"},
      {"SetVal", "void %M_SetVal(void)", "drive high"},
      {"ClrVal", "void %M_ClrVal(void)", "drive low"},
      {"NegVal", "void %M_NegVal(void)", "toggle"},
      {"PutVal", "void %M_PutVal(bool Val)", "drive a level"},
  };
}

std::vector<EventSpec> BitIoBean::events() const {
  return {{"OnInterrupt", "configured input edge detected"}};
}

ResourceDemand BitIoBean::demand() const {
  ResourceDemand d;
  d.gpio_pins = 1;
  return d;
}

void BitIoBean::validate(const mcu::DerivativeSpec& cpu,
                         util::DiagnosticList& diagnostics) {
  if (properties().get_int("pin") >= cpu.gpio_pins) {
    diagnostics.error(
        name() + ".pin",
        util::format("pin %lld does not exist on %s (has %d)",
                     static_cast<long long>(properties().get_int("pin")),
                     cpu.name.c_str(), cpu.gpio_pins));
  }
  if (properties().get_string("direction") == "output" &&
      properties().get_string("edge") != "none") {
    diagnostics.error(name() + ".edge",
                      "edge interrupts require an input pin");
  }
}

void BitIoBean::bind(BindContext& ctx) {
  if (!ctx.gpio) {
    ctx.gpio = std::make_shared<GpioPortHolder>(
        ctx.mcu, ctx.mcu.spec().gpio_pins, periph::kIrqGpioBase);
  }
  port_ = &ctx.gpio->port();
  const int p = pin();
  const bool output = properties().get_string("direction") == "output";
  port_->set_direction(
      p, output ? periph::PinDirection::kOutput : periph::PinDirection::kInput);
  if (output) {
    port_->write(p, properties().get_bool("init_value"));
  } else {
    const std::string& edge = properties().get_string("edge");
    periph::EdgeSense sense = periph::EdgeSense::kNone;
    if (edge == "rising") sense = periph::EdgeSense::kRising;
    if (edge == "falling") sense = periph::EdgeSense::kFalling;
    if (edge == "both") sense = periph::EdgeSense::kBoth;
    port_->set_edge_sense(p, sense);
    if (sense != periph::EdgeSense::kNone) {
      // The shared port raises kIrqGpioBase + pin; register the event
      // trampoline on exactly that vector rather than allocating a new one.
      const auto slot_vec = periph::kIrqGpioBase + p;
      mcu::IsrHandler trampoline;
      trampoline.name = name() + ".OnInterrupt";
      trampoline.stack_bytes = 96;
      // Body forwards to the bean's handler slot at dispatch time.
      Bean* self = this;
      trampoline.body = [self]() -> std::uint64_t {
        return self->dispatch_event_body("OnInterrupt");
      };
      trampoline.commit = [self] { self->dispatch_event_commit("OnInterrupt"); };
      ctx.mcu.intc().register_vector(
          slot_vec,
          static_cast<int>(properties().get_int("interrupt_priority")),
          std::move(trampoline));
      assign_event_vector("OnInterrupt", slot_vec);
    }
  }
  mark_bound();
}

bool BitIoBean::GetVal() const { return port_ && port_->read(pin()); }

void BitIoBean::SetVal() {
  if (port_) port_->write(pin(), true);
}

void BitIoBean::ClrVal() {
  if (port_) port_->write(pin(), false);
}

void BitIoBean::NegVal() {
  if (port_) port_->write(pin(), !port_->read(pin()));
}

void BitIoBean::PutVal(bool level) {
  if (port_) port_->write(pin(), level);
}

DriverSource BitIoBean::driver_source() const {
  DriverSource out;
  out.header_name = name() + ".h";
  out.source_name = name() + ".c";
  out.header = driver_header_prologue() + driver_method_decls() +
               "\n#endif /* __" + name() + "_H */\n";
  std::string c = "#include \"" + name() + ".h\"\n\n";
  const std::string mask =
      util::format("(1u << %lld)", static_cast<long long>(pin()));
  if (method_enabled("GetVal")) {
    c += "bool " + name() + "_GetVal(void) { return (GPIO_DR & " + mask +
         ") != 0; }\n";
  }
  if (method_enabled("SetVal")) {
    c += "void " + name() + "_SetVal(void) { GPIO_DR |= " + mask + "; }\n";
  }
  if (method_enabled("ClrVal")) {
    c += "void " + name() + "_ClrVal(void) { GPIO_DR &= ~" + mask + "; }\n";
  }
  if (method_enabled("NegVal")) {
    c += "void " + name() + "_NegVal(void) { GPIO_DR ^= " + mask + "; }\n";
  }
  out.source = c;
  return out;
}

}  // namespace iecd::beans
