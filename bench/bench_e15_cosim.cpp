// E15 — co-simulation master (src/cosim/): the networked servo farm as a
// scaling and determinism benchmark.  The paper's target systems are
// "embedded controllers having distributed nature"; E10 measured one loop
// split across three nodes, E15 scales the composition axis — N servo
// nodes plus a supervisor negotiated by the step-negotiation master over
// one shared CAN bus.  Three tables plus the campaign gate:
//
//   (a) node-count sweep (2 -> 16 bus nodes): master cost — wall time,
//       runs/s, negotiations, events — and control quality (mean |err|,
//       bus utilisation) as the farm grows.
//   (b) bit-rate sweep at 16 nodes: the full farm against a shrinking
//       bus, down to where status/command traffic saturates the wire.
//   (c) determinism: the default-plan farm campaign's merged report JSON
//       (retained runner AND streaming engine) plus the evidence
//       MANIFEST.jsonl byte-compared across 1/2/8 sweep threads.
//   (d) campaign gate: the 16-node farm under the default fault plan —
//       node kills, degrades, bus corruption, encoder glitches — must
//       recover on EVERY run (e15.campaign.unrecovered == 0).
//
// Workload overrides (bench_util.hpp): --runs=N resizes the gate
// campaign, --threads=N its fan-out width.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "bench_util.hpp"
#include "campaign/engine.hpp"
#include "cosim/farm.hpp"
#include "fault/campaign.hpp"

using namespace iecd;

namespace {

// Servo counts for the node sweep; total bus nodes = servos + supervisor.
constexpr std::size_t kServoCounts[] = {1, 3, 7, 11, 15};
constexpr std::uint32_t kBitrates[] = {1000000, 500000, 250000, 125000};

double farm_duration() { return bench::smoke() ? 0.25 : 1.0; }

std::size_t gate_runs() {
  if (bench::overrides().runs > 0) return bench::overrides().runs;
  return bench::smoke() ? 6 : 16;
}

std::size_t gate_threads() {
  if (bench::overrides().threads > 0) return bench::overrides().threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 4 ? 4 : (hw >= 2 ? 2 : 1);
}

cosim::FarmConfig farm_config(std::size_t servos, std::uint32_t bitrate) {
  cosim::FarmConfig cfg;
  cfg.servo_count = servos;
  cfg.bitrate_bps = bitrate;
  cfg.duration_s = farm_duration();
  cfg.traffic_frames_per_s = 300.0;  // background chatter, as in E10
  return cfg;
}

cosim::FarmResult run_clean_farm(const cosim::FarmConfig& cfg) {
  cosim::ServoFarm farm(cosim::make_farm_topology(cfg),
                        {cfg.duration_s, cfg.settle_tolerance, nullptr,
                         nullptr});
  return farm.run();
}

std::size_t settled_count(const cosim::FarmResult& r) {
  std::size_t settled = 0;
  for (const auto& n : r.nodes) settled += n.settled ? 1 : 0;
  return settled;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

// ------------------------------------------------------------ table (a)

void node_sweep_table() {
  std::printf("(a) node-count sweep (500 kbit/s, %.2f s horizon)\n\n",
              farm_duration());
  std::printf("%-7s | %-9s %-8s %-10s %-12s %-12s %-10s %-8s\n", "nodes",
              "wall[ms]", "runs/s", "mean|err|", "bus busy[%]", "negotiate",
              "events", "settled");
  bench::print_rule(88);

  for (const std::size_t servos : kServoCounts) {
    const auto cfg = farm_config(servos, 500000);
    bench::Stopwatch watch;
    const auto r = run_clean_farm(cfg);
    const double wall_ms = watch.elapsed_ms();
    const std::size_t total_nodes = servos + 1;
    std::printf("%-7zu | %-9.1f %-8.1f %-10.4f %-12.1f %-12llu %-10llu "
                "%zu/%zu\n",
                total_nodes, wall_ms,
                wall_ms > 0.0 ? 1000.0 / wall_ms : 0.0, r.mean_abs_error,
                r.bus_utilisation * 100.0,
                static_cast<unsigned long long>(r.negotiations),
                static_cast<unsigned long long>(r.events_executed),
                settled_count(r), r.nodes.size());
    const std::string key = "e15.nodes." + std::to_string(total_nodes);
    bench::summarize(key + ".wall_ms", wall_ms);
    bench::summarize(key + ".runs_per_s",
                     wall_ms > 0.0 ? 1000.0 / wall_ms : 0.0);
    bench::summarize(key + ".mean_abs_error", r.mean_abs_error);
    bench::summarize(key + ".bus_utilisation", r.bus_utilisation);
    bench::summarize(key + ".recovered", r.recovered ? 1.0 : 0.0);
  }
  std::printf("\n");
}

// ------------------------------------------------------------ table (b)

void bitrate_table() {
  std::printf("(b) bit-rate sweep at 16 nodes (15 servos + supervisor)\n\n");
  std::printf("%-10s | %-9s %-8s %-10s %-12s %-8s %-10s\n", "bitrate",
              "wall[ms]", "runs/s", "mean|err|", "bus busy[%]", "stale",
              "settled");
  bench::print_rule(76);

  for (const std::uint32_t bitrate : kBitrates) {
    const auto cfg = farm_config(15, bitrate);
    bench::Stopwatch watch;
    const auto r = run_clean_farm(cfg);
    const double wall_ms = watch.elapsed_ms();
    std::printf("%-10u | %-9.1f %-8.1f %-10.4f %-12.1f %-8zu %zu/%zu\n",
                bitrate, wall_ms, wall_ms > 0.0 ? 1000.0 / wall_ms : 0.0,
                r.mean_abs_error, r.bus_utilisation * 100.0, r.stale_count,
                settled_count(r), r.nodes.size());
    const std::string key = "e15.bitrate." + std::to_string(bitrate);
    bench::summarize(key + ".mean_abs_error", r.mean_abs_error);
    bench::summarize(key + ".bus_utilisation", r.bus_utilisation);
    bench::summarize(key + ".settled",
                     static_cast<double>(settled_count(r)));
  }
  std::printf("\n");
}

// ------------------------------------------------------------ table (c)

void identity_table() {
  const std::size_t runs = bench::smoke() ? 4 : 8;
  auto cfg = farm_config(15, 500000);
  cfg.duration_s = bench::smoke() ? 0.15 : 0.3;

  std::printf("(c) determinism: default-plan farm campaign across sweep "
              "threads (%zu runs, %.2f s horizon)\n\n",
              runs, cfg.duration_s);

  auto campaign_options = [&](std::size_t threads) {
    fault::CampaignOptions options;
    options.name = "e15_ident";
    options.seed = 2026;
    options.runs = runs;
    options.threads = threads;
    options.plan = fault::FaultPlan::defaults();
    return options;
  };

  std::string ref_json;
  std::string ref_manifest;
  bool reports_identical = true;
  bool manifests_identical = true;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const fault::CampaignReport report =
        fault::CampaignRunner(campaign_options(threads))
            .run(cosim::make_farm_scenario(cfg));

    const std::string dir = "E15_ident_t" + std::to_string(threads);
    std::filesystem::remove_all(dir);
    campaign::EngineOptions eo;
    eo.campaign = campaign_options(threads);
    eo.evidence_dir = dir;
    eo.write_run_artifacts = false;
    const campaign::EngineResult er =
        campaign::CampaignEngine(eo).run(cosim::make_farm_scenario(cfg));
    const std::string manifest = slurp(er.evidence.manifest_path);

    const bool engine_same = er.report.to_json() == report.to_json();
    bool json_same = true;
    bool manifest_same = true;
    if (threads == 1) {
      ref_json = report.to_json();
      ref_manifest = manifest;
    } else {
      json_same = report.to_json() == ref_json;
      manifest_same = manifest == ref_manifest;
    }
    reports_identical = reports_identical && engine_same && json_same;
    manifests_identical = manifests_identical && manifest_same;
    std::printf("  t%zu: runner vs engine %s, vs t1 reference: report %s, "
                "manifest %s\n",
                threads, engine_same ? "byte-identical" : "DIFFER",
                json_same ? "byte-identical" : "DIFFERS",
                manifest_same ? "byte-identical" : "DIFFERS");
  }
  std::printf("\n");
  bench::summarize("e15.identity.report_identical",
                   reports_identical ? 1.0 : 0.0);
  bench::summarize("e15.identity.manifest_identical",
                   manifests_identical ? 1.0 : 0.0);
}

// ------------------------------------------------------------ table (d)

void campaign_gate_table() {
  const std::size_t runs = gate_runs();
  const std::size_t threads = gate_threads();
  auto cfg = farm_config(15, 500000);
  cfg.duration_s = bench::smoke() ? 0.3 : 0.5;

  std::printf("(d) campaign gate: 16-node farm, default fault plan "
              "(%zu runs, %zu threads)\n\n",
              runs, threads);

  fault::CampaignOptions options;
  options.name = "e15_farm";
  options.seed = 777;
  options.runs = runs;
  options.threads = threads;
  options.plan = fault::FaultPlan::defaults();

  bench::Stopwatch watch;
  const fault::CampaignReport report =
      fault::CampaignRunner(options).run(cosim::make_farm_scenario(cfg));
  const double wall_ms = watch.elapsed_ms();
  const double runs_per_s =
      wall_ms > 0.0 ? 1000.0 * static_cast<double>(runs) / wall_ms : 0.0;

  std::printf("  %zu runs in %.1f ms (%.1f runs/s): %llu faults injected, "
              "%llu unrecovered\n\n",
              runs, wall_ms, runs_per_s,
              static_cast<unsigned long long>(report.faults_injected),
              static_cast<unsigned long long>(report.unrecovered));

  bench::summarize("e15.campaign.runs", static_cast<double>(runs));
  bench::summarize("e15.campaign.runs_per_s", runs_per_s);
  bench::summarize("e15.campaign.faults_injected",
                   static_cast<double>(report.faults_injected));
  bench::summarize("e15.campaign.unrecovered",
                   static_cast<double>(report.unrecovered));
}

void print_table() {
  std::printf("E15: co-simulation master — networked servo farm scaling, "
              "determinism, fault campaign\n\n");
  node_sweep_table();
  bitrate_table();
  identity_table();
  campaign_gate_table();
  std::printf("expected shape: master cost grows ~linearly with node count "
              "(bus frames dominate the\nevent budget); at 125 kbit/s the "
              "16-node status+command traffic saturates the wire.  The\nCI "
              "gate holds both identity flags at 1 and "
              "e15.campaign.unrecovered at 0.\n\n");
}

// -------------------------------------------------- microbenchmarks

void BM_FarmRun(benchmark::State& state) {
  const auto servos = static_cast<std::size_t>(state.range(0));
  auto cfg = farm_config(servos, 500000);
  cfg.duration_s = 0.2;
  for (auto _ : state) {
    const auto r = run_clean_farm(cfg);
    benchmark::DoNotOptimize(r.mean_abs_error);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(servos + 1));
}
BENCHMARK(BM_FarmRun)->Arg(3)->Arg(15)->Unit(benchmark::kMillisecond);

}  // namespace

IECD_BENCH_MAIN(print_table)
