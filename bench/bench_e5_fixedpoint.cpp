// E5 (Section 7) — fixed point vs double on the no-FPU 16-bit target.
// The paper: "The default data type used in Simulink is double.  This
// type is, however, not appropriate for the implementation in the 16-bit
// microcontroller without the floating point unit."  The table quantifies
// why: the fixed-point controller matches the double one within encoder
// quantization while costing an order of magnitude fewer cycles per step
// on the DSC (and far more dramatically on the 8-bit part).
#include <cstdio>

#include "bench_util.hpp"
#include "core/case_study.hpp"

using namespace iecd;

namespace {

core::ServoConfig bench_config(bool fixed) {
  core::ServoConfig cfg;
  cfg.duration_s = 0.8;
  cfg.fixed_point = fixed;
  return cfg;
}

void print_table() {
  std::printf("E5: double vs fixed-point controller on DSC56F8367\n\n");
  std::printf("%-8s | %-9s %-9s %-9s | %-12s %-10s %-9s\n", "variant",
              "IAE", "ss-err", "final", "cycles/step", "exec[us]", "CPU[%]");
  bench::print_rule(80);

  double exec_double = 0.0;
  for (const bool fixed : {false, true}) {
    core::ServoSystem servo(bench_config(fixed));
    const auto mil = servo.run_mil();
    auto build = servo.build_target("servo");
    const auto& cpu = mcu::find_derivative("DSC56F8367");
    const auto cycles = build.app.task_cycles(0, cpu.costs);
    const auto hil = servo.run_hil();
    std::printf("%-8s | %-9.3f %-9.3f %-9.2f | %-12llu %-10.2f %-9.2f\n",
                fixed ? "fixed" : "double", mil.iae,
                mil.metrics.steady_state_error, mil.speed.last_value(),
                static_cast<unsigned long long>(cycles), hil.exec_us_mean,
                hil.cpu_utilisation * 100.0);
    if (!fixed) exec_double = hil.exec_us_mean;
    if (fixed && exec_double > 0) {
      std::printf("\nfixed-point speedup on the no-FPU target: %.1fx\n",
                  exec_double / hil.exec_us_mean);
    }
  }

  std::printf("\nstep cost per derivative (cycles, same model):\n\n");
  std::printf("%-12s | %-12s %-12s %-8s\n", "derivative", "double",
              "fixed", "ratio");
  bench::print_rule(52);
  for (const auto& cpu : mcu::derivative_registry()) {
    // Build both variants against the DSC project (costs only need the
    // cost model, not a legal port).
    core::ServoSystem servo_d(bench_config(false));
    auto build_d = servo_d.build_target("servo");
    core::ServoSystem servo_f(bench_config(true));
    auto build_f = servo_f.build_target("servo");
    const auto cd = build_d.app.task_cycles(0, cpu.costs);
    const auto cf = build_f.app.task_cycles(0, cpu.costs);
    std::printf("%-12s | %-12llu %-12llu %-8.1fx\n", cpu.name.c_str(),
                static_cast<unsigned long long>(cd),
                static_cast<unsigned long long>(cf),
                static_cast<double>(cd) / static_cast<double>(cf));
  }

  std::printf("\nquantization detail (16-bit formats chosen by range):\n");
  core::ServoSystem servo(bench_config(true));
  model::Model& inner = servo.controller().inner();
  for (const char* name : {"cnt_diff", "spd_gain", "err", "pi"}) {
    const model::Block* b = inner.find(name);
    if (b && b->output_format(0)) {
      std::printf("  %-10s -> %s (resolution %.3g)\n", name,
                  b->output_format(0)->to_string().c_str(),
                  b->output_format(0)->resolution());
    }
  }
  std::printf("\n");
}

void BM_MilDouble(benchmark::State& state) {
  for (auto _ : state) {
    core::ServoSystem servo(bench_config(false));
    auto mil = servo.run_mil();
    benchmark::DoNotOptimize(mil.iae);
  }
}
BENCHMARK(BM_MilDouble)->Unit(benchmark::kMillisecond);

void BM_MilFixed(benchmark::State& state) {
  for (auto _ : state) {
    core::ServoSystem servo(bench_config(true));
    auto mil = servo.run_mil();
    benchmark::DoNotOptimize(mil.iae);
  }
}
BENCHMARK(BM_MilFixed)->Unit(benchmark::kMillisecond);

void BM_FixedValueMul(benchmark::State& state) {
  const auto fmt = fixpt::FixedFormat::s16(12);
  fixpt::FixedValue a = fixpt::FixedValue::from_double(1.25, fmt);
  fixpt::FixedValue b = fixpt::FixedValue::from_double(-0.75, fmt);
  for (auto _ : state) {
    a = a.mul(b, fmt);
    benchmark::DoNotOptimize(a);
    a = fixpt::FixedValue::from_double(1.25, fmt);
  }
}
BENCHMARK(BM_FixedValueMul);

}  // namespace

IECD_BENCH_MAIN(print_table)
