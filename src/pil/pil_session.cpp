#include "pil/pil_session.hpp"

#include "util/strings.hpp"

namespace iecd::pil {

void PilReport::set_observed_stack_bytes(std::uint32_t bytes) {
  metrics.gauge("pil.observed_stack_bytes") = bytes;
  observed_stack_bytes = bytes;
}

std::string PilReport::to_string() const {
  std::string out;
  out += util::format("exchanges           %llu (misses %llu, crc errors %llu)\n",
                      static_cast<unsigned long long>(exchanges),
                      static_cast<unsigned long long>(deadline_misses),
                      static_cast<unsigned long long>(crc_errors));
  out += util::format("round trip          %.1f us mean, %.1f us p99\n",
                      round_trip_us.mean(), round_trip_us.percentile(99));
  out += util::format("comm per step       %.1f us (%.1f%% of the period)\n",
                      comm_time_per_step_us, comm_overhead_ratio * 100.0);
  out += util::format("controller exec     %.2f us mean, %.2f us max\n",
                      controller_exec_us_mean, controller_exec_us_max);
  out += util::format("observed stack      %u B\n", observed_stack_bytes);
  return out;
}

PilSession::PilSession(sim::World& world, rt::Runtime& runtime,
                       beans::SerialBean& serial,
                       codegen::SignalBuffer& buffer, Options options)
    : world_(world),
      runtime_(runtime),
      options_(options),
      rx_profile_key_(rt::Runtime::profile_key(serial.name(), "OnRxChar")),
      serial_(&serial) {
  const sim::SerialConfig cfg = options.link == LinkKind::kSpi
                                    ? sim::SerialConfig::spi(options.baud)
                                    : sim::SerialConfig::rs232(options.baud);
  link_ = std::make_unique<sim::SerialLink>(
      world, cfg, options.link == LinkKind::kSpi ? "pil_spi" : "pil_rs232");
  // Host transmits on a2b; the board's UART listens there and answers on
  // b2a.
  serial.peripheral()->connect(link_->b_to_a(), link_->a_to_b());
  agent_ = std::make_unique<TargetAgent>(runtime, serial, buffer);
  HostEndpoint::Options hopts;
  hopts.period = sim::from_seconds(options.period_s);
  hopts.batch = options.batch;
  hopts.recovery = options.recovery;
  host_ = std::make_unique<HostEndpoint>(world, link_->a_to_b(),
                                         link_->b_to_a(), hopts);
}

void PilSession::set_plant(
    std::function<std::vector<double>()> sample,
    std::function<void(const std::vector<double>&)> apply,
    std::function<void(double)> advance) {
  host_->set_plant(std::move(sample), std::move(apply), std::move(advance));
}

void PilSession::set_plant_buffered(
    std::function<void(std::vector<double>&)> sample_into,
    std::function<void(const std::vector<double>&)> apply,
    std::function<void(double)> advance) {
  host_->set_plant_buffered(std::move(sample_into), std::move(apply),
                            std::move(advance));
}

void PilSession::set_monitors(obs::MonitorHub* hub) {
  monitors_ = hub;
  if (!hub) {
    host_->set_rtt_monitor(nullptr);
    if (serial_ && serial_->peripheral()) {
      serial_->peripheral()->set_tx_fifo_monitor(nullptr);
    }
    return;
  }

  // Per-sequence round trip: the exchange interval is both the nominal
  // period and the deadline (a response later than the next exchange is
  // the PIL bench's deadline miss).
  const double interval_s =
      options_.period_s * static_cast<double>(options_.batch < 1
                                                  ? 1
                                                  : options_.batch);
  obs::TimingMonitor::Config rtt_config;
  rtt_config.period_s = interval_s;
  rtt_config.deadline_s = interval_s;
  host_->set_rtt_monitor(&hub->timing("pil.exchange", rtt_config));

  // Board-side UART TX FIFO occupancy (the response frames queue here).
  if (serial_ && serial_->peripheral()) {
    serial_->peripheral()->set_tx_fifo_monitor(
        &hub->watermark(serial_->name() + ".tx_fifo"));
    periph::UartPeripheral* uart = serial_->peripheral();
    hub->flight().add_counter_trigger(
        "uart_overrun", [uart]() { return uart->overruns(); });
  }

  // Decoder CRC failures force a resynchronization rescan on either side
  // of the wire; late actuator frames are the host's deadline misses.
  HostEndpoint* host = host_.get();
  TargetAgent* agent = agent_.get();
  hub->flight().add_counter_trigger("frame_resync", [host, agent]() {
    return host->crc_errors() + agent->crc_errors();
  });
  hub->flight().add_counter_trigger(
      "pil_deadline_miss", [host]() { return host->deadline_misses(); });

  // Recovery instrumentation (inert while Recovery.enabled is false: the
  // monitor stays empty and the triggers never fire).
  obs::TimingMonitor::Config recovery_config;
  recovery_config.period_s = interval_s;
  recovery_config.deadline_s = interval_s;
  host_->set_recovery_monitor(&hub->timing("pil.recovery", recovery_config));
  hub->flight().add_counter_trigger(
      "pil_retransmit", [host]() { return host->retransmits(); });
  hub->flight().add_counter_trigger(
      "pil_abandoned", [host]() { return host->exchanges_abandoned(); });

  hub->arm(world_, sim::from_seconds(interval_s));
}

PilReport PilSession::run() {
  runtime_.start();
  agent_->start();
  host_->start();
  const std::uint64_t events_before = world_.queue().events_executed();
  world_.run_for(sim::from_seconds(options_.duration_s));
  host_->stop();
  const std::uint64_t events_run = world_.queue().events_executed() - events_before;

  // The registry is the report's source of truth: fill it first, then
  // mirror the scalar convenience fields from it.
  PilReport report;
  trace::MetricsRegistry& m = report.metrics;
  m.counter("pil.exchanges").value = host_->exchanges();
  m.counter("pil.frames_processed").value = agent_->frames_processed();
  m.counter("pil.deadline_misses").value = host_->deadline_misses();
  m.counter("pil.crc_errors").value =
      host_->crc_errors() + agent_->crc_errors();
  util::SampleSeries& rtt = m.series("pil.round_trip_us");
  for (double x : host_->round_trip_us().samples()) rtt.add(x);

  // Robustness counters (all zero in clean runs with recovery disabled —
  // present unconditionally so reports compare structurally).
  m.counter("pil.retransmits").value = host_->retransmits();
  m.counter("pil.recovered_exchanges").value = host_->recovered_exchanges();
  m.counter("pil.exchanges_abandoned").value = host_->exchanges_abandoned();
  m.counter("pil.duplicate_frames").value = agent_->duplicate_frames();
  util::SampleSeries& rec = m.series("pil.recovery_us");
  for (double x : host_->recovery_us().samples()) rec.add(x);
  if (serial_ && serial_->peripheral()) {
    m.counter("uart.overruns").value = serial_->peripheral()->overruns();
  }
  const sim::SerialChannel& a2b = link_->a_to_b();
  const sim::SerialChannel& b2a = link_->b_to_a();
  m.counter("link.bytes_corrupted").value =
      a2b.bytes_corrupted() + b2a.bytes_corrupted();
  m.counter("link.bytes_dropped").value =
      a2b.bytes_dropped() + b2a.bytes_dropped();
  m.counter("link.bytes_duplicated").value =
      a2b.bytes_duplicated() + b2a.bytes_duplicated();

  // Wire time of one full exchange: the sensor frame down plus the
  // actuator frame back at the configured frame sizes.
  const sim::SimTime byte_time = link_->config().byte_time();
  const double total_bytes =
      static_cast<double>(link_->a_to_b().bytes_transferred() +
                          link_->b_to_a().bytes_transferred());
  if (host_->exchanges() > 0) {
    const double per_step_us = sim::to_microseconds(byte_time) * total_bytes /
                               static_cast<double>(host_->exchanges());
    m.gauge("pil.comm_time_per_step_us") = per_step_us;
    m.gauge("pil.comm_overhead_ratio") =
        per_step_us / (options_.period_s * 1e6);
  }
  if (host_->exchanges() > 0) {
    // Scheduler pressure of the communication stack: how many event-queue
    // dispatches one control-period exchange costs end to end.
    m.gauge("pil.events_per_exchange") =
        static_cast<double>(events_run) /
        static_cast<double>(host_->exchanges());
  }
  if (const auto* prof = runtime_.profiler().task(rx_profile_key_)) {
    // Execution time of the frame-completing ISR (which embeds the step).
    m.gauge("pil.controller_exec_us_mean") = prof->exec_time_us.mean();
    m.gauge("pil.controller_exec_us_max") = prof->exec_time_us.max();
  }

  report.exchanges = m.counter("pil.exchanges").value;
  report.frames_processed = m.counter("pil.frames_processed").value;
  report.deadline_misses = m.counter("pil.deadline_misses").value;
  report.crc_errors = m.counter("pil.crc_errors").value;
  report.round_trip_us = rtt;
  if (const double* g = m.find_gauge("pil.comm_time_per_step_us")) {
    report.comm_time_per_step_us = *g;
  }
  if (const double* g = m.find_gauge("pil.comm_overhead_ratio")) {
    report.comm_overhead_ratio = *g;
  }
  if (const double* g = m.find_gauge("pil.controller_exec_us_mean")) {
    report.controller_exec_us_mean = *g;
  }
  if (const double* g = m.find_gauge("pil.controller_exec_us_max")) {
    report.controller_exec_us_max = *g;
  }
  return report;
}

}  // namespace iecd::pil
