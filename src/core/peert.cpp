#include "core/peert.hpp"

namespace iecd::core {

PeertTarget::PeertTarget() = default;

PeertTarget::BuildResult PeertTarget::build(model::Subsystem& controller,
                                            beans::BeanProject& project,
                                            const std::string& app_name,
                                            bool fixed_point) {
  BuildResult result;
  // The expert system must pass before any code generation (as PE enforces).
  result.diagnostics = project.validate();
  if (result.diagnostics.has_errors()) return result;
  codegen::GeneratorOptions options;
  options.app_name = app_name;
  options.fixed_point = fixed_point;
  result.app =
      generator_.generate(controller, project, options, &result.diagnostics);
  // Hook-driven bean configuration may have changed derived settings;
  // re-validate so the project is bindable.
  result.diagnostics.merge(project.validate());
  return result;
}

PeertTarget::BuildResult PeertTarget::build_pil(model::Subsystem& controller,
                                                beans::BeanProject& project,
                                                codegen::SignalBuffer& buffer,
                                                const std::string& app_name,
                                                bool fixed_point) {
  BuildResult result;
  result.diagnostics = project.validate();
  if (result.diagnostics.has_errors()) return result;
  codegen::GeneratorOptions options;
  options.app_name = app_name;
  options.fixed_point = fixed_point;
  options.pil = true;
  options.pil_buffer = &buffer;
  result.app =
      generator_.generate(controller, project, options, &result.diagnostics);
  result.diagnostics.merge(project.validate());
  return result;
}

}  // namespace iecd::core
