/// \file logging.hpp
/// Time-series capture for scopes, PIL probes and experiment reports.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace iecd::model {

/// One recorded channel: strictly increasing timestamps with values.
class SampleLog {
 public:
  void record(double t, double value);

  std::size_t size() const { return times_.size(); }
  bool empty() const { return times_.empty(); }
  double time_at(std::size_t i) const { return times_.at(i); }
  double value_at(std::size_t i) const { return values_.at(i); }
  const std::vector<double>& times() const { return times_; }
  const std::vector<double>& values() const { return values_; }

  double last_value() const;
  double max_value() const;
  double min_value() const;

  /// Zero-order-hold interpolation at time \p t.
  double sample(double t) const;

  void clear();

 private:
  std::vector<double> times_;
  std::vector<double> values_;
};

}  // namespace iecd::model
