#include "trace/metrics.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace iecd::trace {

MetricsRegistry::Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

double& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

util::RunningStats& MetricsRegistry::stats(const std::string& name) {
  return stats_[name];
}

util::SampleSeries& MetricsRegistry::series(const std::string& name) {
  return series_[name];
}

util::Histogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                            double hi, std::size_t bins) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, util::Histogram(lo, hi, bins))
      .first->second;
}

const MetricsRegistry::Counter* MetricsRegistry::find_counter(
    const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const double* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const util::RunningStats* MetricsRegistry::find_stats(
    const std::string& name) const {
  const auto it = stats_.find(name);
  return it == stats_.end() ? nullptr : &it->second;
}

const util::SampleSeries* MetricsRegistry::find_series(
    const std::string& name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

const util::Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

bool MetricsRegistry::empty() const {
  return counters_.empty() && gauges_.empty() && stats_.empty() &&
         series_.empty() && histograms_.empty();
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  stats_.clear();
  series_.clear();
  histograms_.clear();
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counters_[name].value += c.value;
  }
  for (const auto& [name, g] : other.gauges_) gauges_[name] = g;
  for (const auto& [name, s] : other.stats_) stats_[name].merge(s);
  for (const auto& [name, s] : other.series_) {
    auto& mine = series_[name];
    for (double x : s.samples()) mine.add(x);
  }
  for (const auto& [name, h] : other.histograms_) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
    } else {
      it->second.merge(h);  // no-op if shapes differ
    }
  }
}

std::string MetricsRegistry::report() const {
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += util::format("%-36s %llu\n", name.c_str(),
                        static_cast<unsigned long long>(c.value));
  }
  for (const auto& [name, g] : gauges_) {
    out += util::format("%-36s %.6g\n", name.c_str(), g);
  }
  for (const auto& [name, s] : stats_) {
    out += util::format("%-36s n=%-7zu mean %.4g  sd %.4g  min %.4g  max %.4g\n",
                        name.c_str(), s.count(), s.mean(), s.stddev(), s.min(),
                        s.max());
  }
  for (const auto& [name, s] : series_) {
    out += util::format(
        "%-36s n=%-7zu mean %.4g  p50 %.4g  p99 %.4g  max %.4g\n",
        name.c_str(), s.count(), s.mean(), s.percentile(50), s.percentile(99),
        s.max());
  }
  for (const auto& [name, h] : histograms_) {
    out += util::format("%-36s histogram, %zu bins, %llu samples\n",
                        name.c_str(), h.bins(),
                        static_cast<unsigned long long>(h.total()));
  }
  return out;
}

void MetricsRegistry::write_csv(std::ostream& os) const {
  os << "metric,kind,count,value,mean,stddev,min,max,p50,p99\n";
  char line[256];
  for (const auto& [name, c] : counters_) {
    std::snprintf(line, sizeof line, "%s,counter,%llu,%llu,,,,,,\n",
                  name.c_str(), static_cast<unsigned long long>(c.value),
                  static_cast<unsigned long long>(c.value));
    os << line;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(line, sizeof line, "%s,gauge,1,%.9g,,,,,,\n", name.c_str(),
                  g);
    os << line;
  }
  for (const auto& [name, s] : stats_) {
    std::snprintf(line, sizeof line, "%s,stats,%zu,,%.9g,%.9g,%.9g,%.9g,,\n",
                  name.c_str(), s.count(), s.mean(), s.stddev(), s.min(),
                  s.max());
    os << line;
  }
  for (const auto& [name, s] : series_) {
    std::snprintf(line, sizeof line,
                  "%s,series,%zu,,%.9g,%.9g,%.9g,%.9g,%.9g,%.9g\n",
                  name.c_str(), s.count(), s.mean(), s.stddev(), s.min(),
                  s.max(), s.percentile(50), s.percentile(99));
    os << line;
  }
  for (const auto& [name, h] : histograms_) {
    std::snprintf(line, sizeof line, "%s,histogram,%llu,,,,,,,\n",
                  name.c_str(), static_cast<unsigned long long>(h.total()));
    os << line;
  }
}

std::string MetricsRegistry::to_csv() const {
  std::ostringstream os;
  write_csv(os);
  return os.str();
}

}  // namespace iecd::trace
