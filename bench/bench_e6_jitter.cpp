// E6 (Section 1) — "Timing variations in sampling periods and latencies
// degrade the control performance and may in extreme cases lead to the
// instability."  The TrueTime-style experiment the paper motivates with:
// sweep (a) deterministic sampling jitter injected into the timer and
// (b) extra input-output latency charged to every control step, and watch
// the control cost (IAE) grow until the loop falls apart.
#include <cstdio>

#include "bench_util.hpp"
#include "core/case_study.hpp"

using namespace iecd;

namespace {

core::ServoConfig bench_config() {
  core::ServoConfig cfg;
  cfg.duration_s = 0.8;
  // Push the crossover toward the Nyquist rate so timing perturbations
  // eat directly into the phase margin.
  cfg.kp = 0.012;
  cfg.ki = 0.5;
  cfg.speed_filter_taps = 4;
  return cfg;
}

void print_table() {
  std::printf("E6: control quality vs timing perturbations (1 kHz servo "
              "loop)\n\n");

  core::ServoSystem baseline(bench_config());
  const auto clean = baseline.run_hil();
  std::printf("clean loop: IAE %.3f, jitter %.2f us\n\n", clean.iae,
              clean.jitter_us);

  std::printf("(a) sampling jitter sweep (alternating +/- offset per "
              "activation)\n\n");
  std::printf("%-12s | %-10s %-10s %-9s %-9s\n", "jitter[us]", "IAE",
              "IAE ratio", "over[%]", "settled");
  bench::print_rule(58);
  const std::int64_t amplitudes_us[] = {0, 100, 200, 300, 400, 450};
  for (auto amp : amplitudes_us) {
    core::ServoSystem servo(bench_config());
    core::ServoSystem::HilOptions opts;
    if (amp > 0) {
      opts.timer_jitter = [amp](std::uint64_t k) {
        return (k % 2 == 0) ? sim::microseconds(amp)
                            : -sim::microseconds(amp);
      };
    }
    const auto hil = servo.run_hil(opts);
    std::printf("%-12lld | %-10.3f %-10.2f %-9.2f %s\n",
                static_cast<long long>(amp), hil.iae, hil.iae / clean.iae,
                hil.metrics.overshoot_percent,
                hil.metrics.settled ? "yes" : "NO");
  }

  std::printf("\n(b) input-output latency sweep (busy cycles added to every "
              "step; 60 cycles = 1 us)\n\n");
  std::printf("%-14s | %-10s %-10s %-9s %-9s\n", "latency[us]", "IAE",
              "IAE ratio", "CPU[%]", "settled");
  bench::print_rule(60);
  const std::uint64_t latencies_us[] = {0, 100, 200, 400, 600, 800, 900};
  for (auto lat : latencies_us) {
    core::ServoSystem servo(bench_config());
    core::ServoSystem::HilOptions opts;
    opts.extra_latency_cycles = lat * 60;  // 60 MHz core
    const auto hil = servo.run_hil(opts);
    std::printf("%-14llu | %-10.3f %-10.2f %-9.1f %s\n",
                static_cast<unsigned long long>(lat), hil.iae,
                hil.iae / clean.iae, hil.cpu_utilisation * 100.0,
                hil.metrics.settled ? "yes" : "NO");
  }
  std::printf("\n(c) instability onset: slower sampling stacked with "
              "near-period latency\n\n");
  std::printf("%-24s | %-10s %-9s %-9s\n", "period + latency", "IAE",
              "over[%]", "settled");
  bench::print_rule(58);
  for (const double period_ms : {1.0, 2.0, 5.0}) {
    core::ServoConfig cfg = bench_config();
    cfg.period_s = period_ms * 1e-3;
    core::ServoSystem servo(cfg);
    core::ServoSystem::HilOptions opts;
    // 90% of the period spent between sampling and actuation.
    opts.extra_latency_cycles =
        static_cast<std::uint64_t>(0.9 * cfg.period_s * 60e6);
    const auto hil = servo.run_hil(opts);
    std::printf("%4.0f ms + %4.1f ms        | %-10.3f %-9.1f %s\n",
                period_ms, 0.9 * period_ms, hil.iae,
                hil.metrics.overshoot_percent,
                hil.metrics.settled ? "yes" : "NO (lost the loop)");
  }

  std::printf("\nexpected shape: monotone cost growth; stacking sampling "
              "delay and latency\neats the phase margin until the loop is "
              "lost (the paper's instability case).\n\n");
}

void BM_HilWithJitter(benchmark::State& state) {
  for (auto _ : state) {
    core::ServoSystem servo(bench_config());
    core::ServoSystem::HilOptions opts;
    opts.timer_jitter = [](std::uint64_t k) {
      return (k % 2 == 0) ? sim::microseconds(200)
                          : -sim::microseconds(200);
    };
    auto hil = servo.run_hil(opts);
    benchmark::DoNotOptimize(hil.iae);
  }
}
BENCHMARK(BM_HilWithJitter)->Unit(benchmark::kMillisecond);

}  // namespace

IECD_BENCH_MAIN(print_table)
