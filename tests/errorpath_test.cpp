// Error-path and contract tests: invalid configurations must fail loudly
// and precisely, never silently.
#include <gtest/gtest.h>

#include "beans/adc_bean.hpp"
#include "beans/bean_project.hpp"
#include "mcu/derivative.hpp"
#include "model/model.hpp"
#include "model/statechart.hpp"
#include "periph/pwm.hpp"
#include "periph/timer.hpp"
#include "periph/watchdog.hpp"
#include "pil/frame.hpp"
#include "sim/can_bus.hpp"
#include "sim/event_queue.hpp"
#include "sim/world.hpp"

namespace iecd {
namespace {

TEST(EventQueueContract, RunAllHonoursEventCap) {
  sim::EventQueue q;
  int executed = 0;
  // A self-perpetuating event: the cap is the only way out.
  std::function<void()> loop = [&] {
    ++executed;
    q.schedule_in(1, loop);
  };
  q.schedule_at(1, loop);
  EXPECT_EQ(q.run_all(100), 100u);
  EXPECT_EQ(executed, 100);
}

TEST(ClockContract, NegativeDurationsYieldZeroCycles) {
  mcu::Clock clk(60e6);
  EXPECT_EQ(clk.time_to_cycles(-5), 0u);
}

TEST(PeriphContracts, InvalidConfigurationsThrow) {
  sim::World world;
  mcu::Mcu mcu(world, mcu::find_derivative("DSC56F8367"));
  EXPECT_THROW(periph::PwmPeripheral(mcu, {.prescaler = 0}, "p0"),
               std::invalid_argument);
  EXPECT_THROW(
      periph::PwmPeripheral(mcu, {.prescaler = 1, .modulo = 0}, "p1"),
      std::invalid_argument);
  EXPECT_THROW(
      periph::TimerPeripheral(mcu, {.prescaler = 0, .modulo = 100}, "t0"),
      std::invalid_argument);
  EXPECT_THROW(periph::WatchdogPeripheral(mcu, {.timeout = 0}, "w0"),
               std::invalid_argument);
  EXPECT_THROW(sim::CanBus(world, 0, "c0"), std::invalid_argument);
}

TEST(StateChartContracts, InvalidConstructionsThrow) {
  model::Model m("h");
  auto& empty_chart = m.add<model::StateChart>("empty", 0, 0);
  EXPECT_THROW(empty_chart.initialize(model::SimContext{}),
               std::logic_error);

  auto& chart = m.add<model::StateChart>("c", 0, 0);
  chart.add_state("a");
  EXPECT_THROW(chart.add_state("a"), std::logic_error);  // duplicate
  EXPECT_THROW(chart.add_transition("a", "nowhere"), std::logic_error);
  chart.initialize(model::SimContext{});
  EXPECT_THROW(chart.send_event("", model::SimContext{}),
               std::invalid_argument);
}

TEST(BeanContracts, RenameValidationAndUnknownEvents) {
  beans::AdcBean bean("AD1");
  EXPECT_THROW(bean.rename("bad name"), std::invalid_argument);
  bean.rename("AD_speed");
  EXPECT_EQ(bean.name(), "AD_speed");
  EXPECT_EQ(bean.event_vector("OnEnd"), -1);  // not bound yet
}

TEST(BeanProjectContracts, SetPropertyOnUnknownBeanReportsError) {
  beans::BeanProject project("p");
  const auto diags = project.set_property("ghost", "x", std::int64_t{1});
  EXPECT_TRUE(diags.has_errors());
  EXPECT_NE(diags.to_string().find("unknown bean"), std::string::npos);
}

TEST(BeanProjectContracts, CpuBeanCannotBeRenamedOrRemoved) {
  beans::BeanProject project("p");
  EXPECT_FALSE(project.rename("CPU", "CPU2"));
  EXPECT_FALSE(project.remove("CPU"));
  EXPECT_NE(project.find("CPU"), nullptr);
}

TEST(PilFrameContracts, TruncatedStreamProducesNothing) {
  pil::Frame frame;
  frame.payload = pil::encode_signals({1.0, 2.0});
  auto bytes = pil::encode_frame(frame);
  bytes.resize(bytes.size() - 3);  // drop payload tail + CRC
  pil::FrameDecoder decoder;
  int delivered = 0;
  decoder.set_callback([&](const pil::Frame&) { ++delivered; });
  for (std::uint8_t b : bytes) decoder.feed(b);
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(decoder.crc_errors(), 0u);  // incomplete, not corrupt
}

TEST(PilFrameContracts, EmptySignalVectorsRoundTrip) {
  EXPECT_TRUE(pil::encode_signals({}).empty());
  EXPECT_TRUE(pil::decode_signals({}).empty());
  // Trailing partial float is ignored.
  EXPECT_TRUE(pil::decode_signals({1, 2, 3}).empty());
}

TEST(CanBusContracts, UnknownNodeRejected) {
  sim::World world;
  sim::CanBus bus(world, 500000);
  EXPECT_THROW(bus.transmit(7, sim::CanFrame{}), std::out_of_range);
}

TEST(DerivativeContracts, DefaultDerivativeExists) {
  EXPECT_NO_THROW(mcu::find_derivative(mcu::kDefaultDerivative));
  EXPECT_EQ(mcu::find_derivative(mcu::kDefaultDerivative).name,
            "DSC56F8367");
}

}  // namespace
}  // namespace iecd
